#include "analysis/engine.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <unordered_map>

#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace psa::analysis {

std::string_view to_string(AnalysisStatus status) {
  switch (status) {
    case AnalysisStatus::kConverged: return "converged";
    case AnalysisStatus::kOutOfMemory: return "out of memory budget";
    case AnalysisStatus::kIterationLimit: return "iteration limit";
    case AnalysisStatus::kSetLimit: return "RSRSG size limit";
    case AnalysisStatus::kDeadline: return "deadline expired";
    case AnalysisStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

namespace {

class Engine {
 public:
  Engine(const cfg::Cfg& cfg, const cfg::InductionInfo& induction,
         const Options& options)
      : cfg_(cfg), options_(options) {
    ctx_.policy = options.policy();
    ctx_.prune = options.prune_options();
    ctx_.cfg = &cfg;
    ctx_.induction = &induction;
    ctx_.types = options.types;
    ctx_.summaries = options.enable_summaries ? options.summaries : nullptr;
    // Selector universe for the kHavoc transfer — same construction as the
    // governor's (every selector some statement mentions).
    {
      std::set<rsg::Symbol> sels;
      for (const cfg::CfgNode& node : cfg.nodes()) {
        if (node.stmt.sel.valid()) sels.insert(node.stmt.sel);
      }
      selectors_.assign(sels.begin(), sels.end());
    }
    ctx_.selectors = &selectors_;
    if (options.threads > 1)
      pool_ = std::make_unique<support::ThreadPool>(options.threads);
  }

  AnalysisResult run() {
    // Attribution windows instead of the old global MemoryStats reset: a
    // reset would zero live_bytes while payload graphs of *earlier* units in
    // the same process are still alive, underflowing the gauge when they
    // die. Regions snapshot a baseline and report per-run deltas.
    support::MemoryRegion memory_region;
    support::MetricsRegion ops_region;
    PSA_PHASE_TIMER(fixpoint_timer, fixpoint_wall_counter(),
                    fixpoint_cpu_counter());
    support::WallTimer timer;

    AnalysisResult result;
    result.per_node.resize(cfg_.size());

    ResourceGovernor governor(options_, cfg_);
    const bool degrade = options_.budget_policy == BudgetPolicy::kDegrade;

    std::deque<cfg::NodeId> worklist;
    std::vector<bool> queued(cfg_.size(), false);
    std::vector<bool> visited(cfg_.size(), false);
    worklist.push_back(cfg_.entry());
    queued[cfg_.entry()] = true;

    // Requeue every statement: after a global degradation (drain, memory
    // relief, visit ladder) all states got coarser, so everything must be
    // re-transferred to restore the fixpoint.
    const auto requeue_all = [&] {
      for (cfg::NodeId n = 0; n < cfg_.size(); ++n) {
        if (!queued[n]) {
          queued[n] = true;
          worklist.push_back(n);
        }
      }
    };

    AnalysisStatus status = AnalysisStatus::kConverged;
    std::uint64_t visits = 0;
    // The visit ladder: each trip of max_node_visits escalates every live
    // statement one rung and grants another allowance of the original
    // budget; once every statement sits at the top rung the count becomes
    // unbounded (the widened lattice is finite, so the fixpoint terminates).
    std::uint64_t visit_allowance = options_.max_node_visits;
    bool visits_unbounded = false;
    bool memory_checks = options_.memory_budget_bytes != 0;
    int fruitless_reliefs = 0;
    // A fan-out aborted on a *transient* memory spike: the partial outputs
    // are freed on abort, so live bytes may be back under budget by the
    // time the loop top re-checks — latch the trip so the loop top responds
    // anyway instead of retrying the same doomed visit forever.
    bool fanout_memory_trip = false;
    cfg::NodeId fanout_trip_node = 0;
    const auto memory_tripped = [&] {
      return memory_checks && memory_region.delta().live_bytes >
                                  options_.memory_budget_bytes;
    };

    while (!worklist.empty()) {
      // --- Cancellation and deadline (cooperative poll). -----------------
      const auto interrupt = governor.poll();
      if (interrupt == ResourceGovernor::Interrupt::kCancelled) {
        status = AnalysisStatus::kCancelled;
        break;
      }
      if (interrupt == ResourceGovernor::Interrupt::kDeadline) {
        if (!degrade || !governor.begin_drain()) {
          // Hard fail, or the 2x drain allowance itself ran out.
          status = AnalysisStatus::kDeadline;
          break;
        }
        // Drain: collapse every live state to the top rung, forget the
        // transfer memoization (an interrupted fan-out may have recorded
        // inputs whose outputs never landed — re-transferring everything
        // restores soundness), and redo the now-cheap fixpoint within the
        // extended allowance.
        for (cfg::NodeId n = 0; n < cfg_.size(); ++n) {
          if (!result.per_node[n].empty()) {
            governor.collapse(n, result.per_node[n],
                              AnalysisStatus::kDeadline);
          }
        }
        governor.raise_floor(DegradationRung::kSummarize);
        transfer_cache_.clear();
        requeue_all();
        continue;
      }

      // --- Visit budget. --------------------------------------------------
      if (!visits_unbounded && visits >= visit_allowance) {
        if (!degrade) {
          status = AnalysisStatus::kIterationLimit;
          break;
        }
        bool any = false;
        for (cfg::NodeId n = 0; n < cfg_.size(); ++n) {
          if (result.per_node[n].empty()) continue;
          any |= governor.escalate(n, result.per_node[n],
                                   AnalysisStatus::kIterationLimit) !=
                 DegradationRung::kNone;
        }
        if (!any) {
          // Every live statement is already maximally coarse; counting
          // further visits buys nothing. Hold future states to the top rung
          // and let the widened fixpoint run out.
          governor.raise_floor(DegradationRung::kSummarize);
          visits_unbounded = true;
        } else {
          visit_allowance += options_.max_node_visits;
        }
        requeue_all();
        continue;
      }
      ++visits;
      PSA_COUNT(support::Counter::kWorklistVisits);

      // --- Memory budget. -------------------------------------------------
      if (memory_tripped() || fanout_memory_trip) {
        const bool forced = fanout_memory_trip;
        fanout_memory_trip = false;
        if (!degrade) {
          status = AnalysisStatus::kOutOfMemory;
          break;
        }
        --visits;  // relief replaces this visit
        const std::uint64_t target =
            std::max<std::uint64_t>(1, options_.memory_budget_bytes / 2);
        const auto live_bytes = [&] {
          return memory_region.delta().live_bytes;
        };
        // Step 1: escalate the heaviest states down to half the budget
        // (headroom: states escalated only to the line would trip again
        // immediately), preserving the transfer memoization — clearing it
        // forces a full recompute sweep, which is the expensive part of a
        // relief.
        std::vector<cfg::NodeId> escalated;
        bool escalatable = true;
        while (escalatable && live_bytes() > target) {
          escalatable = false;
          std::vector<cfg::NodeId> by_weight;
          for (cfg::NodeId n = 0; n < cfg_.size(); ++n) {
            if (!result.per_node[n].empty()) by_weight.push_back(n);
          }
          std::sort(by_weight.begin(), by_weight.end(),
                    [&](cfg::NodeId a, cfg::NodeId b) {
                      return result.per_node[a].footprint_bytes() >
                             result.per_node[b].footprint_bytes();
                    });
          for (const cfg::NodeId n : by_weight) {
            if (governor.escalate(n, result.per_node[n],
                                  AnalysisStatus::kOutOfMemory) ==
                DegradationRung::kNone) {
              continue;
            }
            escalated.push_back(n);
            escalatable = true;
            if (live_bytes() <= target) break;
          }
        }
        if (forced && escalated.empty()) {
          // The trip came from an aborted fan-out whose spike has already
          // drained: nothing is over the target now, but retrying the visit
          // at its current precision would spike (and abort) again. Coarsen
          // the aborted statement's *inputs* — its predecessors' states —
          // so the retry shrinks.
          for (const cfg::NodeId p : cfg_.node(fanout_trip_node).preds) {
            if (result.per_node[p].empty()) continue;
            if (governor.escalate(p, result.per_node[p],
                                  AnalysisStatus::kOutOfMemory) !=
                DegradationRung::kNone) {
              escalated.push_back(p);
            }
          }
        }
        if (live_bytes() > target) {
          // Step 2: the states alone cannot reach the target — the
          // memoization cache is what the budget cannot afford. Without
          // memoization every sweep recomputes its transfers, so precision
          // is unaffordable too: drop the cache and hold every state,
          // present and future, to the top rung. The frontier is then born
          // coarse instead of re-tripping the budget (and re-wiping the
          // cache) at every advance.
          transfer_cache_.clear();
          governor.raise_floor(DegradationRung::kSummarize);
        }
        if (live_bytes() > options_.memory_budget_bytes ||
            (escalated.empty() && ++fruitless_reliefs >= 3)) {
          // Even the maximally coarse states exceed the budget (or relief
          // has nothing left to coarsen and keeps tripping on cache
          // refills): the budget is unreachable for this input. Finish
          // soundly over budget rather than die — exactly the Table-1
          // Sparse-LU failure this governor exists to absorb.
          governor.raise_floor(DegradationRung::kSummarize);
          governor.note_memory_unreachable();
          memory_checks = false;
        }
        if (!escalated.empty()) fruitless_reliefs = 0;
        // Coarsened outputs must be re-consumed: requeue the successors of
        // every escalated statement (a cache drop alone invalidates
        // nothing — transfers are pure, memoization is only a shortcut).
        for (const cfg::NodeId n : escalated) {
          for (const cfg::NodeId s : cfg_.node(n).succs) {
            if (!queued[s]) {
              queued[s] = true;
              worklist.push_back(s);
            }
          }
        }
        continue;
      }

      const cfg::NodeId id = worklist.front();
      worklist.pop_front();
      queued[id] = false;
      if (visited[id]) {
        PSA_COUNT(support::Counter::kWorklistRevisits);
      } else {
        visited[id] = true;
      }

      // Input: the union of the predecessors' RSRSGs (the entry's input is
      // the single empty configuration: every pvar NULL). The reduction
      // (JOIN) of the sentence's own RSRSG happens on the *output* side
      // below, so the input need not be materialized — each predecessor
      // graph feeds the transfer directly, and graphs already transferred
      // on an earlier visit are skipped (the transfer is a pure function of
      // the input graph and outputs accumulate). This memoization makes the
      // per-visit cost proportional to the number of *new* input graphs.
      auto& cache = transfer_cache_[id];
      std::vector<std::pair<std::uint64_t, std::size_t>> fresh_keys;
      const auto consider = [&](const rsg::Rsg& g, std::uint64_t fp) {
        auto& bucket = cache.by_fp[fp];
        for (const rsg::Rsg& known : bucket) {
          if (rsg::rsg_equal(known, g)) {
            PSA_COUNT(support::Counter::kTransferCacheHits);
            return;
          }
        }
        PSA_COUNT(support::Counter::kTransferCacheMisses);
        bucket.push_back(g);
        fresh_keys.emplace_back(fp, bucket.size() - 1);
      };
      if (id == cfg_.entry() && cache.by_fp.empty()) {
        if (options_.entry_states != nullptr &&
            !options_.entry_states->empty()) {
          // Summary runs start from the callee's abstracted parameter
          // bindings instead of the all-NULL configuration.
          for (const rsg::Rsg& g : *options_.entry_states) {
            consider(g, rsg::fingerprint(g));
          }
        } else {
          rsg::Rsg empty;
          consider(empty, rsg::fingerprint(empty));
        }
      }
      for (const cfg::NodeId p : cfg_.node(id).preds) {
        const Rsrsg& pred_out = result.per_node[p];
        for (std::size_t i = 0; i < pred_out.graphs().size(); ++i) {
          consider(pred_out.graphs()[i], pred_out.fingerprint_at(i));
        }
      }
      std::vector<const rsg::Rsg*> fresh;
      fresh.reserve(fresh_keys.size());
      for (const auto& [fp, idx] : fresh_keys) {
        fresh.push_back(&cache.by_fp[fp][idx]);
      }

      std::vector<std::vector<rsg::Rsg>> produced(fresh.size());
      const auto transfer_one = [&](std::size_t i) {
        produced[i] = execute_statement(*fresh[i], cfg_.node(id), ctx_);
      };
      // The fan-out is where the combinatorial blow-ups live (a statement
      // with thousands of fresh inputs, Table 1's Sparse-LU explosion), so
      // the stop predicate covers the memory budget as well as
      // deadline/cancel — a loop-top-only check would let a single visit
      // run away unboundedly before the budget is ever consulted.
      const auto abort_fanout = [&] {
        return governor.interrupted() || memory_tripped();
      };
      if (pool_ != nullptr && fresh.size() > 1) {
        pool_->parallel_for(fresh.size(), transfer_one, abort_fanout);
      } else {
        for (std::size_t i = 0; i < fresh.size(); ++i) {
          if (abort_fanout()) break;
          transfer_one(i);
        }
      }
      if (abort_fanout()) {
        // Outputs of an aborted fan-out are partial: un-record the inputs
        // considered this visit so a later visit re-transfers them (entries
        // were appended per bucket in fresh_keys order, so reverse pops
        // restore the cache exactly). Without this the cache would keep
        // claiming inputs whose outputs never landed — a transient memory
        // spike that drains before the loop-top check would then lose
        // may-facts for good.
        for (auto it = fresh_keys.rbegin(); it != fresh_keys.rend(); ++it) {
          const auto bucket = cache.by_fp.find(it->first);
          bucket->second.pop_back();
          if (bucket->second.empty()) cache.by_fp.erase(bucket);
        }
        if (!governor.interrupted()) {
          // Not deadline or cancellation, so the memory budget tripped:
          // latch it for the loop top, whose own check may already see live
          // bytes back under budget.
          fanout_memory_trip = true;
          fanout_trip_node = id;
        }
        // Requeue the node and let the loop-top checks decide (drain,
        // relief, or stop).
        if (!queued[id]) {
          queued[id] = true;
          worklist.push_front(id);
        }
        continue;
      }

      // Accumulate into the node's RSRSG; propagate only on change.
      bool changed = false;
      for (auto& batch : produced) {
        for (auto& g : batch) {
          changed |= result.per_node[id].insert(std::move(g), ctx_.policy,
                                                options_.enable_join);
        }
      }
      // A degraded statement is held to its rung: fresh precision inserted
      // above is re-coarsened so cost can never creep back. An unchanged
      // set is already conformant (every content change passes through this
      // reapply, and escalation applies its transform directly), so the
      // sweep is skipped — it is a full degrade pass over the set and would
      // otherwise dominate the coarse fixpoint's cost.
      if (changed) changed |= governor.reapply(id, result.per_node[id]);
      if (options_.widen_threshold != 0 &&
          result.per_node[id].size() > options_.widen_threshold) {
        PSA_COUNT(support::Counter::kWidenings);
        changed |= result.per_node[id].widen(ctx_.policy,
                                             options_.widen_threshold);
      }
      if (result.per_node[id].size() > options_.max_rsgs_per_set) {
        if (!degrade) {
          status = AnalysisStatus::kSetLimit;
          break;
        }
        // Escalate this statement until the set fits or the ladder tops
        // out. At the top the widened set keeps one member per ALIAS
        // pattern — if even that exceeds the cap the cap is unreachable and
        // the (bounded) set is carried over it.
        while (result.per_node[id].size() > options_.max_rsgs_per_set &&
               governor.escalate(id, result.per_node[id],
                                 AnalysisStatus::kSetLimit) !=
                   DegradationRung::kNone) {
          changed = true;
        }
      }

      if (changed || visits == 1) {
        for (const cfg::NodeId s : cfg_.node(id).succs) {
          if (!queued[s]) {
            queued[s] = true;
            worklist.push_back(s);
          }
        }
      }
    }

    result.status = status;
    result.node_visits = visits;
    result.seconds = timer.elapsed_seconds();
    result.memory = memory_region.delta();
    result.degradation = governor.take_report();
    result.ops = ops_region.delta();
    return result;
  }

  [[nodiscard]] support::Counter fixpoint_wall_counter() const {
    switch (options_.level) {
      case rsg::AnalysisLevel::kL1:
        return support::Counter::kPhaseFixpointL1WallNs;
      case rsg::AnalysisLevel::kL2:
        return support::Counter::kPhaseFixpointL2WallNs;
      case rsg::AnalysisLevel::kL3:
        return support::Counter::kPhaseFixpointL3WallNs;
    }
    return support::Counter::kPhaseFixpointL1WallNs;
  }
  [[nodiscard]] support::Counter fixpoint_cpu_counter() const {
    switch (options_.level) {
      case rsg::AnalysisLevel::kL1:
        return support::Counter::kPhaseFixpointL1CpuNs;
      case rsg::AnalysisLevel::kL2:
        return support::Counter::kPhaseFixpointL2CpuNs;
      case rsg::AnalysisLevel::kL3:
        return support::Counter::kPhaseFixpointL3CpuNs;
    }
    return support::Counter::kPhaseFixpointL1CpuNs;
  }

 private:
  /// Per-node record of input graphs already transferred, bucketed by
  /// structural fingerprint (collisions resolved exactly by rsg_equal).
  struct TransferCache {
    std::unordered_map<std::uint64_t, std::vector<rsg::Rsg>> by_fp;
  };

  const cfg::Cfg& cfg_;
  const Options& options_;
  TransferContext ctx_;
  std::vector<rsg::Symbol> selectors_;  // kHavoc selector universe
  std::unique_ptr<support::ThreadPool> pool_;
  std::unordered_map<cfg::NodeId, TransferCache> transfer_cache_;
};

}  // namespace

AnalysisResult analyze_cfg(const cfg::Cfg& cfg,
                           const cfg::InductionInfo& induction,
                           const Options& options) {
  Engine engine(cfg, induction, options);
  return engine.run();
}

}  // namespace psa::analysis
