#include "analysis/engine.hpp"

#include <deque>
#include <unordered_map>

#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace psa::analysis {

std::string_view to_string(AnalysisStatus status) {
  switch (status) {
    case AnalysisStatus::kConverged: return "converged";
    case AnalysisStatus::kOutOfMemory: return "out of memory budget";
    case AnalysisStatus::kIterationLimit: return "iteration limit";
    case AnalysisStatus::kSetLimit: return "RSRSG size limit";
  }
  return "unknown";
}

namespace {

class Engine {
 public:
  Engine(const cfg::Cfg& cfg, const cfg::InductionInfo& induction,
         const Options& options)
      : cfg_(cfg), options_(options) {
    ctx_.policy = options.policy();
    ctx_.prune = options.prune_options();
    ctx_.cfg = &cfg;
    ctx_.induction = &induction;
    if (options.threads > 1)
      pool_ = std::make_unique<support::ThreadPool>(options.threads);
  }

  AnalysisResult run() {
    support::MemoryStats::instance().reset();
    support::WallTimer timer;

    AnalysisResult result;
    result.per_node.resize(cfg_.size());

    std::deque<cfg::NodeId> worklist;
    std::vector<bool> queued(cfg_.size(), false);
    worklist.push_back(cfg_.entry());
    queued[cfg_.entry()] = true;

    AnalysisStatus status = AnalysisStatus::kConverged;
    std::uint64_t visits = 0;

    while (!worklist.empty()) {
      if (++visits > options_.max_node_visits) {
        status = AnalysisStatus::kIterationLimit;
        break;
      }
      if (options_.memory_budget_bytes != 0 &&
          support::MemoryStats::instance().snapshot().live_bytes >
              options_.memory_budget_bytes) {
        status = AnalysisStatus::kOutOfMemory;
        break;
      }

      const cfg::NodeId id = worklist.front();
      worklist.pop_front();
      queued[id] = false;

      // Input: the union of the predecessors' RSRSGs (the entry's input is
      // the single empty configuration: every pvar NULL). The reduction
      // (JOIN) of the sentence's own RSRSG happens on the *output* side
      // below, so the input need not be materialized — each predecessor
      // graph feeds the transfer directly, and graphs already transferred
      // on an earlier visit are skipped (the transfer is a pure function of
      // the input graph and outputs accumulate). This memoization makes the
      // per-visit cost proportional to the number of *new* input graphs.
      auto& cache = transfer_cache_[id];
      std::vector<std::pair<std::uint64_t, std::size_t>> fresh_keys;
      const auto consider = [&](const rsg::Rsg& g, std::uint64_t fp) {
        auto& bucket = cache.by_fp[fp];
        for (const rsg::Rsg& known : bucket) {
          if (rsg::rsg_equal(known, g)) return;
        }
        bucket.push_back(g);
        fresh_keys.emplace_back(fp, bucket.size() - 1);
      };
      if (id == cfg_.entry() && cache.by_fp.empty()) {
        rsg::Rsg empty;
        consider(empty, rsg::fingerprint(empty));
      }
      for (const cfg::NodeId p : cfg_.node(id).preds) {
        const Rsrsg& pred_out = result.per_node[p];
        for (std::size_t i = 0; i < pred_out.graphs().size(); ++i) {
          consider(pred_out.graphs()[i], pred_out.fingerprint_at(i));
        }
      }
      std::vector<const rsg::Rsg*> fresh;
      fresh.reserve(fresh_keys.size());
      for (const auto& [fp, idx] : fresh_keys) {
        fresh.push_back(&cache.by_fp[fp][idx]);
      }

      std::vector<std::vector<rsg::Rsg>> produced(fresh.size());
      const auto transfer_one = [&](std::size_t i) {
        produced[i] = execute_statement(*fresh[i], cfg_.node(id), ctx_);
      };
      if (pool_ != nullptr && fresh.size() > 1) {
        pool_->parallel_for(fresh.size(), transfer_one);
      } else {
        for (std::size_t i = 0; i < fresh.size(); ++i) transfer_one(i);
      }

      // Accumulate into the node's RSRSG; propagate only on change.
      bool changed = false;
      for (auto& batch : produced) {
        for (auto& g : batch) {
          changed |= result.per_node[id].insert(std::move(g), ctx_.policy,
                                                options_.enable_join);
        }
      }
      if (options_.widen_threshold != 0 &&
          result.per_node[id].size() > options_.widen_threshold) {
        changed |= result.per_node[id].widen(ctx_.policy,
                                             options_.widen_threshold);
      }
      if (result.per_node[id].size() > options_.max_rsgs_per_set) {
        status = AnalysisStatus::kSetLimit;
        break;
      }

      if (changed || visits == 1) {
        for (const cfg::NodeId s : cfg_.node(id).succs) {
          if (!queued[s]) {
            queued[s] = true;
            worklist.push_back(s);
          }
        }
      }
    }

    result.status = status;
    result.node_visits = visits;
    result.seconds = timer.elapsed_seconds();
    result.memory = support::MemoryStats::instance().snapshot();
    return result;
  }

 private:
  /// Per-node record of input graphs already transferred, bucketed by
  /// structural fingerprint (collisions resolved exactly by rsg_equal).
  struct TransferCache {
    std::unordered_map<std::uint64_t, std::vector<rsg::Rsg>> by_fp;
  };

  const cfg::Cfg& cfg_;
  const Options& options_;
  TransferContext ctx_;
  std::unique_ptr<support::ThreadPool> pool_;
  std::unordered_map<cfg::NodeId, TransferCache> transfer_cache_;
};

}  // namespace

AnalysisResult analyze_cfg(const cfg::Cfg& cfg,
                           const cfg::InductionInfo& induction,
                           const Options& options) {
  Engine engine(cfg, induction, options);
  return engine.run();
}

}  // namespace psa::analysis
