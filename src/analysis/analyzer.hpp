// One-call facade: source text -> parsed unit -> CFG -> analysis.
//
// This is the entry point the examples, tests and benchmarks use; the lower
// layers remain fully usable on their own.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "analysis/engine.hpp"
#include "cfg/cfg.hpp"
#include "cfg/induction.hpp"
#include "lang/parser.hpp"
#include "lang/sema.hpp"

namespace psa::analysis {

/// Thrown when the frontend rejects the source; carries the diagnostics.
class FrontendError : public std::runtime_error {
 public:
  explicit FrontendError(std::string diagnostics)
      : std::runtime_error(std::move(diagnostics)) {}
};

/// Everything derived from one function of one source buffer.
struct ProgramAnalysis {
  lang::TranslationUnit unit;
  lang::SemaResult sema;
  cfg::Cfg cfg;
  cfg::InductionInfo induction;

  [[nodiscard]] const support::Interner& interner() const {
    return *unit.interner;
  }
  [[nodiscard]] support::Symbol symbol(std::string_view name) const {
    return unit.interner->lookup(name);
  }
};

/// Parse + sema + lower `function` of `source`. Throws FrontendError when
/// the frontend reports errors or the function does not exist.
[[nodiscard]] ProgramAnalysis prepare(std::string_view source,
                                      std::string_view function = "main");

/// Run the fixpoint over a prepared program.
[[nodiscard]] AnalysisResult analyze_program(const ProgramAnalysis& program,
                                             const Options& options = {});

/// Convenience: prepare + analyze in one call.
[[nodiscard]] AnalysisResult analyze_source(std::string_view source,
                                            const Options& options = {},
                                            std::string_view function = "main");

}  // namespace psa::analysis
