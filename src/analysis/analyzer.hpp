// One-call facade: source text -> parsed unit -> CFG -> analysis.
//
// This is the entry point the examples, tests and benchmarks use; the lower
// layers remain fully usable on their own.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "analysis/engine.hpp"
#include "cfg/cfg.hpp"
#include "cfg/induction.hpp"
#include "lang/parser.hpp"
#include "lang/sema.hpp"

namespace psa::analysis {

/// Thrown when the frontend rejects the source; carries the diagnostics.
class FrontendError : public std::runtime_error {
 public:
  explicit FrontendError(std::string diagnostics)
      : std::runtime_error(std::move(diagnostics)) {}
};

/// Frontend behavior knobs.
struct FrontendOptions {
  /// Salvage mode: instead of failing the unit, unparseable declarations are
  /// stubbed out (lang::SkippedDecl) and unsupported constructs inside
  /// otherwise-analyzable functions lower to sound kHavoc statements. The
  /// unit fails only when the *target function* itself cannot be salvaged.
  bool salvage = false;
};

/// What salvage mode had to give up (all zero on a clean frontend run).
struct SalvageInfo {
  /// Top-level declarations stubbed out by parser or sema recovery.
  std::size_t skipped_decls = 0;
  /// kHavoc statements in the target function's CFG.
  std::size_t havoc_sites = 0;
  /// Diagnostics recorded (or demoted) as Severity::kUnsupported.
  std::size_t unsupported_count = 0;
  /// Functions that survived the frontend / functions the parser saw
  /// (stubbed declarations included in the denominator).
  std::size_t functions_analyzable = 0;
  std::size_t functions_total = 0;
  /// Rendered diagnostics explaining every degradation (empty when clean).
  std::string diagnostics;

  /// True when any part of the frontend had to degrade; drivers map this to
  /// UnitOutcomeKind::kPartial.
  [[nodiscard]] bool degraded() const {
    return skipped_decls != 0 || havoc_sites != 0 || unsupported_count != 0;
  }
};

/// One analyzable function of the unit with its lowered CFG — input to the
/// interprocedural summary computation (src/ipa) and to the cross-function
/// oracle. The target function appears here too (same CFG as
/// ProgramAnalysis::cfg).
struct FunctionCfg {
  support::Symbol name;
  cfg::Cfg cfg;
  cfg::InductionInfo induction;
};

/// Everything derived from one function of one source buffer.
struct ProgramAnalysis {
  lang::TranslationUnit unit;
  lang::SemaResult sema;
  cfg::Cfg cfg;
  cfg::InductionInfo induction;
  SalvageInfo salvage;
  /// CFGs of every function that survived sema *and* lowered cleanly under
  /// a salvage-mode diagnostic engine, in declaration order. Functions
  /// missing here are never summarized; their call sites take the havoc
  /// fallback.
  std::vector<FunctionCfg> unit_cfgs;

  [[nodiscard]] const support::Interner& interner() const {
    return *unit.interner;
  }
  [[nodiscard]] support::Symbol symbol(std::string_view name) const {
    return unit.interner->lookup(name);
  }
  [[nodiscard]] const FunctionCfg* find_cfg(support::Symbol name) const {
    for (const auto& fc : unit_cfgs) {
      if (fc.name == name) return &fc;
    }
    return nullptr;
  }
};

/// Parse + sema + lower `function` of `source`. Throws FrontendError when
/// the frontend reports errors or the function does not exist. With
/// `frontend.salvage` set, only an unsalvageable *target function* (or a
/// unit in which nothing parses) throws; other degradations are recorded in
/// ProgramAnalysis::salvage.
[[nodiscard]] ProgramAnalysis prepare(std::string_view source,
                                      std::string_view function = "main",
                                      const FrontendOptions& frontend = {});

/// Run the fixpoint over a prepared program.
[[nodiscard]] AnalysisResult analyze_program(const ProgramAnalysis& program,
                                             const Options& options = {});

/// Convenience: prepare + analyze in one call.
[[nodiscard]] AnalysisResult analyze_source(
    std::string_view source, const Options& options = {},
    std::string_view function = "main", const FrontendOptions& frontend = {});

}  // namespace psa::analysis
