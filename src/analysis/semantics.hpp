// Abstract semantics of the six simple pointer statements (§2 of the paper;
// the per-property updates are reconstructed from the ICPP'01 definitions —
// see DESIGN.md §4 for the reconstruction rules).
//
// Each transfer maps one RSG to a *set* of RSGs: DIVIDE introduces one graph
// per possible x->sel target (§4.1), and materialization introduces the
// "exactly one location remained" / "more remain" variants. Every produced
// graph is pruned and compressed; infeasible graphs (null dereference on
// this configuration, or contradictory properties after division) are
// dropped.
#pragma once

#include <vector>

#include "cfg/cfg.hpp"
#include "cfg/induction.hpp"
#include "ipa/summary.hpp"
#include "rsg/level.hpp"
#include "rsg/ops.hpp"

namespace psa::analysis {

struct TransferContext {
  rsg::LevelPolicy policy;
  rsg::PruneOptions prune;
  const cfg::Cfg* cfg = nullptr;
  const cfg::InductionInfo* induction = nullptr;
  /// Struct table for the kHavoc transfer's typed ⊤ saturation (may be null:
  /// the fresh summary node is then unsaturated — still sound, coarser).
  /// Set by the engine from Options::types.
  const lang::TypeTable* types = nullptr;
  /// Selector universe of the analyzed function (every selector some
  /// statement mentions) for the global-havoc summarize_top collapse; may be
  /// null (treated as empty). Set by the engine.
  const std::vector<support::Symbol>* selectors = nullptr;
  /// Function summaries for the kCall transfer (docs/ALGORITHMS.md). Null or
  /// missing/unanalyzed entries make call sites fall back to the sound havoc
  /// transfer. Set by the engine from Options::summaries.
  const ipa::SummaryTable* summaries = nullptr;
};

/// Abstractly execute the statement of `node` over `in`.
[[nodiscard]] std::vector<rsg::Rsg> execute_statement(const rsg::Rsg& in,
                                                      const cfg::CfgNode& node,
                                                      const TransferContext& ctx);

/// Entry abstraction for the summary computation (src/ipa): bind `param` to
/// an unknown caller value of struct type `type`. Produces the same three
/// variant families as the kHavoc rebind transfer — NULL, alias with an
/// existing pvar target, fresh saturated ⊤ node — but WITHOUT the
/// graph-level havoc taint: an unknown entry state is not a degradation.
/// The node-level havoc marks stay and double as "argument-region" markers
/// inside the summary run (they are OR-sticky under every merge, join and
/// materialization, so an exit-state cell may derive from caller memory iff
/// its node carries the mark).
[[nodiscard]] std::vector<rsg::Rsg> bind_unknown_param(
    const rsg::Rsg& in, support::Symbol param, lang::StructId type,
    const TransferContext& ctx);

}  // namespace psa::analysis
