// The symbolic-execution engine (§2, Fig. 2 of the paper): a worklist
// fixpoint over the statement-level CFG. Every CFG node accumulates the
// RSRSG holding *after* its statement; the input of a node is the reduced
// union of its predecessors' outputs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/governor.hpp"
#include "analysis/rsrsg.hpp"
#include "analysis/semantics.hpp"
#include "cfg/cfg.hpp"
#include "cfg/induction.hpp"
#include "support/memory_stats.hpp"
#include "support/metrics.hpp"

namespace psa::analysis {

/// What the engine does when a budget (visits, memory, RSRSG cardinality)
/// trips mid-fixpoint.
enum class BudgetPolicy : std::uint8_t {
  /// Degrade through the governor's widening ladder and keep going: the run
  /// always terminates with a sound, coarser result plus a
  /// DegradationReport. The default — production analyzers never abort.
  kDegrade,
  /// Legacy behavior (and the paper's own failure mode): stop and report the
  /// failed status. The client gets partial per-node states.
  kHardFail,
};

struct Options {
  rsg::AnalysisLevel level = rsg::AnalysisLevel::kL1;

  /// JOIN compatible RSGs inside every RSRSG (§4.3). Off only for ablation.
  bool enable_join = true;
  /// Share-attribute link pruning (§4.2). Off only for ablation.
  bool share_pruning = true;

  /// Widening: when a statement's RSRSG exceeds this many graphs, ALIAS-
  /// equal members are force-joined with conservative property merges (see
  /// rsg::force_join). 0 disables widening — the pure paper semantics, which
  /// can take the paper's own 17-minute L1 runs on Barnes-Hut-like codes.
  std::size_t widen_threshold = 48;

  /// Guard rails. The paper's compiler ran out of memory on Sparse LU at
  /// L2/L3 (Table 1); memory_budget_bytes reproduces that failure mode
  /// deterministically (0 = unlimited).
  std::size_t max_rsgs_per_set = 4096;
  std::uint64_t max_node_visits = 2'000'000;
  std::uint64_t memory_budget_bytes = 0;

  /// Wall-clock deadline for one run in milliseconds (0 = none). On expiry
  /// under kDegrade the engine collapses every state to the governor's top
  /// rung and drains the remaining fixpoint within a grace period of one
  /// more deadline (total <= 2x); if even the drain overruns — or under
  /// kHardFail — the run stops with AnalysisStatus::kDeadline.
  std::uint64_t deadline_ms = 0;

  /// Optional cooperative cancellation; not owned, may be signalled from any
  /// thread. A cancelled run stops at the next poll point with
  /// AnalysisStatus::kCancelled (cancellation never drains: the caller asked
  /// for the run to end, not for a coarser answer).
  const CancelToken* cancel = nullptr;

  /// Budget-breach handling; see BudgetPolicy.
  BudgetPolicy budget_policy = BudgetPolicy::kDegrade;

  /// Struct declarations of the analyzed unit; not owned. Set automatically
  /// by analyze_program. Lets the governor's kSummarize rung saturate the
  /// may-structure with every *type-correct* link, making its ⊤ a fixed
  /// point under further joins (see rsg::summarize_top). Optional: without
  /// it the top rung is unsaturated — still sound, slower to converge.
  const lang::TypeTable* types = nullptr;

  /// Worker threads for the per-RSG transfer fan-out (see DESIGN.md §7).
  /// 1 = serial. Results are merged in input order, so any thread count
  /// produces identical RSRSGs.
  std::size_t threads = 1;

  // --- Interprocedural analysis (src/ipa, docs/ALGORITHMS.md). ------------

  /// Master switch for the summary pass: analyze_program computes function
  /// summaries for the unit and kCall statements apply them. Off, every
  /// call site takes the sound havoc fallback (the PR 5 behavior).
  bool enable_summaries = true;
  /// Kleene iteration cap for recursive call-graph SCCs; an over-cap cycle
  /// falls back to havoc at its call sites (summaries stay analyzed=false).
  std::size_t max_summary_iters = 8;
  /// Node-visit budget for each per-callee summary fixpoint (smaller than
  /// max_node_visits: a summary that needs the full intraprocedural budget
  /// is not worth its cost — the callee degrades to havoc instead).
  std::uint64_t summary_visit_budget = 200'000;
  /// Summary table for the kCall transfer; not owned. Set automatically by
  /// analyze_program (null or missing entries fall back to havoc).
  const ipa::SummaryTable* summaries = nullptr;
  /// Entry states for the fixpoint instead of the single empty
  /// configuration; not owned. Used by the summary computation to start a
  /// callee from its abstracted parameter bindings. Null or empty = the
  /// usual empty-graph entry.
  const std::vector<rsg::Rsg>* entry_states = nullptr;

  [[nodiscard]] rsg::LevelPolicy policy() const { return {level}; }
  [[nodiscard]] rsg::PruneOptions prune_options() const {
    return {share_pruning};
  }
};

enum class AnalysisStatus : std::uint8_t {
  kConverged,
  kOutOfMemory,      // exceeded Options::memory_budget_bytes
  kIterationLimit,   // exceeded Options::max_node_visits
  kSetLimit,         // an RSRSG exceeded Options::max_rsgs_per_set
  kDeadline,         // Options::deadline_ms expired (drain included)
  kCancelled,        // the CancelToken was signalled
};

[[nodiscard]] std::string_view to_string(AnalysisStatus status);

/// True for every status caused by resource exhaustion rather than a
/// completed fixpoint — the progressive driver must not escalate past these
/// (a higher level is strictly more expensive and fails the same way).
[[nodiscard]] constexpr bool is_resource_status(AnalysisStatus s) noexcept {
  return s != AnalysisStatus::kConverged;
}

struct AnalysisResult {
  AnalysisStatus status = AnalysisStatus::kConverged;
  /// RSRSG after each CFG node (indexed by cfg::NodeId).
  std::vector<Rsrsg> per_node;
  double seconds = 0.0;
  support::MemorySnapshot memory;
  std::uint64_t node_visits = 0;
  /// What the governor had to do to keep the run alive (empty when no budget
  /// tripped). A converged-but-degraded result is sound but coarser.
  DegradationReport degradation;
  /// Operation-counter deltas of this run (all-zero in PSA_METRICS=0
  /// builds). The non-timer counters are deterministic for a fixed input and
  /// options; see support/metrics.hpp and docs/OBSERVABILITY.md.
  support::MetricsSnapshot ops;

  [[nodiscard]] bool converged() const noexcept {
    return status == AnalysisStatus::kConverged;
  }
  [[nodiscard]] bool degraded() const noexcept {
    return !degradation.empty();
  }
  /// The RSRSG at the function exit.
  [[nodiscard]] const Rsrsg& at_exit(const cfg::Cfg& cfg) const {
    return per_node[cfg.exit()];
  }
  /// Peak bytes of RSG storage during the run (Table-1 "Space").
  [[nodiscard]] std::uint64_t peak_bytes() const noexcept {
    return memory.peak_bytes;
  }
};

/// Run the fixpoint. Opens a support::MemoryRegion for the duration so the
/// result's memory snapshot covers exactly this run even when other
/// allocations (earlier units of an in-process batch) share the process.
[[nodiscard]] AnalysisResult analyze_cfg(const cfg::Cfg& cfg,
                                         const cfg::InductionInfo& induction,
                                         const Options& options = {});

}  // namespace psa::analysis
