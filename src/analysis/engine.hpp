// The symbolic-execution engine (§2, Fig. 2 of the paper): a worklist
// fixpoint over the statement-level CFG. Every CFG node accumulates the
// RSRSG holding *after* its statement; the input of a node is the reduced
// union of its predecessors' outputs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/rsrsg.hpp"
#include "analysis/semantics.hpp"
#include "cfg/cfg.hpp"
#include "cfg/induction.hpp"
#include "support/memory_stats.hpp"

namespace psa::analysis {

struct Options {
  rsg::AnalysisLevel level = rsg::AnalysisLevel::kL1;

  /// JOIN compatible RSGs inside every RSRSG (§4.3). Off only for ablation.
  bool enable_join = true;
  /// Share-attribute link pruning (§4.2). Off only for ablation.
  bool share_pruning = true;

  /// Widening: when a statement's RSRSG exceeds this many graphs, ALIAS-
  /// equal members are force-joined with conservative property merges (see
  /// rsg::force_join). 0 disables widening — the pure paper semantics, which
  /// can take the paper's own 17-minute L1 runs on Barnes-Hut-like codes.
  std::size_t widen_threshold = 48;

  /// Guard rails. The paper's compiler ran out of memory on Sparse LU at
  /// L2/L3 (Table 1); memory_budget_bytes reproduces that failure mode
  /// deterministically (0 = unlimited).
  std::size_t max_rsgs_per_set = 4096;
  std::uint64_t max_node_visits = 2'000'000;
  std::uint64_t memory_budget_bytes = 0;

  /// Worker threads for the per-RSG transfer fan-out (see DESIGN.md §7).
  /// 1 = serial. Results are merged in input order, so any thread count
  /// produces identical RSRSGs.
  std::size_t threads = 1;

  [[nodiscard]] rsg::LevelPolicy policy() const { return {level}; }
  [[nodiscard]] rsg::PruneOptions prune_options() const {
    return {share_pruning};
  }
};

enum class AnalysisStatus : std::uint8_t {
  kConverged,
  kOutOfMemory,      // exceeded Options::memory_budget_bytes
  kIterationLimit,   // exceeded Options::max_node_visits
  kSetLimit,         // an RSRSG exceeded Options::max_rsgs_per_set
};

[[nodiscard]] std::string_view to_string(AnalysisStatus status);

struct AnalysisResult {
  AnalysisStatus status = AnalysisStatus::kConverged;
  /// RSRSG after each CFG node (indexed by cfg::NodeId).
  std::vector<Rsrsg> per_node;
  double seconds = 0.0;
  support::MemorySnapshot memory;
  std::uint64_t node_visits = 0;

  [[nodiscard]] bool converged() const noexcept {
    return status == AnalysisStatus::kConverged;
  }
  /// The RSRSG at the function exit.
  [[nodiscard]] const Rsrsg& at_exit(const cfg::Cfg& cfg) const {
    return per_node[cfg.exit()];
  }
  /// Peak bytes of RSG storage during the run (Table-1 "Space").
  [[nodiscard]] std::uint64_t peak_bytes() const noexcept {
    return memory.peak_bytes;
  }
};

/// Run the fixpoint. Resets the global MemoryStats at entry so the result's
/// memory snapshot covers exactly this run.
[[nodiscard]] AnalysisResult analyze_cfg(const cfg::Cfg& cfg,
                                         const cfg::InductionInfo& induction,
                                         const Options& options = {});

}  // namespace psa::analysis
