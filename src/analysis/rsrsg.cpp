#include "analysis/rsrsg.hpp"

#include <algorithm>
#include <sstream>

#include "support/metrics.hpp"

namespace psa::analysis {

bool Rsrsg::insert(Rsg g, const LevelPolicy& policy, bool enable_join) {
  const std::uint64_t fp = rsg::fingerprint(g);
  return insert_with_fp(std::move(g), fp, policy, enable_join);
}

const std::vector<rsg::NodeCompatContext>& Rsrsg::member_contexts(
    std::size_t i) const {
  if (contexts_[i] == nullptr) {
    contexts_[i] = std::make_shared<const std::vector<rsg::NodeCompatContext>>(
        rsg::compute_compat_contexts(graphs_[i]));
  }
  return *contexts_[i];
}

bool Rsrsg::insert_with_fp(Rsg g, std::uint64_t fp, const LevelPolicy& policy,
                           bool enable_join) {
  if (widened_) {
    // Widened mode: coarsen the incoming graph and fold it monotonically
    // into its ALIAS-matching member.
    rsg::coarsen(g, policy);
    fp = rsg::fingerprint(g);
    for (std::size_t i = 0; i < graphs_.size(); ++i) {
      if (fingerprints_[i] == fp && rsg::rsg_equal(graphs_[i], g))
        return false;
    }
    for (std::size_t i = 0; i < graphs_.size(); ++i) {
      if (!rsg::alias_equal(graphs_[i], g)) continue;
      Rsg folded = rsg::force_join(graphs_[i], g, policy);
      rsg::coarsen(folded, policy);
      const std::uint64_t folded_fp = rsg::fingerprint(folded);
      if (folded_fp == fingerprints_[i] && rsg::rsg_equal(folded, graphs_[i]))
        return false;  // absorbed, nothing new
      graphs_[i] = std::move(folded);
      fingerprints_[i] = folded_fp;
      contexts_[i] = nullptr;
      return true;
    }
    graphs_.push_back(std::move(g));
    fingerprints_.push_back(fp);
    contexts_.push_back(nullptr);
    return true;
  }

  // Exact duplicate?
  for (std::size_t i = 0; i < graphs_.size(); ++i) {
    if (fingerprints_[i] == fp && rsg::rsg_equal(graphs_[i], g)) return false;
  }

  if (enable_join) {
    // Fuse into the first compatible member; the join may enable further
    // fusions, so re-insert the result. Candidate contexts are computed once
    // and member contexts cached across inserts.
    std::shared_ptr<const std::vector<rsg::NodeCompatContext>> g_ctx;
    for (std::size_t i = 0; i < graphs_.size(); ++i) {
      PSA_COUNT(support::Counter::kJoinAttempts);
      if (!rsg::alias_equal(graphs_[i], g)) {  // cheap pre-filter
        PSA_COUNT(support::Counter::kJoinRejectedAlias);
        continue;
      }
      if (g_ctx == nullptr) {
        g_ctx = std::make_shared<const std::vector<rsg::NodeCompatContext>>(
            rsg::compute_compat_contexts(g));
      }
      if (!rsg::compatible_with_contexts(graphs_[i], member_contexts(i), g,
                                         *g_ctx, policy)) {
        PSA_COUNT(support::Counter::kJoinRejectedCompat);
      } else {
        PSA_COUNT(support::Counter::kJoinAccepts);
        Rsg joined = rsg::join(graphs_[i], g, policy);
        graphs_.erase(graphs_.begin() + static_cast<std::ptrdiff_t>(i));
        fingerprints_.erase(fingerprints_.begin() +
                            static_cast<std::ptrdiff_t>(i));
        contexts_.erase(contexts_.begin() + static_cast<std::ptrdiff_t>(i));
        insert(std::move(joined), policy, enable_join);
        return true;  // the set changed even if the join was absorbing
      }
    }
  }

  graphs_.push_back(std::move(g));
  fingerprints_.push_back(fp);
  contexts_.push_back(nullptr);
  return true;
}

bool Rsrsg::merge(const Rsrsg& other, const LevelPolicy& policy,
                  bool enable_join) {
  bool changed = false;
  for (std::size_t i = 0; i < other.graphs_.size(); ++i) {
    // Reuse the cached fingerprint: the common case in the engine's input
    // accumulation is a duplicate, decided by u64 comparisons only.
    changed |= insert_with_fp(other.graphs_[i], other.fingerprints_[i], policy,
                              enable_join);
  }
  return changed;
}

bool Rsrsg::widen(const LevelPolicy& policy, std::size_t max_graphs) {
  if (widened_ && graphs_.size() <= max_graphs) return false;
  const bool was_widened = widened_;
  widened_ = true;
  // Re-insert every member through the widened-mode path: coarsen, then fold
  // ALIAS-equal members together. The result has at most one member per
  // ALIAS relation.
  std::vector<Rsg> members;
  members.swap(graphs_);
  std::vector<std::uint64_t> old_fps;
  old_fps.swap(fingerprints_);
  contexts_.clear();
  for (Rsg& g : members) {
    insert(std::move(g), policy, /*enable_join=*/true);
  }
  // A widened set may *legitimately* exceed max_graphs (one member per
  // ALIAS pattern is the floor), so "still too big" is not "changed".
  // Report change only when folding actually moved something — otherwise a
  // caller re-widening an over-threshold set on every visit would requeue
  // its successors forever.
  if (!was_widened || graphs_.size() != old_fps.size()) return true;
  for (std::size_t i = 0; i < old_fps.size(); ++i) {
    if (fingerprints_[i] != old_fps[i]) return true;
  }
  return false;
}

bool Rsrsg::degrade_members(const LevelPolicy& policy,
                            const std::function<void(Rsg&)>& transform) {
  const bool was_widened = widened_;
  widened_ = true;
  std::vector<Rsg> members;
  members.swap(graphs_);
  std::vector<std::uint64_t> old_fps;
  old_fps.swap(fingerprints_);
  contexts_.clear();
  for (Rsg& g : members) {
    transform(g);
    insert(std::move(g), policy, /*enable_join=*/true);
  }
  if (!was_widened || graphs_.size() != old_fps.size()) return true;
  // Same cardinality: changed iff some member's fingerprint moved. (Order-
  // sensitive and thus conservative — a spurious `true` only requeues the
  // successors once more.)
  for (std::size_t i = 0; i < old_fps.size(); ++i) {
    if (fingerprints_[i] != old_fps[i]) return true;
  }
  return false;
}

Rsrsg Rsrsg::restore(std::vector<Rsg> graphs, bool widened) {
  Rsrsg set;
  set.widened_ = widened;
  set.graphs_ = std::move(graphs);
  set.fingerprints_.reserve(set.graphs_.size());
  for (const Rsg& g : set.graphs_) {
    set.fingerprints_.push_back(rsg::fingerprint(g));
  }
  set.contexts_.assign(set.graphs_.size(), nullptr);
  return set;
}

std::size_t Rsrsg::footprint_bytes() const {
  std::size_t bytes = 0;
  for (const Rsg& g : graphs_) bytes += g.footprint_bytes();
  return bytes;
}

std::size_t Rsrsg::total_nodes() const {
  std::size_t n = 0;
  for (const Rsg& g : graphs_) n += g.node_count();
  return n;
}

bool Rsrsg::equals(const Rsrsg& other) const {
  if (graphs_.size() != other.graphs_.size()) return false;
  // Multiset match: each member must pair with a distinct isomorphic member.
  std::vector<bool> used(other.graphs_.size(), false);
  for (std::size_t i = 0; i < graphs_.size(); ++i) {
    bool matched = false;
    for (std::size_t j = 0; j < other.graphs_.size(); ++j) {
      if (used[j] || fingerprints_[i] != other.fingerprints_[j]) continue;
      if (rsg::rsg_equal(graphs_[i], other.graphs_[j])) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

std::string Rsrsg::dump(const support::Interner& interner) const {
  std::ostringstream os;
  os << "RSRSG with " << graphs_.size() << " graph(s)\n";
  for (std::size_t i = 0; i < graphs_.size(); ++i) {
    os << "--- rsg " << i << " ---\n" << graphs_[i].dump(interner);
  }
  return os.str();
}

}  // namespace psa::analysis
