// The benchmark corpus.
//
// Mini-C re-implementations of the four codes the paper evaluates (§5):
// sparse Matrix-vector product, sparse Matrix-Matrix product, sparse LU
// factorization, and the Barnes-Hut N-body simulation (with the recursive
// octree traversals already inlined around an explicit stack, exactly as the
// authors had to do — their compiler, like ours, is intraprocedural).
//
// The numeric payloads are placeholders: the shape analysis only observes
// the pointer-statement skeleton, which these sources preserve (structure
// shape, sharing pattern, construction and traversal order). See DESIGN.md
// §2 for the substitution argument.
//
// Auxiliary programs (singly/doubly linked lists, trees, destructive list
// reversal) exercise individual operations and feed the unit tests.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/analyzer.hpp"

namespace psa::corpus {

struct CorpusProgram {
  std::string_view name;
  std::string_view description;
  std::string_view source;
  /// In the paper's Table 1 (true for the four evaluated codes).
  bool in_table1 = false;
};

/// All corpus programs, stable order.
[[nodiscard]] const std::vector<CorpusProgram>& all_programs();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const CorpusProgram* find_program(std::string_view name);

/// A deliberately buggy corpus variant: a clean program with one seeded
/// memory-safety defect at a known line. These feed the checker tests (the
/// defect must be reported at exactly `defect_line` with `expected_rule`)
/// and are kept out of all_programs() so the clean-corpus suites and the
/// Table-1 harness never see them.
struct BuggyProgram {
  std::string_view name;
  std::string_view description;
  std::string_view source;
  /// Rule the seeded defect must trigger, e.g. "PSA-USE-AFTER-FREE".
  std::string_view expected_rule;
  /// 1-based source line of the injected defect.
  std::uint32_t defect_line = 0;
};

/// All deliberately-buggy programs, stable order.
[[nodiscard]] const std::vector<BuggyProgram>& buggy_programs();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const BuggyProgram* find_buggy_program(std::string_view name);

/// A dirty corpus entry: realistic list/tree code mixed with constructs
/// outside the analyzable subset (unknown extern calls, '.' accesses, casts
/// to unknown structs, unparseable declarations). These are the acceptance
/// fixtures of the salvage-mode frontend (docs/RESILIENCE.md): under
/// salvage every entry must complete as a *partial* unit — never a
/// frontend error — with the exact degradation counts below, and under
/// --strict-frontend every entry must be rejected. Kept out of
/// all_programs() so the clean-corpus suites never see them.
struct DirtyProgram {
  std::string_view name;
  std::string_view description;
  std::string_view source;
  /// Golden salvage outcome (asserted by tests/driver/salvage_golden_test
  /// and scripts/salvage_smoke.sh).
  std::uint32_t expected_havoc_sites = 0;
  std::uint32_t expected_skipped_decls = 0;
  std::uint32_t expected_functions_analyzable = 0;
  std::uint32_t expected_functions_total = 0;
};

/// All dirty programs, stable order.
[[nodiscard]] const std::vector<DirtyProgram>& dirty_programs();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const DirtyProgram* find_dirty_program(std::string_view name);

/// One corpus entry pushed through the frontend, with failure isolated: a
/// program whose frontend rejects it carries the diagnostics instead of an
/// analysis, and never aborts the batch.
struct PreparedProgram {
  const CorpusProgram* program = nullptr;
  std::optional<analysis::ProgramAnalysis> analysis;
  std::string error;  // frontend diagnostics when !ok()

  [[nodiscard]] bool ok() const noexcept { return analysis.has_value(); }
};

/// Prepare a selection of corpus entries, catching FrontendError per entry
/// so one pathological input never kills a batch run. The output order
/// matches the input order and every entry is present (failed ones carry
/// their diagnostics).
[[nodiscard]] std::vector<PreparedProgram> prepare_programs(
    const std::vector<const CorpusProgram*>& selection);

/// prepare_programs over the whole corpus, stable order.
[[nodiscard]] std::vector<PreparedProgram> prepare_all();

/// One corpus entry exposed as a batch analysis unit for the crash-isolated
/// driver (src/driver/): a stable unit name plus the in-memory source. The
/// corpus functions are all `main`, so the unit is (program × main).
struct UnitSource {
  std::string_view name;
  std::string_view source;
};

/// The whole clean corpus as batch units, stable order (matches
/// all_programs()). `psa_cli --corpus` and the fault-injection suites feed
/// these through driver::run_batch.
[[nodiscard]] std::vector<UnitSource> unit_sources();

/// The dirty corpus as batch units, stable order (matches
/// dirty_programs()). `psa_cli --corpus-dirty` and the salvage smoke test
/// feed these through driver::run_batch.
[[nodiscard]] std::vector<UnitSource> dirty_unit_sources();

// Shorthand accessors for the paper's four codes.
[[nodiscard]] const CorpusProgram& sparse_matvec();
[[nodiscard]] const CorpusProgram& sparse_matmat();
[[nodiscard]] const CorpusProgram& sparse_lu();
[[nodiscard]] const CorpusProgram& barnes_hut();

}  // namespace psa::corpus
