// The benchmark corpus.
//
// Mini-C re-implementations of the four codes the paper evaluates (§5):
// sparse Matrix-vector product, sparse Matrix-Matrix product, sparse LU
// factorization, and the Barnes-Hut N-body simulation (with the recursive
// octree traversals already inlined around an explicit stack, exactly as the
// authors had to do — their compiler, like ours, is intraprocedural).
//
// The numeric payloads are placeholders: the shape analysis only observes
// the pointer-statement skeleton, which these sources preserve (structure
// shape, sharing pattern, construction and traversal order). See DESIGN.md
// §2 for the substitution argument.
//
// Auxiliary programs (singly/doubly linked lists, trees, destructive list
// reversal) exercise individual operations and feed the unit tests.
#pragma once

#include <string_view>
#include <vector>

namespace psa::corpus {

struct CorpusProgram {
  std::string_view name;
  std::string_view description;
  std::string_view source;
  /// In the paper's Table 1 (true for the four evaluated codes).
  bool in_table1 = false;
};

/// All corpus programs, stable order.
[[nodiscard]] const std::vector<CorpusProgram>& all_programs();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const CorpusProgram* find_program(std::string_view name);

// Shorthand accessors for the paper's four codes.
[[nodiscard]] const CorpusProgram& sparse_matvec();
[[nodiscard]] const CorpusProgram& sparse_matmat();
[[nodiscard]] const CorpusProgram& sparse_lu();
[[nodiscard]] const CorpusProgram& barnes_hut();

}  // namespace psa::corpus
