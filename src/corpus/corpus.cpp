#include "corpus/corpus.hpp"

namespace psa::corpus {

namespace {

// ---------------------------------------------------------------------------
// Auxiliary structures
// ---------------------------------------------------------------------------

constexpr std::string_view kSllSource = R"(
struct node { struct node *nxt; int val; };

void main() {
  struct node *list; struct node *p; struct node *t;
  int i; int n;
  list = NULL; i = 0; n = 100;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = list;
    t->val = i;
    list = t;
    i = i + 1;
  }
  t = NULL;
  p = list;
  while (p != NULL) {
    p->val = p->val + 1;
    p = p->nxt;
  }
}
)";

constexpr std::string_view kDllSource = R"(
struct dnode { struct dnode *nxt; struct dnode *prv; int val; };

void main() {
  struct dnode *list; struct dnode *tail; struct dnode *t; struct dnode *p;
  int i; int n;
  i = 0; n = 100;
  list = malloc(sizeof(struct dnode));
  list->nxt = NULL;
  list->prv = NULL;
  tail = list;
  while (i < n) {
    t = malloc(sizeof(struct dnode));
    t->nxt = NULL;
    t->prv = tail;
    tail->nxt = t;
    tail = t;
    i = i + 1;
  }
  t = NULL;
  p = list;
  while (p != NULL) {
    p->val = 0;
    p = p->nxt;
  }
  p = tail;
  while (p != NULL) {
    p->val = 1;
    p = p->prv;
  }
}
)";

constexpr std::string_view kListReverseSource = R"(
struct node { struct node *nxt; int val; };

void main() {
  struct node *list; struct node *rev; struct node *t;
  int i; int n;
  list = NULL; i = 0; n = 100;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = list;
    list = t;
    i = i + 1;
  }
  t = NULL;
  rev = NULL;
  while (list != NULL) {
    t = list->nxt;
    list->nxt = rev;
    rev = list;
    list = t;
  }
  t = NULL;
}
)";

constexpr std::string_view kBinaryTreeSource = R"(
struct tnode { struct tnode *lft; struct tnode *rgt; int key; };
struct stk { struct stk *nxt; struct tnode *node; };

void main() {
  struct tnode *root; struct tnode *cur; struct tnode *nw;
  struct stk *S; struct stk *e;
  int i; int n; int dir;
  root = malloc(sizeof(struct tnode));
  root->lft = NULL;
  root->rgt = NULL;
  i = 0; n = 100; dir = 3;
  while (i < n) {
    nw = malloc(sizeof(struct tnode));
    nw->lft = NULL;
    nw->rgt = NULL;
    cur = root;
    while (cur != NULL) {
      if (dir < 0) {
        if (cur->lft == NULL) {
          cur->lft = nw;
          cur = NULL;
        } else {
          cur = cur->lft;
        }
      } else {
        if (cur->rgt == NULL) {
          cur->rgt = nw;
          cur = NULL;
        } else {
          cur = cur->rgt;
        }
      }
    }
    i = i + 1;
  }
  nw = NULL;
  cur = NULL;
  /* iterative traversal with an explicit stack (inlined recursion) */
  S = malloc(sizeof(struct stk));
  S->nxt = NULL;
  S->node = root;
  while (S != NULL) {
    cur = S->node;
    S = S->nxt;
    if (cur->lft != NULL) {
      e = malloc(sizeof(struct stk));
      e->node = cur->lft;
      e->nxt = S;
      S = e;
    }
    if (cur->rgt != NULL) {
      e = malloc(sizeof(struct stk));
      e->node = cur->rgt;
      e->nxt = S;
      S = e;
    }
    cur->key = cur->key + 1;
  }
  e = NULL;
  cur = NULL;
}
)";

constexpr std::string_view kNaryTreeSource = R"(
struct cell { struct cell *child; struct cell *sib; int depth; };

void main() {
  struct cell *root; struct cell *cur; struct cell *nc;
  int i; int n; int pick;
  root = malloc(sizeof(struct cell));
  root->child = NULL;
  root->sib = NULL;
  i = 0; n = 50; pick = 2;
  while (i < n) {
    /* descend to an arbitrary cell, then append a child */
    cur = root;
    while (pick > 0 && cur->child != NULL) {
      cur = cur->child;
      pick = pick - 1;
    }
    nc = malloc(sizeof(struct cell));
    nc->child = NULL;
    nc->sib = cur->child;
    cur->child = nc;
    i = i + 1;
  }
  nc = NULL;
  cur = NULL;
}
)";

// An em3d-like bipartite kernel (Olden-style, the "irregular codes" of the
// paper's §1): a list of E-nodes and a list of H-nodes, where every E-node
// depends on *some* H-node — several E-nodes may depend on the same one, so
// the H-nodes are genuinely shared through `dep` and the update loop is
// genuinely serial. The corpus's only intentionally-shared structure: it
// checks the analysis against false negatives.
constexpr std::string_view kEm3dSource = R"(
struct hnode { struct hnode *nxt; double val; };
struct enode { struct enode *nxt; struct hnode *dep; double val; };

void main() {
  struct hnode *hlist; struct hnode *h; struct hnode *pick;
  struct enode *elist; struct enode *e;
  int i; int n; int hop;
  /* build the H list */
  hlist = NULL; i = 0; n = 12;
  while (i < n) {
    h = malloc(sizeof(struct hnode));
    h->nxt = hlist;
    h->val = 0.0;
    hlist = h;
    i = i + 1;
  }
  h = NULL;
  /* build the E list; each E-node depends on an arbitrary H-node */
  elist = NULL; i = 0; hop = 3;
  while (i < n) {
    e = malloc(sizeof(struct enode));
    e->nxt = elist;
    e->val = 1.0;
    pick = hlist;
    while (hop > 0 && pick != NULL) {
      pick = pick->nxt;
      hop = hop - 1;
    }
    if (pick == NULL) {
      pick = hlist;
    }
    e->dep = pick;
    elist = e;
    i = i + 1;
  }
  e = NULL; pick = NULL;
  /* relaxation: every E-node pushes into its dependency */
  e = elist;
  while (e != NULL) {
    pick = e->dep;
    if (pick != NULL) {
      pick->val = pick->val + e->val;
    }
    pick = NULL;
    e = e->nxt;
  }
  e = NULL;
}
)";

// FIFO queue: append at the tail, dequeue (and free) from the head — the
// two-cursor pattern where head and tail alias exactly while the queue has
// one element.
constexpr std::string_view kQueueSource = R"(
struct qnode { struct qnode *nxt; int v; };

void main() {
  struct qnode *head; struct qnode *tail; struct qnode *t;
  int i; int n;
  head = NULL; tail = NULL; i = 0; n = 50;
  while (i < n) {
    t = malloc(sizeof(struct qnode));
    t->nxt = NULL;
    if (tail == NULL) {
      head = t;
      tail = t;
    } else {
      tail->nxt = t;
      tail = t;
    }
    i = i + 1;
  }
  t = NULL;
  while (head != NULL) {
    t = head;
    head = head->nxt;
    t->nxt = NULL;
    free(t);
  }
  t = NULL;
  tail = NULL;
}
)";

// Delete the second element of a doubly-linked list: the classic four-way
// relink (nxt forward, prv backward, victim detached).
constexpr std::string_view kDllDeleteSource = R"(
struct dnode { struct dnode *nxt; struct dnode *prv; int v; };

void main() {
  struct dnode *head; struct dnode *tail; struct dnode *t;
  struct dnode *vic; struct dnode *nx; struct dnode *p;
  int i; int n;
  head = malloc(sizeof(struct dnode));
  head->nxt = NULL;
  head->prv = NULL;
  tail = head;
  i = 0; n = 20;
  while (i < n) {
    t = malloc(sizeof(struct dnode));
    t->nxt = NULL;
    t->prv = tail;
    tail->nxt = t;
    tail = t;
    i = i + 1;
  }
  t = NULL;
  /* unlink the node after the head, when present */
  vic = head->nxt;
  if (vic != NULL) {
    nx = vic->nxt;
    head->nxt = nx;
    if (nx != NULL) {
      nx->prv = head;
    }
    vic->nxt = NULL;
    vic->prv = NULL;
    free(vic);
  }
  vic = NULL; nx = NULL;
  p = head;
  while (p != NULL) {
    p->v = p->v + 1;
    p = p->nxt;
  }
  p = NULL;
}
)";

// Destructively merge two lists, taking elements alternately (the output is
// built reversed). The merge loop's condition is opaque to the analysis;
// the per-list null tests inside carry the refinement.
constexpr std::string_view kListMergeSource = R"(
struct node { struct node *nxt; int v; };

void main() {
  struct node *a; struct node *b; struct node *out; struct node *t;
  int i; int n;
  a = NULL; i = 0; n = 20;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = a;
    a = t;
    i = i + 1;
  }
  b = NULL; i = 0;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = b;
    b = t;
    i = i + 1;
  }
  t = NULL;
  out = NULL;
  while (a != NULL || b != NULL) {
    if (a != NULL) {
      t = a;
      a = a->nxt;
      t->nxt = out;
      out = t;
    }
    if (b != NULL) {
      t = b;
      b = b->nxt;
      t->nxt = out;
      out = t;
    }
  }
  t = NULL;
}
)";

// Mirror a binary tree in place with an explicit stack: every visited node
// swaps its lft and rgt children through a temporary — a destructive update
// of two selectors per element during a stack-assisted traversal.
constexpr std::string_view kTreeMirrorSource = R"(
struct tnode { struct tnode *lft; struct tnode *rgt; int k; };
struct stk { struct stk *nxt; struct tnode *node; };

void main() {
  struct tnode *root; struct tnode *cur; struct tnode *nw;
  struct tnode *tmp;
  struct stk *S; struct stk *e;
  int i; int n; int dir;
  root = malloc(sizeof(struct tnode));
  root->lft = NULL;
  root->rgt = NULL;
  i = 0; n = 30; dir = 1;
  while (i < n) {
    nw = malloc(sizeof(struct tnode));
    nw->lft = NULL;
    nw->rgt = NULL;
    cur = root;
    while (cur != NULL) {
      if (dir < 0) {
        if (cur->lft == NULL) {
          cur->lft = nw;
          cur = NULL;
        } else {
          cur = cur->lft;
        }
      } else {
        if (cur->rgt == NULL) {
          cur->rgt = nw;
          cur = NULL;
        } else {
          cur = cur->rgt;
        }
      }
    }
    i = i + 1;
  }
  nw = NULL;
  cur = NULL;
  /* mirror with an explicit stack */
  S = malloc(sizeof(struct stk));
  S->nxt = NULL;
  S->node = root;
  while (S != NULL) {
    cur = S->node;
    S = S->nxt;
    tmp = cur->lft;
    cur->lft = cur->rgt;
    cur->rgt = tmp;
    tmp = NULL;
    if (cur->lft != NULL) {
      e = malloc(sizeof(struct stk));
      e->node = cur->lft;
      e->nxt = S;
      S = e;
    }
    if (cur->rgt != NULL) {
      e = malloc(sizeof(struct stk));
      e->node = cur->rgt;
      e->nxt = S;
      S = e;
    }
  }
  e = NULL;
  cur = NULL;
}
)";

// Two independent lists hanging off one header struct. The heads sit exactly
// one selector step from the pvar `h`, so C_SPATH1 (L2) keeps them — and
// hence the two lists — apart, while C_SPATH0 (L1) summarizes them together:
// the progressive driver's L1 -> L2 escalation witness.
constexpr std::string_view kTwoListsSource = R"(
struct node { struct node *nxt; int val; };
struct hdr { struct node *la; struct node *lb; };

void main() {
  struct hdr *h; struct node *t; struct node *p;
  int i; int n;
  h = malloc(sizeof(struct hdr));
  h->la = NULL;
  h->lb = NULL;
  i = 0; n = 10;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = h->la;
    h->la = t;
    i = i + 1;
  }
  i = 0;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = h->lb;
    h->lb = t;
    i = i + 1;
  }
  t = NULL;
  /* update list A only: requires knowing the lists are disjoint */
  p = h->la;
  while (p != NULL) {
    p->val = 1;
    p = p->nxt;
  }
  p = NULL;
}
)";

// A traversal that records every visited node in a second ("marker")
// structure. Without TOUCH (L1/L2) the visited and unvisited list segments
// summarize together, so materializing the next element drags the markers'
// stale may-references along and the store flags SHSEL(node, ref) = true.
// With TOUCH (L3) visited nodes — referenced by markers — stay separate from
// unvisited ones and the sharing stays false: the L2 -> L3 witness,
// miniaturizing the paper's Barnes-Hut stack argument (§5.1).
constexpr std::string_view kVisitMarksSource = R"(
struct node { struct node *nxt; int val; };
struct mark { struct mark *nxt; struct node *ref; };

void main() {
  struct node *list; struct node *p; struct node *t;
  struct mark *marks; struct mark *m;
  int i; int n;
  list = NULL; i = 0; n = 10;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = list;
    list = t;
    i = i + 1;
  }
  t = NULL;
  marks = NULL;
  p = list;
  while (p != NULL) {
    m = malloc(sizeof(struct mark));
    m->ref = p;
    m->nxt = marks;
    marks = m;
    p = p->nxt;
  }
  m = NULL; p = NULL;
}
)";

// The interprocedural witness: one list threaded through three helpers —
// an allocating builder, a read-only fold, a freeing teardown. Every call
// is an in-unit call the bottom-up summary pass can model, so the whole
// unit analyzes with zero havoc sites and zero call fallbacks
// (tests/ipa/summary_test.cpp pins the counters); before function
// summaries each of the five call sites was a whole-graph havoc.
constexpr std::string_view kListPipelineSource = R"(
struct node { struct node *nxt; int val; };

struct node *push(struct node *list) {
  struct node *t;
  t = malloc(sizeof(struct node));
  t->nxt = list;
  t->val = 1;
  return t;
}

int sum(struct node *list) {
  struct node *p;
  int acc;
  acc = 0;
  p = list;
  while (p != NULL) {
    acc = acc + p->val;
    p = p->nxt;
  }
  return acc;
}

void release(struct node *list) {
  struct node *t;
  while (list != NULL) {
    t = list;
    list = list->nxt;
    free(t);
  }
}

void main() {
  struct node *l;
  int i; int total;
  l = NULL; i = 0;
  while (i < 3) {
    l = push(l);
    i = i + 1;
  }
  total = sum(l);
  release(l);
}
)";

// ---------------------------------------------------------------------------
// Table-1 codes
// ---------------------------------------------------------------------------

// Sparse matrix = list of rows, each row a list of elements; vectors are
// lists. Build A and x, compute y = A*x.
constexpr std::string_view kSparseMatVecSource = R"(
struct elem { struct elem *nxtc; double val; int col; };
struct row { struct row *nxtr; struct elem *elems; int idx; };
struct vec { struct vec *nxt; double val; int idx; };

void main() {
  struct row *A; struct row *r;
  struct elem *e; struct elem *t;
  struct vec *x; struct vec *y; struct vec *v; struct vec *w;
  int i; int j; int n; int nz;
  /* build the sparse matrix A */
  A = NULL; i = 0; n = 10;
  while (i < n) {
    r = malloc(sizeof(struct row));
    r->elems = NULL;
    r->idx = i;
    r->nxtr = A;
    A = r;
    j = 0; nz = 5;
    while (j < nz) {
      t = malloc(sizeof(struct elem));
      t->nxtc = r->elems;
      t->col = j;
      t->val = 1.0;
      r->elems = t;
      j = j + 1;
    }
    i = i + 1;
  }
  r = NULL; t = NULL;
  /* build the dense-as-list vector x */
  x = NULL; i = 0;
  while (i < n) {
    v = malloc(sizeof(struct vec));
    v->nxt = x;
    v->idx = i;
    v->val = 2.0;
    x = v;
    i = i + 1;
  }
  v = NULL;
  /* y = A * x */
  y = NULL;
  r = A;
  while (r != NULL) {
    w = malloc(sizeof(struct vec));
    w->val = 0.0;
    w->idx = r->idx;
    w->nxt = y;
    y = w;
    e = r->elems;
    while (e != NULL) {
      v = x;
      while (v != NULL) {
        if (v->idx == e->col) {
          w->val = w->val + e->val * v->val;
        }
        v = v->nxt;
      }
      e = e->nxtc;
    }
    r = r->nxtr;
  }
  w = NULL; e = NULL; v = NULL; r = NULL;
}
)";

// C = A * B with element search-or-insert on the result rows.
constexpr std::string_view kSparseMatMatSource = R"(
struct elem { struct elem *nxtc; double val; int col; };
struct row { struct row *nxtr; struct elem *elems; int idx; };

void main() {
  struct row *A; struct row *B; struct row *C;
  struct row *r; struct row *br; struct row *cr;
  struct elem *e; struct elem *be; struct elem *ce; struct elem *f;
  struct elem *t;
  int i; int j; int n; int nz;
  /* build A */
  A = NULL; i = 0; n = 8;
  while (i < n) {
    r = malloc(sizeof(struct row));
    r->elems = NULL;
    r->idx = i;
    r->nxtr = A;
    A = r;
    j = 0; nz = 4;
    while (j < nz) {
      t = malloc(sizeof(struct elem));
      t->nxtc = r->elems;
      t->col = j;
      t->val = 1.0;
      r->elems = t;
      j = j + 1;
    }
    i = i + 1;
  }
  /* build B */
  B = NULL; i = 0;
  while (i < n) {
    r = malloc(sizeof(struct row));
    r->elems = NULL;
    r->idx = i;
    r->nxtr = B;
    B = r;
    j = 0; nz = 4;
    while (j < nz) {
      t = malloc(sizeof(struct elem));
      t->nxtc = r->elems;
      t->col = j;
      t->val = 1.0;
      r->elems = t;
      j = j + 1;
    }
    i = i + 1;
  }
  r = NULL; t = NULL;
  /* C = A * B */
  C = NULL;
  r = A;
  while (r != NULL) {
    cr = malloc(sizeof(struct row));
    cr->elems = NULL;
    cr->idx = r->idx;
    cr->nxtr = C;
    C = cr;
    e = r->elems;
    while (e != NULL) {
      br = B;
      while (br != NULL) {
        if (br->idx == e->col) {
          be = br->elems;
          while (be != NULL) {
            /* find or insert C[r->idx][be->col] */
            f = NULL;
            ce = cr->elems;
            while (ce != NULL) {
              if (ce->col == be->col) {
                f = ce;
                ce = NULL;
              } else {
                ce = ce->nxtc;
              }
            }
            if (f == NULL) {
              f = malloc(sizeof(struct elem));
              f->col = be->col;
              f->val = 0.0;
              f->nxtc = cr->elems;
              cr->elems = f;
            }
            f->val = f->val + e->val * be->val;
            be = be->nxtc;
          }
        }
        br = br->nxtr;
      }
      e = e->nxtc;
    }
    r = r->nxtr;
  }
  f = NULL; ce = NULL; be = NULL; br = NULL; e = NULL; cr = NULL; r = NULL;
}
)";

// In-place LU factorization over a list-of-rows matrix with sorted column
// lists: pivot search, then row updates with mid-list insertion / deletion —
// the heaviest pointer surgery of the four codes (and the heaviest analysis
// in the paper's Table 1).
constexpr std::string_view kSparseLuSource = R"(
struct elem { struct elem *nxtc; double val; int col; };
struct row { struct row *nxtr; struct elem *elems; int idx; };

void main() {
  struct row *A; struct row *r; struct row *r2;
  struct elem *t; struct elem *pe; struct elem *le;
  struct elem *prev; struct elem *cur; struct elem *ne;
  int i; int j; int n; int nz; int k; int stop;
  /* build A */
  A = NULL; i = 0; n = 6;
  while (i < n) {
    r = malloc(sizeof(struct row));
    r->elems = NULL;
    r->idx = i;
    r->nxtr = A;
    A = r;
    j = 0; nz = 4;
    while (j < nz) {
      t = malloc(sizeof(struct elem));
      t->nxtc = r->elems;
      t->col = j;
      t->val = 1.0;
      r->elems = t;
      j = j + 1;
    }
    i = i + 1;
  }
  t = NULL;
  /* factorize: for each pivot row r, update every later row r2 */
  r = A;
  k = 0;
  while (r != NULL) {
    r2 = r->nxtr;
    while (r2 != NULL) {
      /* find the element of r2 in the pivot column (if any) */
      le = NULL;
      cur = r2->elems;
      while (cur != NULL) {
        if (cur->col == k) {
          le = cur;
          cur = NULL;
        } else {
          cur = cur->nxtc;
        }
      }
      if (le != NULL) {
        le->val = le->val / 2.0;
        /* for each pivot-row element right of the pivot, find-or-insert the
           matching element of r2 (sorted insertion with a trailing prev) */
        pe = r->elems;
        while (pe != NULL) {
          if (pe->col > k) {
            prev = NULL;
            cur = r2->elems;
            stop = 0;
            while (cur != NULL && stop == 0) {
              if (cur->col < pe->col) {
                prev = cur;
                cur = cur->nxtc;
              } else {
                stop = 1;
              }
            }
            if (cur != NULL && cur->col == pe->col) {
              cur->val = cur->val - le->val * pe->val;
            } else {
              ne = malloc(sizeof(struct elem));
              ne->col = pe->col;
              ne->val = 0.0 - le->val * pe->val;
              if (prev == NULL) {
                ne->nxtc = r2->elems;
                r2->elems = ne;
              } else {
                ne->nxtc = prev->nxtc;
                prev->nxtc = ne;
              }
              ne = NULL;
            }
          }
          pe = pe->nxtc;
        }
        /* drop the eliminated element from r2 (it moved to L) */
        prev = NULL;
        cur = r2->elems;
        stop = 0;
        while (cur != NULL && stop == 0) {
          if (cur->col == k) {
            stop = 1;
          } else {
            prev = cur;
            cur = cur->nxtc;
          }
        }
        if (cur != NULL) {
          if (prev == NULL) {
            r2->elems = cur->nxtc;
          } else {
            prev->nxtc = cur->nxtc;
          }
          cur->nxtc = NULL;
        }
      }
      r2 = r2->nxtr;
    }
    r = r->nxtr;
    k = k + 1;
  }
  prev = NULL; cur = NULL; ne = NULL; pe = NULL; le = NULL; r2 = NULL; r = NULL;
}
)";

// Barnes-Hut (§5.1, Fig. 3): bodies in a singly linked list `Lbodies`; the
// octree as cells with a children list (child/sib) and a `bd` selector from
// leaves into the body list; all recursive traversals inlined around an
// explicit stack whose `node` selector points into the octree.
constexpr std::string_view kBarnesHutSource = R"(
struct body { struct body *nxt; double mass; double px; };
struct cell { struct cell *child; struct cell *sib; struct body *bd;
              double cm; };
struct stk { struct stk *nxt; struct cell *node; };

void main() {
  struct body *Lbodies; struct body *b; struct body *bb;
  struct cell *root; struct cell *cur; struct cell *c; struct cell *nc;
  struct stk *S; struct stk *e;
  struct cell *p;
  int i; int j; int n; int descending; int choose;
  /* build the body list */
  Lbodies = NULL; i = 0; n = 16;
  while (i < n) {
    b = malloc(sizeof(struct body));
    b->nxt = Lbodies;
    b->mass = 1.0;
    b->px = 0.0;
    Lbodies = b;
    i = i + 1;
  }
  b = NULL;
  /* (i) build the octree: insert each body, splitting full leaves */
  root = malloc(sizeof(struct cell));
  root->child = NULL;
  root->sib = NULL;
  root->bd = NULL;
  b = Lbodies;
  choose = 5;
  while (b != NULL) {
    cur = root;
    descending = 1;
    while (descending == 1) {
      if (cur->child != NULL) {
        /* internal cell: descend into the subsquare holding the body */
        c = cur->child;
        while (choose > 0 && c->sib != NULL) {
          c = c->sib;
          choose = choose - 1;
        }
        cur = c;
      } else {
        if (cur->bd == NULL) {
          cur->bd = b;
          descending = 0;
        } else {
          /* occupied leaf: split into 8 subsquares, push the old body down */
          j = 0;
          while (j < 8) {
            nc = malloc(sizeof(struct cell));
            nc->child = NULL;
            nc->bd = NULL;
            nc->sib = cur->child;
            cur->child = nc;
            j = j + 1;
          }
          c = cur->child;
          c->bd = cur->bd;
          cur->bd = NULL;
        }
      }
    }
    b = b->nxt;
  }
  c = NULL; nc = NULL; cur = NULL;
  /* (ii) center of mass: traverse the octree with an explicit stack */
  S = malloc(sizeof(struct stk));
  S->nxt = NULL;
  S->node = root;
  while (S != NULL) {
    p = S->node;
    S = S->nxt;
    c = p->child;
    while (c != NULL) {
      e = malloc(sizeof(struct stk));
      e->node = c;
      e->nxt = S;
      S = e;
      c = c->sib;
    }
    if (p->bd != NULL) {
      bb = p->bd;
      p->cm = p->cm + bb->mass;
      bb = NULL;
    }
  }
  e = NULL; p = NULL; c = NULL;
  /* (iii) forces: for each body, traverse the octree (private stack) */
  b = Lbodies;
  while (b != NULL) {
    S = malloc(sizeof(struct stk));
    S->nxt = NULL;
    S->node = root;
    while (S != NULL) {
      p = S->node;
      S = S->nxt;
      c = p->child;
      while (c != NULL) {
        e = malloc(sizeof(struct stk));
        e->node = c;
        e->nxt = S;
        S = e;
        c = c->sib;
      }
      if (p->bd != NULL) {
        bb = p->bd;
        b->px = b->px + bb->mass * p->cm;
        bb = NULL;
      }
      p->cm = p->cm + 1.0;
    }
    e = NULL; p = NULL; c = NULL;
    b = b->nxt;
  }
}
)";

// Reduced Barnes-Hut: the same three structures (body list, cell tree with
// children lists and bd selectors into the bodies, traversal stack) and the
// same three phases, but with a directly-built two-level tree instead of the
// insert-with-split construction. Small enough for the *pure* paper
// semantics (no widening) to converge at every level — the substrate for the
// qualitative Fig. 3 reproduction; the full barnes_hut above reproduces the
// Table-1 cost behaviour.
constexpr std::string_view kBarnesHutSmallSource = R"(
struct body { struct body *nxt; double mass; double px; };
struct cell { struct cell *child; struct cell *sib; struct body *bd;
              double cm; };
struct stk { struct stk *nxt; struct cell *node; };

void main() {
  struct body *Lbodies; struct body *b; struct body *bb;
  struct cell *root; struct cell *c;
  struct cell *p;
  struct stk *S; struct stk *e;
  int i; int n;
  /* body list */
  Lbodies = NULL; i = 0; n = 16;
  while (i < n) {
    b = malloc(sizeof(struct body));
    b->nxt = Lbodies;
    b->mass = 1.0;
    Lbodies = b;
    i = i + 1;
  }
  b = NULL;
  /* two-level octree: one leaf per body under the root */
  root = malloc(sizeof(struct cell));
  root->child = NULL;
  root->sib = NULL;
  root->bd = NULL;
  b = Lbodies;
  while (b != NULL) {
    c = malloc(sizeof(struct cell));
    c->child = NULL;
    c->bd = b;
    c->sib = root->child;
    root->child = c;
    b = b->nxt;
  }
  c = NULL;
  /* (ii) center of mass via an explicit stack */
  S = malloc(sizeof(struct stk));
  S->nxt = NULL;
  S->node = root;
  while (S != NULL) {
    p = S->node;
    S = S->nxt;
    c = p->child;
    while (c != NULL) {
      e = malloc(sizeof(struct stk));
      e->node = c;
      e->nxt = S;
      S = e;
      c = c->sib;
    }
    if (p->bd != NULL) {
      bb = p->bd;
      p->cm = p->cm + bb->mass;
      bb = NULL;
    }
    e = NULL;
  }
  p = NULL; c = NULL;
  /* (iii) forces: per body, traverse the tree with a private stack */
  b = Lbodies;
  while (b != NULL) {
    S = malloc(sizeof(struct stk));
    S->nxt = NULL;
    S->node = root;
    while (S != NULL) {
      p = S->node;
      S = S->nxt;
      c = p->child;
      while (c != NULL) {
        e = malloc(sizeof(struct stk));
        e->node = c;
        e->nxt = S;
        S = e;
        c = c->sib;
      }
      if (p->bd != NULL) {
        bb = p->bd;
        b->px = b->px + bb->mass * p->cm;
        bb = NULL;
      }
      p->cm = p->cm + 1.0;
      e = NULL;
    }
    p = NULL; c = NULL;
    b = b->nxt;
  }
}
)";

// ---------------------------------------------------------------------------
// Deliberately buggy variants (checker test corpus; see corpus.hpp). Each
// seeds exactly one defect whose line number is recorded in the registry —
// keep the sources stable or update the defect_line fields and the golden
// files under tests/checker/golden/.
// ---------------------------------------------------------------------------

// Dangling traversal: the loop frees the current cell and then reads its
// nxt selector from the freed memory.
constexpr std::string_view kBugUafTraversalSource = R"(
struct node { struct node *nxt; int v; };

void main() {
  struct node *list; struct node *p; struct node *t;
  int i; int n;
  list = NULL; i = 0; n = 10;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = list;
    list = t;
    i = i + 1;
  }
  t = NULL;
  p = list;
  while (p != NULL) {
    free(p);
    p = p->nxt;
  }
  p = NULL;
}
)";

// The same cell freed through two aliases.
constexpr std::string_view kBugDoubleFreeSource = R"(
struct node { struct node *nxt; int v; };

void main() {
  struct node *a; struct node *b;
  a = malloc(sizeof(struct node));
  a->nxt = NULL;
  b = a;
  free(a);
  free(b);
  a = NULL; b = NULL;
}
)";

// Lost head pointer: the only reference to the whole list is overwritten.
constexpr std::string_view kBugLostHeadSource = R"(
struct node { struct node *nxt; int v; };

void main() {
  struct node *list; struct node *t;
  int i; int n;
  list = NULL; i = 0; n = 10;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = list;
    list = t;
    i = i + 1;
  }
  t = NULL;
  list = NULL;
}
)";

// Unchecked allocation: p is only assigned on one branch, the dereference
// below runs unconditionally (the classic unchecked-malloc-result shape —
// in this mini-C, malloc itself never returns NULL, so the defect is the
// conditionally-unassigned pointer).
constexpr std::string_view kBugNullUncheckedSource = R"(
struct node { struct node *nxt; int v; };

void main() {
  struct node *p;
  int ok;
  p = NULL; ok = 0;
  if (ok > 0) {
    p = malloc(sizeof(struct node));
  }
  p->nxt = NULL;
  p = NULL;
}
)";

// Queue drain that frees the cell before loading its successor.
constexpr std::string_view kBugUafQueueSource = R"(
struct qnode { struct qnode *nxt; int v; };

void main() {
  struct qnode *head; struct qnode *tail; struct qnode *t;
  int i; int n;
  head = NULL; tail = NULL; i = 0; n = 20;
  while (i < n) {
    t = malloc(sizeof(struct qnode));
    t->nxt = NULL;
    if (tail == NULL) {
      head = t;
      tail = t;
    } else {
      tail->nxt = t;
      tail = t;
    }
    i = i + 1;
  }
  t = NULL;
  while (head != NULL) {
    t = head;
    free(t);
    head = t->nxt;
    t = NULL;
  }
  tail = NULL;
}
)";

// Selector overwrite that drops the last reference to the middle cell.
constexpr std::string_view kBugLeakOverwriteSource = R"(
struct node { struct node *nxt; int v; };

void main() {
  struct node *a; struct node *b; struct node *c;
  a = malloc(sizeof(struct node));
  b = malloc(sizeof(struct node));
  c = malloc(sizeof(struct node));
  a->nxt = b;
  b->nxt = NULL;
  c->nxt = NULL;
  b = NULL;
  a->nxt = c;
}
)";

const std::vector<BuggyProgram>& buggy() {
  static const std::vector<BuggyProgram> kBuggy = {
      {"bug_uaf_traversal",
       "dangling traversal: free(p) then p = p->nxt reads freed memory",
       kBugUafTraversalSource, "PSA-USE-AFTER-FREE", 18},
      {"bug_double_free", "the same cell freed through two aliases",
       kBugDoubleFreeSource, "PSA-DOUBLE-FREE", 10},
      {"bug_lost_head",
       "lost head pointer: the only reference to the list is overwritten",
       kBugLostHeadSource, "PSA-LEAK", 15},
      {"bug_null_unchecked",
       "conditionally-assigned pointer dereferenced unconditionally",
       kBugNullUncheckedSource, "PSA-NULL-DEREF", 11},
      {"bug_uaf_queue",
       "queue drain that frees the cell before loading its successor",
       kBugUafQueueSource, "PSA-USE-AFTER-FREE", 24},
      {"bug_leak_overwrite",
       "selector overwrite dropping the last reference to a cell",
       kBugLeakOverwriteSource, "PSA-LEAK", 13},
  };
  return kBuggy;
}

// ---------------------------------------------------------------------------
// Dirty programs (salvage-mode acceptance fixtures)
//
// Each mixes a clean list/tree kernel the analysis fully understands with
// exactly the kind of real-C cruft the frontend cannot model: an unknown
// extern call, a '.' field access, a cast to an undeclared struct, an
// unparseable declaration. Under the salvage frontend every one of these
// must complete as a *partial* unit with the golden degradation counts in
// dirty(); under --strict-frontend every one must be a frontend error.
// ---------------------------------------------------------------------------

// Unknown extern call taking the list: the callee may rewrite anything
// reachable from the argument, so the call lowers to one global havoc.
// The traversal after the call still runs (over the havoc envelope), so
// findings survive — confidence-tainted, not dropped.
constexpr std::string_view kDirtySllTraceSource = R"(
struct node { struct node *nxt; int val; };

void main() {
  struct node *list; struct node *t; struct node *p;
  int i; int n;
  list = NULL; i = 0; n = 100;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = list;
    t->val = i;
    list = t;
    i = i + 1;
  }
  t = NULL;
  trace_list(list);
  p = list;
  while (p != NULL) {
    p->val = p->val + 1;
    p = p->nxt;
  }
}
)";

// An unparseable helper declaration (goto is outside the grammar): the
// parser stubs the whole declaration and resynchronizes at its closing
// brace, and `main` analyzes untouched.
constexpr std::string_view kDirtyTreeGotoSource = R"(
struct tnode { struct tnode *lft; struct tnode *rgt; int key; };

void validate() {
  goto done;
done:
  return;
}

void main() {
  struct tnode *root; struct tnode *nw; struct tnode *cur;
  int i; int n;
  root = malloc(sizeof(struct tnode));
  root->lft = NULL;
  root->rgt = NULL;
  i = 0; n = 10;
  while (i < n) {
    nw = malloc(sizeof(struct tnode));
    nw->lft = NULL;
    nw->rgt = NULL;
    cur = root;
    if (cur->lft == NULL) {
      cur->lft = nw;
    } else {
      cur->rgt = nw;
    }
    i = i + 1;
  }
}
)";

// A '.' field access on a pointer (by-value struct semantics the analysis
// does not model): the scalar store havocs — no kHavoc statement is needed
// because scalars are opaque to the shape domain — but the unit is still
// degraded and its findings are confidence-tainted.
constexpr std::string_view kDirtyDllDotSource = R"(
struct dnode { struct dnode *nxt; struct dnode *prv; int val; };

void main() {
  struct dnode *list; struct dnode *tail; struct dnode *t; struct dnode *p;
  int i; int n;
  i = 0; n = 100;
  list = malloc(sizeof(struct dnode));
  list->nxt = NULL;
  list->prv = NULL;
  tail = list;
  while (i < n) {
    t = malloc(sizeof(struct dnode));
    t->nxt = NULL;
    t->prv = tail;
    tail->nxt = t;
    tail = t;
    i = i + 1;
  }
  tail.val = 7;
  t = NULL;
  p = list;
  while (p != NULL) {
    p->val = 0;
    p = p->nxt;
  }
}
)";

// A cast to an undeclared struct rebinds one pointer: the assignment
// lowers to a typed havoc rebind of `t` (unbound / aliased / fresh ⊤
// cell), and the destructive reversal after it still analyzes.
constexpr std::string_view kDirtyReverseCastSource = R"(
struct node { struct node *nxt; int val; };

void main() {
  struct node *list; struct node *rev; struct node *t;
  int i; int n;
  list = NULL; i = 0; n = 100;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = list;
    list = t;
    i = i + 1;
  }
  t = (struct packet *)recv_any();
  rev = NULL;
  while (list != NULL) {
    t = list->nxt;
    list->nxt = rev;
    rev = list;
    list = t;
  }
  t = NULL;
}
)";

// An in-unit helper next to an unknown extern: the burn-down witness for
// interprocedural summaries. scrub() is summarized — its call site costs
// no havoc — so the unit's degradation budget is exactly the one extern
// call. Before summaries this unit would have counted two havoc sites.
constexpr std::string_view kDirtyMixedCallsSource = R"(
struct node { struct node *nxt; int val; };

void scrub(struct node *l) {
  while (l != NULL) {
    l->val = 0;
    l = l->nxt;
  }
}

void main() {
  struct node *list; struct node *t; struct node *p;
  int i; int n;
  list = NULL; i = 0; n = 100;
  while (i < n) {
    t = malloc(sizeof(struct node));
    t->nxt = list;
    t->val = i;
    list = t;
    i = i + 1;
  }
  t = NULL;
  scrub(list);
  audit_list(list);
  p = list;
  while (p != NULL) {
    p->val = p->val + 1;
    p = p->nxt;
  }
}
)";

const std::vector<DirtyProgram>& dirty() {
  static const std::vector<DirtyProgram> kDirty = {
      {"dirty_sll_trace",
       "unknown extern call over the list: one global havoc, traversal "
       "analyzed over the havoc envelope",
       kDirtySllTraceSource, /*havoc=*/1, /*skipped=*/0, /*analyzable=*/1,
       /*total=*/1},
      {"dirty_tree_goto",
       "unparseable helper declaration (goto): skipped decl, main analyzed "
       "untouched",
       kDirtyTreeGotoSource, /*havoc=*/0, /*skipped=*/1, /*analyzable=*/1,
       /*total=*/2},
      {"dirty_dll_dot",
       "'.' field access on a pointer: degraded without a havoc statement "
       "(scalars are opaque)",
       kDirtyDllDotSource, /*havoc=*/0, /*skipped=*/0, /*analyzable=*/1,
       /*total=*/1},
      {"dirty_reverse_cast",
       "cast to an undeclared struct: typed havoc rebind of one pointer, "
       "destructive reversal still analyzed",
       kDirtyReverseCastSource, /*havoc=*/1, /*skipped=*/0, /*analyzable=*/1,
       /*total=*/1},
      {"dirty_mixed_calls",
       "in-unit helper call summarized (no havoc) beside an unknown extern "
       "(one havoc): the interprocedural burn-down witness",
       kDirtyMixedCallsSource, /*havoc=*/1, /*skipped=*/0, /*analyzable=*/2,
       /*total=*/2},
  };
  return kDirty;
}

const std::vector<CorpusProgram>& programs() {
  static const std::vector<CorpusProgram> kPrograms = {
      {"sll", "singly linked list: build then traverse", kSllSource, false},
      {"dll",
       "doubly linked list with cycle links (the Fig. 1 structure): build, "
       "forward and backward traversals",
       kDllSource, false},
      {"list_reverse", "destructive in-place list reversal", kListReverseSource,
       false},
      {"binary_tree",
       "binary search tree: pointer insertion, then a stack-driven traversal",
       kBinaryTreeSource, false},
      {"nary_tree", "n-ary tree via child/sibling lists", kNaryTreeSource,
       false},
      {"em3d_like",
       "em3d-style bipartite dependency kernel — intentionally shared "
       "H-nodes (false-negative check)",
       kEm3dSource, false},
      {"queue", "FIFO queue: tail appends, head dequeues with free",
       kQueueSource, false},
      {"dll_delete", "doubly-linked list with a mid-list deletion",
       kDllDeleteSource, false},
      {"list_merge", "destructive alternating merge of two lists",
       kListMergeSource, false},
      {"tree_mirror",
       "in-place binary tree mirroring via an explicit stack (destructive "
       "two-selector updates)",
       kTreeMirrorSource, false},
      {"two_lists",
       "two independent lists off one header — the L1 -> L2 progressive "
       "escalation witness (C_SPATH1)",
       kTwoListsSource, false},
      {"visit_marks",
       "traversal recording visited nodes — the L2 -> L3 progressive "
       "escalation witness (TOUCH)",
       kVisitMarksSource, false},
      {"list_pipeline",
       "one list threaded through build/fold/free helpers — the "
       "interprocedural-summary witness (every call summarized, zero havoc)",
       kListPipelineSource, false},
      {"sparse_matvec", "sparse Matrix-vector product (Table 1, S.Mat-Vec)",
       kSparseMatVecSource, true},
      {"sparse_matmat", "sparse Matrix-Matrix product (Table 1, S.Mat-Mat)",
       kSparseMatMatSource, true},
      {"sparse_lu", "sparse LU factorization (Table 1, S.LU fact.)",
       kSparseLuSource, true},
      {"barnes_hut", "Barnes-Hut N-body simulation (Table 1 and Fig. 3)",
       kBarnesHutSource, true},
      {"barnes_hut_small",
       "reduced Barnes-Hut (same structures and phases, directly-built "
       "two-level tree) — Fig. 3 qualitative substrate",
       kBarnesHutSmallSource, false},
  };
  return kPrograms;
}

}  // namespace

const std::vector<CorpusProgram>& all_programs() { return programs(); }

const std::vector<BuggyProgram>& buggy_programs() { return buggy(); }

const std::vector<DirtyProgram>& dirty_programs() { return dirty(); }

const DirtyProgram* find_dirty_program(std::string_view name) {
  for (const DirtyProgram& p : dirty()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const BuggyProgram* find_buggy_program(std::string_view name) {
  for (const BuggyProgram& p : buggy()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const CorpusProgram* find_program(std::string_view name) {
  for (const CorpusProgram& p : programs()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::vector<PreparedProgram> prepare_programs(
    const std::vector<const CorpusProgram*>& selection) {
  std::vector<PreparedProgram> out;
  out.reserve(selection.size());
  for (const CorpusProgram* p : selection) {
    PreparedProgram prepared;
    prepared.program = p;
    if (p == nullptr) {
      prepared.error = "null corpus entry";
      out.push_back(std::move(prepared));
      continue;
    }
    try {
      prepared.analysis.emplace(analysis::prepare(p->source));
    } catch (const analysis::FrontendError& e) {
      prepared.error = e.what();
    }
    out.push_back(std::move(prepared));
  }
  return out;
}

std::vector<PreparedProgram> prepare_all() {
  std::vector<const CorpusProgram*> selection;
  for (const CorpusProgram& p : programs()) selection.push_back(&p);
  return prepare_programs(selection);
}

std::vector<UnitSource> unit_sources() {
  std::vector<UnitSource> out;
  out.reserve(programs().size());
  for (const CorpusProgram& p : programs()) out.push_back({p.name, p.source});
  return out;
}

std::vector<UnitSource> dirty_unit_sources() {
  std::vector<UnitSource> out;
  out.reserve(dirty().size());
  for (const DirtyProgram& p : dirty()) out.push_back({p.name, p.source});
  return out;
}

const CorpusProgram& sparse_matvec() { return *find_program("sparse_matvec"); }
const CorpusProgram& sparse_matmat() { return *find_program("sparse_matmat"); }
const CorpusProgram& sparse_lu() { return *find_program("sparse_lu"); }
const CorpusProgram& barnes_hut() { return *find_program("barnes_hut"); }

}  // namespace psa::corpus
