// The crash-safe, content-addressed, on-disk result cache (docs/SERVICE.md).
//
// One entry per CacheKey (cache/key.hpp), holding the serialized UnitPayload
// bytes of a completed analysis — the same PSASNAP1-enveloped, checksummed
// format the batch driver already uses for IPC and checkpoints, so every
// read is self-validating.
//
// Directory layout (--cache-dir=DIR):
//   <32-hex-key>.entry            one validated result payload
//   <key>.entry.tmp.<pid>-<seq>   in-flight write; renamed to .entry on
//                                 completion (writer-unique suffix, so
//                                 concurrent workers never clobber each
//                                 other's half-written bytes)
//   quarantine/                   entries that failed validation, kept for
//                                 post-mortem instead of silently deleted
//   service.journal               daemon request journal (src/service)
//   sweep.lock                    advisory flock taken by sweep(); a second
//                                 concurrent sweeper skips instead of racing
//   sweep.journal                 append-only record of every sweep decision
//
// Robustness contract — every failure mode is contained, never propagated:
//   * lookup() verifies the PSASNAP1 envelope checksum; a corrupt, truncated
//     or version-skewed entry is EVICTED (quarantined) and reported as a
//     miss — hostile bytes are never returned to a caller;
//   * deep validation failures the cache cannot see (payload-level skew
//     caught only by full deserialization) are reported back through
//     evict() and handled the same way;
//   * store() writes tmp-then-rename, so a crash mid-write leaves only a
//     .tmp straggler that recover() sweeps; store failures (disk full,
//     permissions) degrade to "no cache" — they never fail the analysis;
//   * recover() is the startup scan: stray .tmp files are deleted, every
//     entry's envelope is re-verified, and invalid entries are quarantined;
//   * sweep() bounds the cache (--cache-max-bytes / --cache-max-age): age
//     expiry first, then oldest-first eviction until the directory fits the
//     byte cap. lookup() touches an entry's mtime on every hit, so recency
//     is use-recency, not write-recency. The sweep is crash-safe and safe
//     under concurrent daemons/clients sharing the directory: an advisory
//     flock serializes sweepers (a busy lock skips the sweep — someone else
//     is already bounding the cache), every decision is journaled before the
//     entry is touched, policy evictions use atomic unlink (a concurrent
//     reader that already opened the file keeps a consistent view; one that
//     hasn't gets a clean miss), and anything suspicious — an entry that
//     fails envelope validation mid-sweep — is quarantined, never deleted.
//
// All methods are nothrow-by-contract except the constructor (an unusable
// directory is a configuration error the caller must see). Counting goes
// through the global metrics registry: cache_hits / cache_misses /
// cache_stores / cache_evictions / cache_self_heals (self-heals are counted
// by the caller that recomputes after an eviction — see
// driver::run_unit_serialized).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "cache/key.hpp"

namespace psa::cache {

/// Deliberate store-side fault injection (docs/RESILIENCE.md), mapped from
/// driver::FaultKind by the worker. Tear = truncated bytes written straight
/// to the final path (a simulated crash with no rename guard); flip = one
/// bit flipped after a completed store.
enum class StoreFault : std::uint8_t { kNone, kTear, kFlip };

/// Lookup-side fault injection (driver::FaultKind::kEvictRace): the entry
/// vanishes between the caller's decision to read and the read itself — the
/// exact window a concurrent sweeper's unlink can land in. Must degrade to a
/// clean miss.
enum class LookupFault : std::uint8_t { kNone, kEvictRace };

/// Which metrics vocabulary a probe counts into. Entries are otherwise
/// identical (same directory, same envelope validation, same sweep policy):
/// kUnit probes count cache_hits/misses/stores, kFunction probes count
/// func_cache_hits/misses/stores — so unit-level hit-rate dashboards are
/// not diluted by the (much chattier) function-granular tier.
enum class EntryTier : std::uint8_t { kUnit, kFunction };

class ResultCache {
 public:
  /// Open (and create) `dir`. Throws std::runtime_error when the directory
  /// cannot be created or written — a misconfigured cache must be loud, a
  /// degraded one silent.
  explicit ResultCache(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  struct Lookup {
    enum class Status : std::uint8_t {
      kHit,      // bytes hold a checksum-valid entry
      kMiss,     // no entry on disk
      kEvicted,  // entry existed but failed validation; quarantined
    };
    Status status = Status::kMiss;
    std::string bytes;
    std::string diagnostic;  // kEvicted: what was wrong with the entry
  };

  /// Envelope-validated entry bytes for `key`. Counts hits on kHit and
  /// misses on kMiss/kEvicted (an evicted entry IS a miss — the caller
  /// recomputes) in the `tier`'s vocabulary; eviction additionally counts
  /// cache_evictions. A hit touches the entry's mtime (best effort) so
  /// sweep() evicts by recency of use. `fault` injects the sweep-race window
  /// (LookupFault).
  [[nodiscard]] Lookup lookup(const CacheKey& key,
                              LookupFault fault = LookupFault::kNone,
                              EntryTier tier = EntryTier::kUnit);

  /// Atomically store entry bytes (write .tmp, rename). Returns false on I/O
  /// failure; never throws. Counts the `tier`'s store counter on success.
  bool store(const CacheKey& key, std::string_view bytes,
             StoreFault fault = StoreFault::kNone,
             EntryTier tier = EntryTier::kUnit);

  /// Remove an entry the *caller* proved invalid (deep deserialization
  /// failure after an envelope-valid lookup). Quarantines and counts
  /// cache_evictions.
  void evict(const CacheKey& key, std::string_view reason);

  struct RecoveryReport {
    std::size_t entries_kept = 0;
    std::size_t tmp_removed = 0;
    std::size_t quarantined = 0;

    [[nodiscard]] bool clean() const noexcept {
      return tmp_removed == 0 && quarantined == 0;
    }
  };

  /// Startup scan of the whole directory: delete stray .tmp files, verify
  /// every entry envelope, quarantine what fails. Never throws — an
  /// unreadable entry is quarantined (or deleted if even that fails).
  RecoveryReport recover();

  /// Eviction policy for sweep(). Zero fields are unbounded.
  struct SweepLimits {
    std::uint64_t max_bytes = 0;  // total .entry bytes the cache may hold
    std::uint64_t max_age_ms = 0;  // entries unused longer than this expire

    [[nodiscard]] bool bounded() const noexcept {
      return max_bytes > 0 || max_age_ms > 0;
    }
  };

  struct SweepReport {
    /// False when another sweeper held the advisory lock (its sweep counts)
    /// or the limits were unbounded — nothing was scanned.
    bool ran = false;
    std::size_t scanned = 0;      // entries examined
    std::size_t evicted = 0;      // valid entries removed by the policy
    std::size_t quarantined = 0;  // suspicious entries moved, not deleted
    std::uint64_t bytes_before = 0;
    std::uint64_t bytes_after = 0;

    [[nodiscard]] std::uint64_t bytes_reclaimed() const noexcept {
      return bytes_before >= bytes_after ? bytes_before - bytes_after : 0;
    }
  };

  /// Bound the cache to `limits`: expire entries unused for max_age_ms, then
  /// unlink oldest-first until the directory fits max_bytes. Crash-safe and
  /// concurrent-safe (see the header comment); never throws, and a sweep
  /// failure of any kind degrades to "cache unbounded a little longer".
  /// Counts cache_sweep_runs / cache_sweep_evictions / cache_sweep_bytes.
  SweepReport sweep(const SweepLimits& limits);

  /// Path of the entry for `key` (tests and the fault drill corrupt it).
  [[nodiscard]] std::string entry_path(const CacheKey& key) const;

 private:
  /// Move `path` to quarantine/ (unique suffix), or delete it when the move
  /// fails. Counts cache_evictions.
  void quarantine(const std::string& path, std::string_view reason);

  std::string dir_;
  std::uint32_t tmp_seq_ = 0;
};

}  // namespace psa::cache
