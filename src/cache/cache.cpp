#include "cache/cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "rsg/serialize.hpp"
#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define PSA_CACHE_HAS_PID 1
#else
#define PSA_CACHE_HAS_PID 0
#endif

namespace psa::cache {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kEntrySuffix = ".entry";

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Envelope-level validation: magic, version, size and checksum — cheap and
/// catches every torn write and bit flip. Payload-level skew is left to the
/// caller's full deserialization (see ResultCache::evict).
bool envelope_valid(std::string_view bytes, std::string& diagnostic) {
  try {
    (void)rsg::unwrap_snapshot(bytes);
    return true;
  } catch (const rsg::SnapshotError& e) {
    diagnostic = e.what();
    return false;
  }
}

std::uint64_t writer_id() {
#if PSA_CACHE_HAS_PID
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // Probe writability now: a cache that cannot store is a configuration
  // error, not something to discover one silent store-failure at a time.
  const std::string probe =
      (fs::path(dir_) / (".probe." + std::to_string(writer_id()))).string();
  {
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cache: cannot write to " + dir_);
    }
  }
  fs::remove(probe, ec);
}

std::string ResultCache::entry_path(const CacheKey& key) const {
  return (fs::path(dir_) / (key.hex() + std::string(kEntrySuffix))).string();
}

ResultCache::Lookup ResultCache::lookup(const CacheKey& key) {
  Lookup result;
  const std::string path = entry_path(key);
  std::string bytes;
  if (!read_file(path, bytes)) {
    result.status = Lookup::Status::kMiss;
    PSA_COUNT(support::Counter::kCacheMisses);
    return result;
  }
  std::string diagnostic;
  if (!envelope_valid(bytes, diagnostic)) {
    quarantine(path, diagnostic);
    result.status = Lookup::Status::kEvicted;
    result.diagnostic = diagnostic;
    PSA_COUNT(support::Counter::kCacheMisses);
    return result;
  }
  result.status = Lookup::Status::kHit;
  result.bytes = std::move(bytes);
  PSA_COUNT(support::Counter::kCacheHits);
  return result;
}

bool ResultCache::store(const CacheKey& key, std::string_view bytes,
                        StoreFault fault) {
  const std::string final_path = entry_path(key);

  if (fault == StoreFault::kTear) {
    // Injected torn write: half the bytes, straight to the final path, no
    // rename guard — the worst crash the real write path is designed to
    // make impossible. The next lookup must evict it.
    std::ofstream out(final_path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    PSA_COUNT(support::Counter::kCacheStores);
    return true;
  }

  const std::string tmp =
      final_path + ".tmp." + std::to_string(writer_id()) + "-" +
      std::to_string(tmp_seq_++);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }

  if (fault == StoreFault::kFlip) {
    // Injected single-bit rot in the middle of a completed entry; the
    // PSASNAP1 checksum must catch it on the next lookup.
    std::fstream flip(final_path,
                      std::ios::binary | std::ios::in | std::ios::out);
    if (flip) {
      const std::streamoff off =
          static_cast<std::streamoff>(bytes.size() / 2);
      flip.seekg(off);
      char c = 0;
      flip.get(c);
      flip.seekp(off);
      flip.put(static_cast<char>(c ^ 0x01));
    }
  }

  PSA_COUNT(support::Counter::kCacheStores);
  return true;
}

void ResultCache::evict(const CacheKey& key, std::string_view reason) {
  quarantine(entry_path(key), reason);
}

void ResultCache::quarantine(const std::string& path,
                             std::string_view reason) {
  std::error_code ec;
  if (!fs::exists(path, ec)) return;
  const fs::path qdir = fs::path(dir_) / "quarantine";
  fs::create_directories(qdir, ec);
  const std::string target =
      (qdir / (fs::path(path).filename().string() + "." +
               std::to_string(writer_id()) + "-" +
               std::to_string(tmp_seq_++)))
          .string();
  fs::rename(path, target, ec);
  if (ec) fs::remove(path, ec);  // quarantine failed: removal still heals
  (void)reason;  // surfaced through Lookup::diagnostic / caller logs
  PSA_COUNT(support::Counter::kCacheEvictions);
}

ResultCache::RecoveryReport ResultCache::recover() {
  RecoveryReport report;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(std::string(kEntrySuffix) + ".tmp.") != std::string::npos) {
      // A writer died mid-store; the rename never happened, so the bytes
      // were never trusted. Sweep the straggler.
      fs::remove(entry.path(), ec);
      ++report.tmp_removed;
      PSA_COUNT(support::Counter::kCacheEvictions);
      continue;
    }
    if (!name.ends_with(kEntrySuffix)) continue;
    std::string bytes;
    std::string diagnostic = "unreadable entry";
    if (read_file(entry.path().string(), bytes) &&
        envelope_valid(bytes, diagnostic)) {
      ++report.entries_kept;
    } else {
      quarantine(entry.path().string(), diagnostic);
      ++report.quarantined;
    }
  }
  return report;
}

}  // namespace psa::cache
