#include "cache/cache.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "rsg/serialize.hpp"
#include "support/io.hpp"
#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define PSA_CACHE_HAS_PID 1
#define PSA_CACHE_HAS_FLOCK 1
#else
#define PSA_CACHE_HAS_PID 0
#define PSA_CACHE_HAS_FLOCK 0
#endif

namespace psa::cache {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kEntrySuffix = ".entry";

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Envelope-level validation: magic, version, size and checksum — cheap and
/// catches every torn write and bit flip. Payload-level skew is left to the
/// caller's full deserialization (see ResultCache::evict).
bool envelope_valid(std::string_view bytes, std::string& diagnostic) {
  try {
    (void)rsg::unwrap_snapshot(bytes);
    return true;
  } catch (const rsg::SnapshotError& e) {
    diagnostic = e.what();
    return false;
  }
}

std::uint64_t writer_id() {
#if PSA_CACHE_HAS_PID
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

/// Advisory sweep lock: one sweeper per cache directory at a time. A busy
/// lock means another daemon/client is already bounding the cache — skipping
/// is the correct (and the only race-free) answer. The lock dies with the
/// holder's fd, so a SIGKILLed sweeper never wedges the directory.
class SweepLock {
 public:
  explicit SweepLock(const std::string& dir) {
#if PSA_CACHE_HAS_FLOCK
    const std::string path = (fs::path(dir) / "sweep.lock").string();
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
#else
    (void)dir;
#endif
  }
  ~SweepLock() {
#if PSA_CACHE_HAS_FLOCK
    if (fd_ >= 0) ::close(fd_);  // closing releases the flock
#endif
  }
  SweepLock(const SweepLock&) = delete;
  SweepLock& operator=(const SweepLock&) = delete;

  [[nodiscard]] bool held() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// One journaled sweep: decisions are appended (and made durable) BEFORE the
/// entry is touched, so a sweeper killed mid-eviction leaves a journal that
/// explains exactly what it was doing. record() reports whether the decision
/// landed durably — an eviction whose record did not land must be skipped
/// (journal-before-unlink), while bookkeeping records stay best-effort.
class SweepJournal {
 public:
  explicit SweepJournal(const std::string& dir)
      : path_((fs::path(dir) / "sweep.journal").string()) {
    std::error_code ec;
    if (!fs::exists(path_, ec) || fs::file_size(path_, ec) == 0) {
      (void)record("psa-sweep-journal v1");
    }
  }

  [[nodiscard]] bool record(const std::string& line) {
    const auto result = support::io::checked_append(path_, line + '\n');
    if (!result) PSA_COUNT(support::Counter::kIoDegradations);
    return result.ok;
  }

 private:
  std::string path_;
};

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  // Probe writability now: a cache that cannot store is a configuration
  // error, not something to discover one silent store-failure at a time.
  const std::string probe =
      (fs::path(dir_) / (".probe." + std::to_string(writer_id()))).string();
  {
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cache: cannot write to " + dir_);
    }
  }
  fs::remove(probe, ec);
}

std::string ResultCache::entry_path(const CacheKey& key) const {
  return (fs::path(dir_) / (key.hex() + std::string(kEntrySuffix))).string();
}

ResultCache::Lookup ResultCache::lookup(const CacheKey& key, LookupFault fault,
                                        EntryTier tier) {
  const support::Counter miss_counter = tier == EntryTier::kUnit
                                            ? support::Counter::kCacheMisses
                                            : support::Counter::kFuncCacheMisses;
  Lookup result;
  const std::string path = entry_path(key);
  if (fault == LookupFault::kEvictRace) {
    // Injected sweep race: the eviction's unlink lands in the window between
    // the caller's decision to read and the read itself. Because policy
    // evictions are atomic unlinks, the loser of the race sees a whole-file
    // miss — never torn bytes — which is exactly what this proves.
    std::error_code ec;
    fs::remove(path, ec);
  }
  std::string bytes;
  if (!read_file(path, bytes)) {
    result.status = Lookup::Status::kMiss;
    PSA_COUNT(miss_counter);
    return result;
  }
  std::string diagnostic;
  if (!envelope_valid(bytes, diagnostic)) {
    quarantine(path, diagnostic);
    result.status = Lookup::Status::kEvicted;
    result.diagnostic = diagnostic;
    PSA_COUNT(miss_counter);
    return result;
  }
  // Touch: sweep() evicts least-recently-USED, so a hit refreshes the
  // entry's mtime. Best effort — a failed touch only ages the entry.
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  result.status = Lookup::Status::kHit;
  result.bytes = std::move(bytes);
  PSA_COUNT(tier == EntryTier::kUnit ? support::Counter::kCacheHits
                                     : support::Counter::kFuncCacheHits);
  return result;
}

bool ResultCache::store(const CacheKey& key, std::string_view bytes,
                        StoreFault fault, EntryTier tier) {
  const support::Counter store_counter = tier == EntryTier::kUnit
                                             ? support::Counter::kCacheStores
                                             : support::Counter::kFuncCacheStores;
  const std::string final_path = entry_path(key);

  if (fault == StoreFault::kTear) {
    // Injected torn write: half the bytes, straight to the final path, no
    // rename guard — the worst crash the real write path is designed to
    // make impossible. The next lookup must evict it.
    std::ofstream out(final_path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    PSA_COUNT(store_counter);
    return true;
  }

  const std::string tmp =
      final_path + ".tmp." + std::to_string(writer_id()) + "-" +
      std::to_string(tmp_seq_++);
  if (const auto result = support::io::atomic_write(tmp, final_path, bytes);
      !result) {
    // Sound degradation: the entry simply does not exist, so the next lookup
    // is a clean miss and recomputes. A torn tmp (short write) is swept by
    // recover(); the final path is never touched on failure.
    PSA_COUNT(support::Counter::kIoDegradations);
    return false;
  }

  if (fault == StoreFault::kFlip) {
    // Injected single-bit rot in the middle of a completed entry; the
    // PSASNAP1 checksum must catch it on the next lookup.
    std::fstream flip(final_path,
                      std::ios::binary | std::ios::in | std::ios::out);
    if (flip) {
      const std::streamoff off =
          static_cast<std::streamoff>(bytes.size() / 2);
      flip.seekg(off);
      char c = 0;
      flip.get(c);
      flip.seekp(off);
      flip.put(static_cast<char>(c ^ 0x01));
    }
  }

  PSA_COUNT(store_counter);
  return true;
}

void ResultCache::evict(const CacheKey& key, std::string_view reason) {
  quarantine(entry_path(key), reason);
}

void ResultCache::quarantine(const std::string& path,
                             std::string_view reason) {
  std::error_code ec;
  if (!fs::exists(path, ec)) return;
  const fs::path qdir = fs::path(dir_) / "quarantine";
  fs::create_directories(qdir, ec);
  const std::string target =
      (qdir / (fs::path(path).filename().string() + "." +
               std::to_string(writer_id()) + "-" +
               std::to_string(tmp_seq_++)))
          .string();
  if (!support::io::checked_rename(path, target)) {
    // Quarantine failed: removal still heals the cache, at the cost of the
    // post-mortem bytes — a degradation, not a corrupt entry left serveable.
    PSA_COUNT(support::Counter::kIoDegradations);
    fs::remove(path, ec);
  }
  (void)reason;  // surfaced through Lookup::diagnostic / caller logs
  PSA_COUNT(support::Counter::kCacheEvictions);
}

ResultCache::RecoveryReport ResultCache::recover() {
  RecoveryReport report;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(std::string(kEntrySuffix) + ".tmp.") != std::string::npos) {
      // A writer died mid-store; the rename never happened, so the bytes
      // were never trusted. Sweep the straggler.
      fs::remove(entry.path(), ec);
      ++report.tmp_removed;
      PSA_COUNT(support::Counter::kCacheEvictions);
      continue;
    }
    if (!name.ends_with(kEntrySuffix)) continue;
    std::string bytes;
    std::string diagnostic = "unreadable entry";
    if (read_file(entry.path().string(), bytes) &&
        envelope_valid(bytes, diagnostic)) {
      ++report.entries_kept;
    } else {
      quarantine(entry.path().string(), diagnostic);
      ++report.quarantined;
    }
  }
  return report;
}

ResultCache::SweepReport ResultCache::sweep(const SweepLimits& limits) {
  SweepReport report;
  if (!limits.bounded()) return report;
  const SweepLock lock(dir_);
  if (!lock.held()) return report;  // a concurrent sweeper is on it
  report.ran = true;
  PSA_COUNT(support::Counter::kCacheSweepRuns);
  SweepJournal journal(dir_);
  (void)journal.record("sweep start writer=" + std::to_string(writer_id()) +
                       " max_bytes=" + std::to_string(limits.max_bytes) +
                       " max_age_ms=" + std::to_string(limits.max_age_ms));

  struct EntryInfo {
    std::string path;
    std::string name;
    std::uint64_t bytes = 0;
    fs::file_time_type mtime;
  };
  std::vector<EntryInfo> entries;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    EntryInfo info;
    info.name = entry.path().filename().string();
    if (!info.name.ends_with(kEntrySuffix)) continue;
    info.path = entry.path().string();
    info.bytes = static_cast<std::uint64_t>(entry.file_size(ec));
    if (ec) continue;  // vanished under us (concurrent writer): skip
    info.mtime = entry.last_write_time(ec);
    if (ec) continue;
    entries.push_back(std::move(info));
  }
  report.scanned = entries.size();
  for (const EntryInfo& e : entries) report.bytes_before += e.bytes;
  report.bytes_after = report.bytes_before;

  // The journal precedes the unlink (crash-safety: a dead sweeper's journal
  // explains the directory) and the unlink is atomic (concurrency: a reader
  // mid-lookup keeps its open fd or takes a clean miss — never torn bytes).
  const auto evict_entry = [&](const EntryInfo& e, std::string_view why) {
    std::string bytes;
    std::string diagnostic = "unreadable entry";
    if (!read_file(e.path, bytes) || !envelope_valid(bytes, diagnostic)) {
      // Suspicious under the sweep's feet: quarantine, never delete — the
      // post-mortem trail matters more than the disk it occupies. The move
      // preserves the bytes, so a lost journal record costs nothing.
      (void)journal.record("quarantine " + e.name + " " + diagnostic);
      quarantine(e.path, diagnostic);
      ++report.quarantined;
      report.bytes_after -= std::min(report.bytes_after, e.bytes);
      return;
    }
    if (!journal.record("evict " + e.name + " " + std::to_string(e.bytes) +
                        " reason=" + std::string(why))) {
      // Journal-before-unlink: the decision did not land durably, so the
      // unlink must not happen — a valid entry outliving its byte budget is
      // a degradation, an unexplained disappearance is a contract breach.
      return;
    }
    std::error_code remove_ec;
    if (fs::remove(e.path, remove_ec)) {
      ++report.evicted;
      report.bytes_after -= std::min(report.bytes_after, e.bytes);
      PSA_COUNT(support::Counter::kCacheSweepEvictions);
      PSA_COUNT_N(support::Counter::kCacheSweepBytes, e.bytes);
    }
  };

  // Pass 1: age expiry.
  std::vector<EntryInfo> kept;
  if (limits.max_age_ms > 0) {
    const auto now = fs::file_time_type::clock::now();
    const auto horizon = std::chrono::milliseconds(limits.max_age_ms);
    for (const EntryInfo& e : entries) {
      if (now - e.mtime > horizon) {
        evict_entry(e, "age");
      } else {
        kept.push_back(e);
      }
    }
  } else {
    kept = std::move(entries);
  }

  // Pass 2: oldest-first until the survivors fit the byte cap.
  if (limits.max_bytes > 0 && report.bytes_after > limits.max_bytes) {
    std::sort(kept.begin(), kept.end(),
              [](const EntryInfo& a, const EntryInfo& b) {
                return a.mtime < b.mtime;
              });
    for (const EntryInfo& e : kept) {
      if (report.bytes_after <= limits.max_bytes) break;
      evict_entry(e, "size");
    }
  }

  (void)journal.record(
      "sweep end scanned=" + std::to_string(report.scanned) +
                 " evicted=" + std::to_string(report.evicted) +
                 " quarantined=" + std::to_string(report.quarantined) +
                 " bytes=" + std::to_string(report.bytes_after));
  return report;
}

}  // namespace psa::cache
