#include "cache/key.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "rsg/serialize.hpp"
#include "support/metrics.hpp"

namespace psa::cache {

namespace {

/// The preimage is accumulated through the snapshot ByteWriter: fixed-width
/// little-endian fields and length-prefixed strings, so no two distinct
/// field sequences can collide by concatenation.
class KeyBuilder {
 public:
  void u8(std::uint8_t v) { out_.u8(v); }
  void u32(std::uint32_t v) { out_.u32(v); }
  void u64(std::uint64_t v) { out_.u64(v); }
  void str(std::string_view s) { out_.str(s); }

  [[nodiscard]] CacheKey finish() const {
    const std::string& bytes = out_.bytes();
    CacheKey key;
    key.hi = fnv1a(bytes, 0xcbf29ce484222325ull);
    // Independent second lane: a different basis plus a final avalanche so
    // the two halves never cancel the same way.
    key.lo = support::mix64(fnv1a(bytes, 0x9ae16a3b2f90404full));
    return key;
  }

 private:
  static std::uint64_t fnv1a(std::string_view s, std::uint64_t h) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ull;
    }
    return h;
  }

  rsg::ByteWriter out_;
};

void append_struct_name(KeyBuilder& key, const lang::TypeTable& types,
                        lang::StructId id, const support::Interner& interner) {
  if (raw(id) < types.struct_count()) {
    key.str(interner.spelling(types.struct_decl(id).name));
  } else {
    key.str("<invalid-struct>");
  }
}

// The shared preimage clauses below are appended in the same order by every
// key tier, so the unit key and the function-tier keys can never drift on
// what "same options" or "same CFG" means.

/// Wire-format vocabulary: a skewed build must compute different keys.
void append_versions(KeyBuilder& key) {
  key.u32(rsg::kSnapshotVersion);
  key.u32(static_cast<std::uint32_t>(support::kCounterCount));
}

/// Engine options that steer the fixpoint (threads excluded by contract),
/// the checker and frontend-mode switches, and the interprocedural knobs.
void append_options(KeyBuilder& key, const analysis::Options& options,
                    bool check, bool salvage) {
  key.u8(static_cast<std::uint8_t>(options.level));
  key.u8(options.enable_join ? 1 : 0);
  key.u8(options.share_pruning ? 1 : 0);
  key.u64(options.widen_threshold);
  key.u64(options.max_rsgs_per_set);
  key.u64(options.max_node_visits);
  key.u64(options.memory_budget_bytes);
  key.u64(options.deadline_ms);
  key.u8(static_cast<std::uint8_t>(options.budget_policy));
  key.u8(check ? 1 : 0);
  key.u8(salvage ? 1 : 0);
  // Interprocedural knobs: summaries change which transfer runs at every
  // call site, so flipping them must never resurface a stale entry.
  key.u8(options.enable_summaries ? 1 : 0);
  key.u64(options.max_summary_iters);
  key.u64(options.summary_visit_budget);
}

/// The struct table: names, field order, field types. Declaration order is
/// deterministic for a given source.
void append_struct_table(KeyBuilder& key, const lang::TypeTable& types,
                         const support::Interner& interner) {
  key.u32(static_cast<std::uint32_t>(types.struct_count()));
  for (std::size_t s = 0; s < types.struct_count(); ++s) {
    const lang::StructDecl& decl =
        types.struct_decl(static_cast<lang::StructId>(s));
    key.str(interner.spelling(decl.name));
    key.u32(static_cast<std::uint32_t>(decl.fields.size()));
    for (const lang::Field& f : decl.fields) {
      key.str(interner.spelling(f.name));
      key.u8(static_cast<std::uint8_t>(f.type.kind));
      key.u8(f.type.pointee_is_struct ? 1 : 0);
      key.u8(static_cast<std::uint8_t>(f.type.scalar));
      if (f.type.struct_id) {
        append_struct_name(key, types, *f.type.struct_id, interner);
      } else {
        key.str("");
      }
    }
  }
}

/// One lowered CFG: pvar typing (spelling order, so the key is a function
/// of content rather than interner id assignment), then every statement
/// field (spellings, not symbol ids), successor edges and loop nesting.
/// Source locations are included because the cached findings quote them.
void append_cfg(KeyBuilder& key, const cfg::Cfg& cfg,
                const lang::TypeTable& types,
                const support::Interner& interner) {
  std::vector<support::Symbol> pvars = cfg.pointer_vars();
  std::sort(pvars.begin(), pvars.end(),
            [&](support::Symbol a, support::Symbol b) {
              return interner.spelling(a) < interner.spelling(b);
            });
  key.u32(static_cast<std::uint32_t>(pvars.size()));
  for (const support::Symbol pvar : pvars) {
    key.str(interner.spelling(pvar));
    const auto it = cfg.pvar_struct().find(pvar);
    if (it != cfg.pvar_struct().end()) {
      append_struct_name(key, types, it->second, interner);
    } else {
      key.str("");
    }
  }

  key.u32(static_cast<std::uint32_t>(cfg.size()));
  key.u32(cfg.entry());
  key.u32(cfg.exit());
  for (const cfg::CfgNode& node : cfg.nodes()) {
    const cfg::SimpleStmt& stmt = node.stmt;
    key.u8(static_cast<std::uint8_t>(stmt.op));
    key.str(stmt.x.valid() ? interner.spelling(stmt.x) : "");
    key.str(stmt.y.valid() ? interner.spelling(stmt.y) : "");
    key.str(stmt.sel.valid() ? interner.spelling(stmt.sel) : "");
    if (stmt.op == cfg::SimpleOp::kPtrMalloc ||
        stmt.op == cfg::SimpleOp::kHavoc ||
        stmt.op == cfg::SimpleOp::kCall) {
      append_struct_name(key, types, stmt.type, interner);
    }
    if (stmt.op == cfg::SimpleOp::kCall) {
      key.str(stmt.callee.valid() ? interner.spelling(stmt.callee) : "");
      key.u32(static_cast<std::uint32_t>(stmt.args.size()));
      for (const support::Symbol arg : stmt.args) {
        key.str(arg.valid() ? interner.spelling(arg) : "");
      }
    }
    key.u32(stmt.loop_id);
    key.u32(stmt.loc.line);
    key.u32(stmt.loc.column);
    key.u32(static_cast<std::uint32_t>(node.succs.size()));
    for (const cfg::NodeId succ : node.succs) key.u32(succ);
    key.u32(static_cast<std::uint32_t>(node.loops.size()));
    for (const std::uint32_t loop : node.loops) key.u32(loop);
  }
}

/// Salvage degradation summary: the payload replays these fields, so two
/// units that lower to the same CFG but degraded differently must not share
/// an entry.
void append_salvage(KeyBuilder& key, const analysis::SalvageInfo& salvage) {
  key.u64(salvage.skipped_decls);
  key.u64(salvage.havoc_sites);
  key.u64(salvage.unsupported_count);
  key.u64(salvage.functions_analyzable);
  key.u64(salvage.functions_total);
  key.str(salvage.diagnostics);
}

/// Direct-callee summary identities (docs/CACHING.md): the function-tier
/// replacement for the unit key's whole-sibling-CFG clause. The caller sorts
/// `deps` by name, so the clause is a function of the call set, not of call
/// site order.
void append_callee_deps(KeyBuilder& key, const std::vector<CalleeDep>& deps) {
  key.u32(static_cast<std::uint32_t>(deps.size()));
  for (const CalleeDep& dep : deps) {
    key.str(dep.name);
    key.u8(dep.has_summary ? 1 : 0);
    key.u64(dep.summary_hash);
  }
}

}  // namespace

std::string CacheKey::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

CacheKey cache_key(const analysis::ProgramAnalysis& program,
                   const analysis::Options& options, bool check,
                   bool salvage) {
  const support::Interner& interner = program.interner();
  const lang::TypeTable& types = program.unit.types;
  KeyBuilder key;

  key.str("psa-cache-key v2");
  append_versions(key);
  append_options(key, options, check, salvage);
  append_struct_table(key, types, interner);
  append_cfg(key, program.cfg, types, interner);

  // The rest of the unit: function summaries feed the target function's
  // result, so editing *any* sibling body (or adding/removing one) must
  // invalidate the entry even when the target's own CFG is unchanged. This
  // coarseness is what makes the unit key a *fast path*: the function tier
  // below it re-keys on callee summary hashes instead.
  key.u32(static_cast<std::uint32_t>(program.unit_cfgs.size()));
  for (const analysis::FunctionCfg& fc : program.unit_cfgs) {
    key.str(interner.spelling(fc.name));
    append_cfg(key, fc.cfg, types, interner);
  }

  append_salvage(key, program.salvage);
  return key.finish();
}

CacheKey function_summary_key(const analysis::ProgramAnalysis& program,
                              const analysis::FunctionCfg& fn,
                              const analysis::Options& options, bool salvage,
                              const std::vector<CalleeDep>& deps) {
  const support::Interner& interner = program.interner();
  const lang::TypeTable& types = program.unit.types;
  KeyBuilder key;

  key.str("psa-func-summary-key v1");
  append_versions(key);
  // `check` pinned false: summaries carry no findings, so the checker switch
  // must not split the summary cache.
  append_options(key, options, /*check=*/false, salvage);
  append_struct_table(key, types, interner);
  key.str(interner.spelling(fn.name));
  append_cfg(key, fn.cfg, types, interner);
  append_callee_deps(key, deps);
  return key.finish();
}

CacheKey function_result_key(const analysis::ProgramAnalysis& program,
                             const analysis::Options& options, bool check,
                             bool salvage,
                             const std::vector<CalleeDep>& deps) {
  const support::Interner& interner = program.interner();
  const lang::TypeTable& types = program.unit.types;
  KeyBuilder key;

  key.str("psa-func-result-key v1");
  append_versions(key);
  append_options(key, options, check, salvage);
  append_struct_table(key, types, interner);
  append_cfg(key, program.cfg, types, interner);
  append_callee_deps(key, deps);
  // Salvage fields stay in the result key (the payload replays them) — they
  // cover the *unit's* degradation, including helper lowering, so a sibling
  // edit that changes salvage accounting correctly invalidates the result.
  append_salvage(key, program.salvage);
  return key.finish();
}

}  // namespace psa::cache
