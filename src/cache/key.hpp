// Content-addressed cache keys for per-unit analysis results.
//
// A key is a 128-bit hash of everything the serialized UnitPayload depends
// on: the lowered CFG of the analyzed function (statements with their
// operand spellings, malloc/havoc struct types, successor edges, loop
// nesting and source locations — findings quote line numbers, so a line
// shift is a real output change), the pvar typing environment, the full
// struct table (the governor's ⊤ saturation reads it), the salvage
// degradation summary (the payload replays those fields verbatim), the
// analysis options that steer the fixpoint, and the checker on/off switch.
//
// Deliberately excluded: the unit *name* (two files with identical content
// share one entry — that is the "content-addressed" in the name),
// Options::threads (the engine contract guarantees thread-count-independent
// results), and wall-clock state of any kind.
//
// Version skew is part of the key: the PSASNAP1 format version and the
// metrics counter vocabulary are mixed in, so a binary with a different wire
// format computes different keys and never trusts a stale entry — and even a
// same-key entry from a skewed build fails its deep validation and is
// evicted (see cache.hpp).
//
// Beneath the unit key sits the function-granular tier (docs/CACHING.md):
// per-function keys that replace the unit key's "every sibling CFG" clause
// with the function's *direct callees' summary content hashes*. An edit then
// invalidates exactly the functions whose observable inputs changed — a
// callee edit that leaves the callee's summary bytes identical stops the
// cascade at the callee.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"

namespace psa::cache {

struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;

  /// 32 lowercase hex chars; the cache entry's file stem.
  [[nodiscard]] std::string hex() const;
};

/// Key of one prepared unit under one engine configuration. `check` covers
/// the checker findings embedded in the payload; `salvage` the frontend mode
/// that produced the CFG.
[[nodiscard]] CacheKey cache_key(const analysis::ProgramAnalysis& program,
                                 const analysis::Options& options, bool check,
                                 bool salvage);

/// One direct callee's contribution to a function-tier key: its name and the
/// content hash of its FunctionSummary (ipa::summary_hash). `has_summary` is
/// false for callees with no summary at all (externs, helpers that failed to
/// lower) — their call sites take the havoc fallback, and an extern later
/// gaining a body must change the key.
struct CalleeDep {
  std::string name;
  bool has_summary = false;
  std::uint64_t summary_hash = 0;

  friend bool operator==(const CalleeDep&, const CalleeDep&) = default;
};

/// Key of one function's *summary* cache entry: the function's own lowered
/// CFG, the struct table, the engine options and salvage mode, the wire
/// versions, and its direct-callee summary hashes (`deps`, sorted by name by
/// the caller). The checker switch is deliberately absent — summaries carry
/// no findings.
[[nodiscard]] CacheKey function_summary_key(
    const analysis::ProgramAnalysis& program, const analysis::FunctionCfg& fn,
    const analysis::Options& options, bool salvage,
    const std::vector<CalleeDep>& deps);

/// Key of the target function's *result* entry (the full UnitPayload bytes):
/// like the unit key, but the sibling-CFG clause is replaced by the target's
/// direct-callee summary hashes. Sibling edits that do not change any callee
/// summary leave this key — and the cached report — valid.
[[nodiscard]] CacheKey function_result_key(
    const analysis::ProgramAnalysis& program, const analysis::Options& options,
    bool check, bool salvage, const std::vector<CalleeDep>& deps);

}  // namespace psa::cache
