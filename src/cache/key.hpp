// Content-addressed cache keys for per-unit analysis results.
//
// A key is a 128-bit hash of everything the serialized UnitPayload depends
// on: the lowered CFG of the analyzed function (statements with their
// operand spellings, malloc/havoc struct types, successor edges, loop
// nesting and source locations — findings quote line numbers, so a line
// shift is a real output change), the pvar typing environment, the full
// struct table (the governor's ⊤ saturation reads it), the salvage
// degradation summary (the payload replays those fields verbatim), the
// analysis options that steer the fixpoint, and the checker on/off switch.
//
// Deliberately excluded: the unit *name* (two files with identical content
// share one entry — that is the "content-addressed" in the name),
// Options::threads (the engine contract guarantees thread-count-independent
// results), and wall-clock state of any kind.
//
// Version skew is part of the key: the PSASNAP1 format version and the
// metrics counter vocabulary are mixed in, so a binary with a different wire
// format computes different keys and never trusts a stale entry — and even a
// same-key entry from a skewed build fails its deep validation and is
// evicted (see cache.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "analysis/analyzer.hpp"

namespace psa::cache {

struct CacheKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;

  /// 32 lowercase hex chars; the cache entry's file stem.
  [[nodiscard]] std::string hex() const;
};

/// Key of one prepared unit under one engine configuration. `check` covers
/// the checker findings embedded in the payload; `salvage` the frontend mode
/// that produced the CFG.
[[nodiscard]] CacheKey cache_key(const analysis::ProgramAnalysis& program,
                                 const analysis::Options& options, bool check,
                                 bool salvage);

}  // namespace psa::cache
