#include "driver/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <thread>

namespace psa::driver {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kSegv: return "segv";
    case FaultKind::kHang: return "hang";
    case FaultKind::kOom: return "oom";
    case FaultKind::kThrow: return "throw";
    case FaultKind::kCacheTear: return "cachetear";
    case FaultKind::kCacheFlip: return "cacheflip";
    case FaultKind::kSockDrop: return "sockdrop";
    case FaultKind::kStreamTear: return "streamtear";
    case FaultKind::kEvictRace: return "evictrace";
  }
  return "?";
}

namespace {

bool parse_kind(std::string_view s, FaultKind& out) {
  for (const auto kind : {FaultKind::kCrash, FaultKind::kSegv, FaultKind::kHang,
                          FaultKind::kOom, FaultKind::kThrow,
                          FaultKind::kCacheTear, FaultKind::kCacheFlip,
                          FaultKind::kSockDrop, FaultKind::kStreamTear,
                          FaultKind::kEvictRace}) {
    if (s == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    const std::string_view entry = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string_view::npos || colon == 0) continue;
    FaultKind kind = FaultKind::kNone;
    if (!parse_kind(entry.substr(colon + 1), kind)) continue;
    plan.entries_.emplace_back(std::string(entry.substr(0, colon)), kind);
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("PSA_FAULT_AT");
  return spec == nullptr ? FaultPlan{} : parse(spec);
}

FaultKind FaultPlan::for_unit(std::string_view unit_name) const {
  for (const auto& [unit, kind] : entries_) {
    if (unit == unit_name) return kind;
  }
  return FaultKind::kNone;
}

void inject_fault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return;
    case FaultKind::kCrash:
      std::abort();
    case FaultKind::kSegv: {
      volatile int* p = nullptr;
      *p = 42;  // NOLINT: the point is the invalid write
      return;   // unreachable
    }
    case FaultKind::kHang:
      for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
    case FaultKind::kOom:
      throw std::bad_alloc();
    case FaultKind::kThrow:
      throw std::runtime_error("injected fault: throw");
    case FaultKind::kCacheTear:
    case FaultKind::kCacheFlip:
    case FaultKind::kSockDrop:
    case FaultKind::kStreamTear:
    case FaultKind::kEvictRace:
      return;  // honored at their dedicated fault points, not here
  }
}

}  // namespace psa::driver
