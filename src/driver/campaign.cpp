#include "driver/campaign.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "driver/supervisor.hpp"
#include "support/io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PSA_CAMPAIGN_POSIX 1
#include <fcntl.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace psa::driver {

namespace fs = std::filesystem;

#if defined(PSA_CAMPAIGN_POSIX)

namespace {

struct ChildResult {
  bool spawned = false;   // fork/exec machinery itself worked
  bool exited = false;    // normal exit (vs. signal death)
  int exit_code = -1;
  int signal = 0;
};

struct EnvVar {
  std::string name;
  std::string value;
};

struct TracedOp {
  std::uint64_t number = 0;
  std::string what;  // "atomic-write" / "append" / "rename"
  std::string path;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Re-exec `exe` with `args`, stdout/stderr captured to files. The io fault
/// env vars are always cleared first so the campaign's own environment can
/// never leak a fault plan into a child; `env` then sets this scenario's.
ChildResult run_child(const std::string& exe,
                      const std::vector<std::string>& args,
                      const std::vector<EnvVar>& env,
                      const std::string& stdout_path,
                      const std::string& stderr_path) {
  ChildResult result;
  const pid_t pid = ::fork();
  if (pid < 0) return result;
  if (pid == 0) {
    ::unsetenv("PSA_IO_FAULT");
    ::unsetenv("PSA_IO_TRACE");
    for (const EnvVar& var : env) {
      ::setenv(var.name.c_str(), var.value.c_str(), 1);
    }
    const int out_fd =
        ::open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    const int err_fd =
        ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (out_fd < 0 || err_fd < 0) ::_exit(127);
    ::dup2(out_fd, STDOUT_FILENO);
    ::dup2(err_fd, STDERR_FILENO);
    ::close(out_fd);
    ::close(err_fd);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(exe.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(exe.c_str(), argv.data());
    ::_exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return result;
  result.spawned = true;
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.signal = WTERMSIG(status);
  }
  return result;
}

/// Parse a PSA_IO_TRACE file: "op <n> <what> <path> <bytes> <status>...".
std::vector<TracedOp> parse_trace(const std::string& path) {
  std::vector<TracedOp> ops;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string tag;
    TracedOp op;
    std::uint64_t bytes = 0;
    if (!(fields >> tag >> op.number >> op.what >> op.path >> bytes)) continue;
    if (tag != "op") continue;
    ops.push_back(std::move(op));
  }
  std::sort(ops.begin(), ops.end(),
            [](const TracedOp& a, const TracedOp& b) {
              return a.number < b.number;
            });
  return ops;
}

/// Strip the documented resume markers so a resumed report can be compared
/// byte-for-byte against the uninterrupted golden one: the summary line's
/// ", <n> from checkpoint" and each unit line's ", from checkpoint".
std::string strip_resume_markers(const std::string& report) {
  std::string out;
  std::istringstream in(report);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    const std::string::size_type at = line.find(" from checkpoint");
    if (at != std::string::npos) {
      // Walk back over ", " / ", <digits>" to erase the whole marker: the
      // summary line reads ", <n> from checkpoint", a unit line reads
      // ", from checkpoint".
      std::string::size_type start = at;
      while (start > 0 && std::isdigit(static_cast<unsigned char>(
                              line[start - 1])) != 0) {
        --start;
      }
      if (start >= 2 && line.compare(start - 2, 2, ", ") == 0) {
        start -= 2;
      } else if (start > 0 && line[start - 1] == ',') {
        start -= 1;
      }
      line.erase(start, at + std::string(" from checkpoint").size() - start);
    }
    if (!first) out += '\n';
    out += line;
    first = false;
  }
  if (!report.empty() && report.back() == '\n') out += '\n';
  return out;
}

/// A report that differs from golden must say so: any of the explicit
/// degradation markers the pipeline emits when it absorbed a failure — the
/// trailing "io degradations" note, a retried unit's attempt count, a
/// quarantine, or a nonzero failed count in the summary line. (Golden runs
/// print " 0 failed", so its absence means a unit failure was reported.)
bool carries_degradation_marker(const std::string& report) {
  return report.find("io degradations:") != std::string::npos ||
         report.find(", attempts ") != std::string::npos ||
         report.find("quarantined") != std::string::npos ||
         report.find(" 0 failed") == std::string::npos;
}

void clear_dir(const fs::path& dir) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
}

}  // namespace

int run_fault_campaign(const CampaignOptions& options) {
  // Validate the kind vocabulary up front — a typo'd kind would silently
  // sweep nothing.
  for (const std::string& kind : options.kinds) {
    if (kind != "enospc" && kind != "eio" && kind != "shortwrite" &&
        kind != "tornrename" && kind != "crash") {
      std::fprintf(stderr, "campaign: unknown fault kind '%s'\n",
                   kind.c_str());
      return 2;
    }
  }

  const fs::path root(options.workdir);
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    std::fprintf(stderr, "campaign: cannot create workdir %s: %s\n",
                 options.workdir.c_str(), ec.message().c_str());
    return 2;
  }

  // Materialize the corpus units as source files so every child sees the
  // identical inputs (unit names in the report are these paths).
  const fs::path unit_dir = root / "units";
  clear_dir(unit_dir);
  std::vector<std::string> unit_files;
  {
    std::vector<corpus::UnitSource> sources = corpus::unit_sources();
    const std::size_t count =
        options.full_corpus ? sources.size()
                            : std::min<std::size_t>(2, sources.size());
    for (std::size_t i = 0; i < count; ++i) {
      const fs::path file =
          unit_dir / (std::string(sources[i].name) + ".c");
      std::ofstream out(file);
      out << sources[i].source;
      if (!out) {
        std::fprintf(stderr, "campaign: cannot write %s\n",
                     file.string().c_str());
        return 2;
      }
      unit_files.push_back(file.string());
    }
  }

  // Shared child argv: single-job isolated batch so the durable-op stream is
  // deterministic and the fault selector lands on the same op every run.
  const fs::path scn = root / "scenario";
  const std::string ckpt_dir = (scn / "ckpt").string();
  const std::string cache_dir = (scn / "cache").string();
  std::vector<std::string> base_args = unit_files;
  base_args.push_back("--function=main");
  base_args.push_back("--check");
  base_args.push_back("--isolate");
  base_args.push_back("--jobs=1");
  base_args.push_back("--checkpoint=" + ckpt_dir);
  base_args.push_back("--cache-dir=" + cache_dir);

  // Golden run: trace the durable-op stream of a fault-free execution.
  const fs::path golden_dir = root / "golden";
  clear_dir(golden_dir);
  clear_dir(scn);
  const std::string trace_path = (golden_dir / "trace.log").string();
  const std::string golden_out = (golden_dir / "report.out").string();
  const ChildResult golden =
      run_child(options.exe, base_args, {{"PSA_IO_TRACE", trace_path}},
                golden_out, (golden_dir / "report.err").string());
  if (!golden.spawned || !golden.exited ||
      (golden.exit_code != kExitOk && golden.exit_code != kExitFindings)) {
    std::fprintf(stderr,
                 "campaign: golden run broken (exited=%d code=%d signal=%d) "
                 "— nothing to sweep\n",
                 golden.exited ? 1 : 0, golden.exit_code, golden.signal);
    return 2;
  }
  const std::string golden_report = read_file(golden_out);

  std::vector<TracedOp> ops = parse_trace(trace_path);
  if (ops.empty()) {
    std::fprintf(stderr, "campaign: golden trace at %s recorded no ops\n",
                 trace_path.c_str());
    return 2;
  }
  if (options.max_ops > 0 && ops.size() > options.max_ops) {
    std::fprintf(stderr,
                 "campaign: capping sweep to the first %llu of %zu traced "
                 "ops (--campaign-max-ops)\n",
                 static_cast<unsigned long long>(options.max_ops), ops.size());
    ops.resize(static_cast<std::size_t>(options.max_ops));
  }
  std::fprintf(stderr,
               "campaign: golden exit %d, %zu traced ops x %zu kinds = %zu "
               "scenarios\n",
               golden.exit_code, ops.size(), options.kinds.size(),
               ops.size() * options.kinds.size());

  const fs::path out_dir = root / "out";
  clear_dir(out_dir);
  std::vector<std::string> violations;
  auto violation = [&](const TracedOp& op, const std::string& kind,
                       const std::string& what) {
    std::ostringstream msg;
    msg << "op " << op.number << " (" << op.what << ' ' << op.path
        << ") kind=" << kind << ": " << what;
    violations.push_back(msg.str());
    std::fprintf(stderr, "campaign: VIOLATION %s\n",
                 violations.back().c_str());
  };

  std::size_t scenario_index = 0;
  for (const TracedOp& op : ops) {
    for (const std::string& kind : options.kinds) {
      ++scenario_index;
      const std::string tag =
          std::to_string(op.number) + "-" + kind;
      const std::string fault_spec = std::to_string(op.number) + ":" + kind;
      clear_dir(scn);
      const std::string fault_out = (out_dir / (tag + ".out")).string();
      const ChildResult faulted =
          run_child(options.exe, base_args, {{"PSA_IO_FAULT", fault_spec}},
                    fault_out, (out_dir / (tag + ".err")).string());
      if (!faulted.spawned) {
        violation(op, kind, "failed to spawn child");
        continue;
      }

      const bool process_crashed =
          faulted.exited &&
          faulted.exit_code == support::io::kCrashExitCode;
      if (kind == "crash" && process_crashed) {
        // Invariant 4: the batch died mid-run at exactly this op; --resume
        // against the surviving checkpoint + cache must reproduce the
        // golden report byte-for-byte (modulo resume markers).
        std::vector<std::string> resume_args = base_args;
        resume_args.push_back("--resume");
        const std::string resume_out =
            (out_dir / (tag + ".resume.out")).string();
        const ChildResult resumed = run_child(
            options.exe, resume_args, {}, resume_out,
            (out_dir / (tag + ".resume.err")).string());
        if (!resumed.spawned || !resumed.exited ||
            resumed.exit_code != golden.exit_code) {
          std::ostringstream what;
          what << "--resume after crash exited " << resumed.exit_code
               << " (signal " << resumed.signal << "), want golden "
               << golden.exit_code;
          violation(op, kind, what.str());
          continue;
        }
        const std::string resumed_report =
            strip_resume_markers(read_file(resume_out));
        if (resumed_report != golden_report) {
          violation(op, kind,
                    "--resume report differs from golden (see " + resume_out +
                        ")");
        }
        continue;
      }

      // Non-crash kinds (and crash faults contained inside a worker): the
      // batch must survive the fault with a contract exit code.
      if (!faulted.exited) {
        std::ostringstream what;
        what << "child died on signal " << faulted.signal;
        violation(op, kind, what.str());
        continue;
      }
      if (faulted.exit_code != golden.exit_code &&
          faulted.exit_code != kExitSomeUnitsFailed) {
        std::ostringstream what;
        what << "exit " << faulted.exit_code << " outside contract {golden "
             << golden.exit_code << ", " << kExitSomeUnitsFailed << "}";
        violation(op, kind, what.str());
        continue;
      }

      // Invariant 2: byte-identical report, or an explicit degradation
      // marker — never a silently different answer.
      const std::string faulted_report = read_file(fault_out);
      if (faulted_report != golden_report &&
          !carries_degradation_marker(faulted_report)) {
        violation(op, kind,
                  "report differs from golden without a degradation marker "
                  "(see " +
                      fault_out + ")");
        continue;
      }

      // Invariant 3: warm verification. Re-run against the fault-scarred
      // cache directory (fresh checkpoint, no fault): every surviving cache
      // entry is either valid or quarantined on read, so the report must be
      // byte-identical to golden. A torn entry served from cache would
      // surface right here.
      std::error_code scrub_ec;
      fs::remove_all(ckpt_dir, scrub_ec);
      const std::string warm_out = (out_dir / (tag + ".warm.out")).string();
      const ChildResult warm =
          run_child(options.exe, base_args, {}, warm_out,
                    (out_dir / (tag + ".warm.err")).string());
      if (!warm.spawned || !warm.exited ||
          warm.exit_code != golden.exit_code) {
        std::ostringstream what;
        what << "warm verify exited " << warm.exit_code << " (signal "
             << warm.signal << "), want golden " << golden.exit_code;
        violation(op, kind, what.str());
        continue;
      }
      const std::string warm_report = read_file(warm_out);
      if (warm_report != golden_report) {
        violation(op, kind,
                  "warm verify report differs from golden (see " + warm_out +
                      ")");
      }
    }
    std::fprintf(stderr, "campaign: op %llu/%llu swept (%zu scenarios so far, %zu violations)\n",
                 static_cast<unsigned long long>(op.number),
                 static_cast<unsigned long long>(ops.back().number),
                 scenario_index, violations.size());
  }

  std::ostringstream verdict;
  verdict << "fault campaign: " << ops.size() << " ops x "
          << options.kinds.size() << " kinds = " << scenario_index
          << " scenarios, " << violations.size() << " violations\n";
  for (const std::string& v : violations) verdict << "  " << v << '\n';
  std::fputs(verdict.str().c_str(), stdout);
  return violations.empty() ? 0 : 1;
}

#else  // !PSA_CAMPAIGN_POSIX

int run_fault_campaign(const CampaignOptions&) {
  std::fprintf(stderr,
               "campaign: fault campaigns need POSIX fork/exec; this build "
               "has no process control\n");
  return 2;
}

#endif

}  // namespace psa::driver
