// The crash-isolated batch supervisor.
//
// run_batch() analyzes a list of units so that NO single unit — pathological
// input, analyzer defect, hang, or memory blow-up — can take down the batch:
//
//   * with isolation on (the default where fork() exists), every unit runs
//     in its own forked worker process; the worker serializes its result
//     (driver/payload.hpp) to a snapshot file and exits, and the supervisor
//     validates and collects it;
//   * a wall-clock watchdog SIGTERMs a worker that exceeds the per-unit
//     budget and SIGKILLs it after a grace period;
//   * every worker death is classified into a structured UnitOutcome
//     (clean / frontend-error / nonzero-exit / signal / timeout / oom);
//   * a failed unit is retried ONCE at a stepped-down governor budget
//     (stepped_down()); failing again quarantines it — the batch always
//     completes with every other result intact;
//   * with --checkpoint, attempts/outcomes are journaled and snapshots kept,
//     so an interrupted batch resumes: finished units are served from disk,
//     quarantined units replay their outcome, everything else re-runs;
//   * without fork (or with isolation off), units run in-process through the
//     exact same outcome/checkpoint/reporting machinery — exceptions are
//     contained per unit, but hard crashes and hangs are not (the governor's
//     deadline is the only watchdog there).
//
// Worker-side fault injection (PSA_FAULT_AT, driver/fault.hpp) lets tests
// and CI prove all of the above; see docs/RESILIENCE.md.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/engine.hpp"
#include "checker/sarif.hpp"
#include "driver/payload.hpp"
#include "driver/unit.hpp"

namespace psa::cache {
class ResultCache;
}  // namespace psa::cache

namespace psa::driver {

/// Runs one unit end to end (frontend + fixpoint + optional checkers) and
/// returns the *serialized* UnitPayload bytes. Runs inside the forked worker
/// (or inline when isolation is off). Must contain FrontendError itself
/// (payload with frontend_ok=false); any other exception is the worker's
/// problem and classifies the unit.
using UnitRunner =
    std::function<std::string(const AnalysisUnit&, const analysis::Options&)>;

/// The default runner: analyze at options.level, run the memory-safety
/// checkers when `check`, serialize. `salvage` enables the salvage-mode
/// frontend (the batch default): unsupported constructs degrade to sound
/// havoc semantics instead of failing the unit.
///
/// With a non-null `cache` (the content-addressed result cache,
/// cache/cache.hpp), the lowered unit is looked up after the frontend runs:
/// a checksum-valid, deeply-deserializable entry skips the fixpoint and
/// checkers entirely (the payload is re-issued under the current unit name
/// with this run's metrics delta, so the batch report is byte-identical to a
/// cold run); a corrupt or version-skewed entry is evicted, recomputed, and
/// stored back (counted as cache_self_heals). Cacheable results — converged,
/// and not possibly shaped by a wall-clock deadline — are stored after a
/// miss. Cache failures of any kind degrade to "no cache": they never fail
/// the unit.
[[nodiscard]] std::string run_unit_serialized(const AnalysisUnit& unit,
                                              const analysis::Options& engine,
                                              bool check, bool salvage = true,
                                              cache::ResultCache* cache =
                                                  nullptr);

/// One retry step of the governor budget: roughly halves the widen
/// threshold, visit budget, set limit and deadline (never below a sane
/// floor) so the retry converges where the first attempt blew up.
[[nodiscard]] analysis::Options stepped_down(const analysis::Options& options);

struct UnitReport;

struct BatchOptions {
  /// Fork one sandboxed worker per unit. Auto-degrades (with a log line) to
  /// the in-process path on platforms without fork.
  bool isolate = true;
  /// Concurrent workers (isolation only; the in-process path is serial).
  std::size_t jobs = 1;
  /// Checkpoint directory; empty disables checkpointing (workers then write
  /// their IPC snapshots to a private temp dir).
  std::string checkpoint_dir;
  /// Content-addressed result cache directory (cache/cache.hpp); empty
  /// disables caching. Opened (and recovered: stray tmp files swept, corrupt
  /// entries quarantined) once at batch start; each worker then looks its
  /// unit up after the frontend and skips the fixpoint on a validated hit.
  /// Only the default runner consults the cache.
  std::string cache_dir;
  /// Bounded-cache policy (cache::ResultCache::SweepLimits semantics): when
  /// either is non-zero the cache is swept after the batch completes — age
  /// expiry, then oldest-first eviction below the byte cap. Zeros leave the
  /// cache unbounded (the pre-sweep behavior).
  std::uint64_t cache_max_bytes = 0;
  std::uint64_t cache_max_age_ms = 0;
  /// Resume from `checkpoint_dir` (see driver/checkpoint.hpp semantics).
  bool resume = false;
  /// Per-unit wall-clock budget in ms; 0 disables the watchdog.
  std::uint64_t unit_timeout_ms = 0;
  /// SIGTERM -> SIGKILL escalation grace.
  std::uint64_t term_grace_ms = 2000;
  /// Attempts per unit before quarantine (>= 1; 2 = the one-retry policy).
  int max_attempts = 2;
  /// Engine options of the first attempt.
  analysis::Options engine;
  /// Run the memory-safety checkers in every worker.
  bool check = false;
  /// Disable the salvage-mode frontend: restore strict fail-fast behavior
  /// where every unsupported construct is a unit-level frontend error.
  bool strict_frontend = false;
  /// Unit-level progress log (start / done / retry / skip lines); null = quiet.
  std::function<void(const std::string&)> log;
  /// Streaming hook: called exactly once per unit, in settle order (not
  /// input order), the moment its outcome becomes terminal — ok, partial,
  /// failed, quarantined, or served from a checkpoint. Retries do not fire
  /// it. The index is the unit's position in the input list; the report
  /// reference is only valid for the duration of the call. The service
  /// daemon streams one PSARPC2 frame per invocation (docs/SERVICE.md).
  std::function<void(std::size_t, const UnitReport&)> on_unit_done;
  /// Idle hook: called from the supervisor's wait loop a few times per
  /// second while workers run (and between units in-process) — never
  /// concurrently. The daemon's heartbeat timer.
  std::function<void()> on_tick;
};

struct UnitReport {
  AnalysisUnit unit;
  UnitOutcome outcome;
  /// Present when outcome.kind == kOk or kPartial.
  std::optional<UnitPayload> payload;
};

struct BatchResult {
  std::vector<UnitReport> units;  // input order
  /// Whether workers were actually process-isolated.
  bool isolated = false;
  /// Supervisor-side durable-I/O failures absorbed as sound degradations: a
  /// checkpoint journal record that did not land (the unit merely re-runs on
  /// resume), an in-process snapshot that could not be written, a cache
  /// directory that could not be opened (the batch runs uncached). Rendered
  /// as a trailing "io degradations: N" report line when non-zero — the
  /// degradation note the resilience contract promises. Worker-side io
  /// failures surface through unit outcomes instead.
  std::size_t io_degradations = 0;

  [[nodiscard]] std::size_t ok_count() const;
  [[nodiscard]] std::size_t failed_count() const;
  /// Units that completed with a degraded (salvage-mode) frontend. These
  /// are a subset of the analyzed units, not of failed_count().
  [[nodiscard]] std::size_t partial_count() const;
  [[nodiscard]] std::size_t quarantined_count() const;
  [[nodiscard]] std::size_t from_checkpoint_count() const;
  [[nodiscard]] std::size_t finding_count() const;
};

/// True when this build/platform can fork sandboxed workers.
[[nodiscard]] bool isolation_supported() noexcept;

/// Run the batch. Never throws for per-unit failures; throws
/// std::runtime_error only for batch-level setup failures (an uncreatable
/// checkpoint directory). Durable-I/O failures past setup — journal records,
/// snapshots, an unusable cache directory — degrade soundly and are tallied
/// in BatchResult::io_degradations; the batch itself never dies of them.
[[nodiscard]] BatchResult run_batch(const std::vector<AnalysisUnit>& units,
                                    const BatchOptions& options,
                                    const UnitRunner& runner = {});

/// Documented process exit codes of batch drivers (psa_cli and tests assert
/// these). Partial units (salvage-mode degraded frontend) count as analyzed:
/// a batch of ok + partial units exits 0 or 1, never 3.
///   0 every unit analyzed, no findings
///   1 every unit analyzed, memory-safety findings reported
///   2 bad usage (reserved for the CLI argument parser)
///   3 some units failed (crash / timeout / oom / exit / frontend error)
///   4 every unit failed
enum BatchExitCode : int {
  kExitOk = 0,
  kExitFindings = 1,
  kExitBadUsage = 2,
  kExitSomeUnitsFailed = 3,
  kExitAllUnitsFailed = 4,
};

[[nodiscard]] int batch_exit_code(const BatchResult& result);

/// Deterministic batch report: unit outcomes, exit-state sizes and finding
/// counts in input order — no wall-clock fields, so an uninterrupted run and
/// a resumed run of the same batch render byte-identical reports.
[[nodiscard]] std::string format_batch_report(const BatchResult& result);

/// Per-artifact findings of the completed units, ready for
/// checker::to_sarif_batch (partial batches merge into one SARIF log).
[[nodiscard]] std::vector<checker::ArtifactFindings> batch_findings(
    const BatchResult& result);

/// The whole clean corpus as batch units (psa_cli --corpus and the
/// fault-injection suites).
[[nodiscard]] std::vector<AnalysisUnit> corpus_units();

/// The dirty corpus as batch units (psa_cli --corpus-dirty and the salvage
/// smoke test): every unit degrades under the salvage frontend but must
/// still complete as kPartial, never kFrontendError.
[[nodiscard]] std::vector<AnalysisUnit> corpus_dirty_units();

}  // namespace psa::driver
