// Deliberate fault injection for the crash-isolated batch driver.
//
// PSA_FAULT_AT=unit:kind[,unit:kind...] arms a fault for specific analysis
// units. The hook is honored ONLY inside a sandboxed worker process (the
// supervisor arms it right before running the unit's analysis) — the
// supervisor itself and the in-process fallback never inject, so a stray
// environment variable can degrade at most one unit per batch, never the
// batch itself. Tests and the CI crash-injection job use this to prove the
// supervisor contains crashes, hangs and OOM (docs/RESILIENCE.md).
//
// Kinds:
//   crash  std::abort() — dies by SIGABRT under every build mode (ASan does
//          not intercept abort), the deterministic "analyzer defect".
//   segv   write through a null pointer. Dies by SIGSEGV in plain builds;
//          under ASan the report path exits nonzero instead, so tests that
//          must be classification-exact use `crash`.
//   hang   sleep forever — exercises the watchdog's SIGTERM -> SIGKILL
//          escalation.
//   oom    throw std::bad_alloc — exercises the worker's allocation-failure
//          protocol (exit code kOomExitCode) without depending on the
//          allocator's real out-of-memory behavior, which sanitizers change.
//   throw  throw std::runtime_error — an uncaught analyzer exception
//          (exit code kUncaughtExceptionExitCode).
//
// Cache and socket fault points (docs/SERVICE.md) — these do not kill the
// worker; they corrupt its side effects so the self-healing paths can be
// proven:
//   cachetear  the result-cache store writes a truncated entry directly to
//              the final path, simulating a crash mid-write with no rename
//              guard. The next lookup must reject and evict it.
//   cacheflip  the store completes, then one bit of the entry is flipped on
//              disk. The PSASNAP1 checksum must catch it on the next lookup.
//   sockdrop   a service daemon's request handler closes the connection and
//              exits without replying — the client sees a connection reset
//              and must retry, then fall back to in-process analysis.
//   streamtear a streaming handler writes HALF of the faulted unit's result
//              frame and hangs up mid-frame. The client must detect the torn
//              stream (short read / checksum), keep every unit already
//              received, and reconnect for only the unfinished ones.
//   evictrace  a cache lookup loses the race against a concurrent sweep:
//              the entry vanishes between the decision to read and the read
//              itself. Must surface as a clean miss (recompute), never as
//              torn bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace psa::driver {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kCrash,
  kSegv,
  kHang,
  kOom,
  kThrow,
  kCacheTear,
  kCacheFlip,
  kSockDrop,
  kStreamTear,
  kEvictRace,
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

/// The parsed PSA_FAULT_AT plan: which unit gets which fault.
class FaultPlan {
 public:
  /// Parse "unit:kind[,unit:kind...]". Unknown kinds and malformed entries
  /// are ignored (a batch must never die because of a typo in a test knob).
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  /// Plan from the PSA_FAULT_AT environment variable (empty plan if unset).
  [[nodiscard]] static FaultPlan from_env();

  [[nodiscard]] FaultKind for_unit(std::string_view unit_name) const;
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

 private:
  std::vector<std::pair<std::string, FaultKind>> entries_;
};

/// Trigger `kind` at the call site. kNone returns immediately; kOom and
/// kThrow raise; kCrash, kSegv and kHang never return. The cache/socket
/// kinds are no-ops here: they are honored at their dedicated fault points
/// (cache store, daemon reply) rather than at worker startup.
void inject_fault(FaultKind kind);

}  // namespace psa::driver
