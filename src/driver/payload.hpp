// The worker -> supervisor result payload.
//
// Everything a batch supervisor needs from one completed unit, serialized
// with the rsg/serialize.hpp wire format: the full AnalysisResult (every
// per-statement RSRSG, degradation report, resource accounting), the checker
// findings, and the CFG exit node id so reports can quote exit-state sizes
// without re-running the frontend. The same bytes are the on-disk checkpoint
// of the unit, so a resumed batch replays them instead of re-analyzing.
//
// A payload is self-contained: deserialization re-interns every symbol into
// a fresh Interner owned by the payload, so the supervisor can hold results
// from many workers (each with its own frontend interner) side by side.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/snapshot.hpp"
#include "checker/checker.hpp"
#include "driver/unit.hpp"

namespace psa::driver {

struct UnitPayload {
  /// Echo of the unit identity, validated against the checkpoint key.
  std::string unit_name;
  std::string function;

  /// Frontend verdict. When false, only `frontend_error` is meaningful.
  bool frontend_ok = true;
  std::string frontend_error;

  /// Fixpoint result (frontend_ok only).
  analysis::AnalysisResult result;
  /// cfg::Cfg::exit() of the analyzed function — index into
  /// result.per_node, validated on load.
  std::uint32_t exit_node = 0;

  /// Salvage-mode degradation summary (frontend_ok only; all zero on a
  /// clean run). Mirrors analysis::SalvageInfo — nonzero degradation maps
  /// the unit outcome to UnitOutcomeKind::kPartial.
  std::uint32_t skipped_decls = 0;
  std::uint32_t havoc_sites = 0;
  std::uint32_t unsupported_count = 0;
  std::uint32_t functions_analyzable = 0;
  std::uint32_t functions_total = 0;
  /// Rendered kUnsupported diagnostics explaining every degradation.
  std::string salvage_diagnostics;

  /// Checker findings (present when the batch ran with --check).
  bool checked = false;
  std::vector<checker::Finding> findings;

  /// Whole-unit operation counters and phase timers (frontend + fixpoint +
  /// checkers), captured as a support::MetricsRegion delta around the
  /// worker's run. Superset of result.ops, which covers the fixpoint only.
  /// All-zero in PSA_METRICS=0 builds. The serialize phase itself cannot be
  /// timed here (the payload is closed before serialization finishes), so
  /// phase_serialize_* is measured by the caller of
  /// serialize_unit_payload — see docs/OBSERVABILITY.md.
  support::MetricsSnapshot metrics;

  /// Owns the symbols referenced by `result` after deserialization. Null for
  /// payloads built in place (their symbols belong to the live frontend).
  std::shared_ptr<support::Interner> interner;

  /// The frontend degraded (salvage mode); the supervisor maps this to
  /// UnitOutcomeKind::kPartial.
  [[nodiscard]] bool degraded() const {
    return frontend_ok && (skipped_decls != 0 || havoc_sites != 0 ||
                           unsupported_count != 0);
  }

  /// Exit-state shape of the unit (deterministic report fields).
  [[nodiscard]] std::size_t exit_graphs() const {
    return frontend_ok ? result.per_node[exit_node].size() : 0;
  }
  [[nodiscard]] std::size_t exit_nodes() const {
    return frontend_ok ? result.per_node[exit_node].total_nodes() : 0;
  }
};

/// Serialize (envelope + string table + records). `interner` must span every
/// symbol `payload.result` references — the frontend interner of the run.
[[nodiscard]] std::string serialize_unit_payload(
    const UnitPayload& payload, const support::Interner& interner);

/// Validate + materialize. Throws rsg::SnapshotError on any corruption; the
/// returned payload owns a fresh interner.
[[nodiscard]] UnitPayload deserialize_unit_payload(std::string_view bytes);

}  // namespace psa::driver
