#include "driver/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/hash.hpp"
#include "support/io.hpp"
#include "support/metrics.hpp"

namespace psa::driver {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kJournalHeader = "psa-journal v1";

std::string escape_detail(std::string_view detail) {
  std::string out;
  out.reserve(detail.size());
  for (const char c : detail) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_detail(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out += s[i] == 'n' ? '\n' : s[i];
    } else {
      out += s[i];
    }
  }
  return out;
}

std::uint64_t fnv1a(std::string_view s, std::uint64_t h = 0xcbf29ce484222325ull) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string unit_key(const AnalysisUnit& unit) {
  std::string sanitized;
  for (const char c : unit.name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                      c == '.';
    sanitized += safe ? c : '_';
    if (sanitized.size() >= 64) break;
  }
  if (sanitized.empty()) sanitized = "unit";
  const std::uint64_t h = fnv1a(unit.function, fnv1a(unit.name) ^ 0x9e3779b9ull);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(h));
  return sanitized + "-" + std::string(hex, 8);
}

Checkpoint::Checkpoint(std::string dir, bool resume) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
  journal_path_ = (fs::path(dir_) / "journal.psaj").string();

  if (resume) {
    // A worker killed mid-write leaves its .snap.tmp behind; the rename
    // never happened, so the bytes were never a result. Sweep them before
    // replay — a stray tmp must neither shadow a re-run's write nor survive
    // as junk in a directory the resume contract calls recovered.
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      if (!name.ends_with(".snap.tmp")) continue;
      fs::remove(entry.path(), ec);
      recovery_notes_.push_back("checkpoint: removed stale in-flight snapshot " +
                                name + " (writer died mid-write)");
    }

    // Replay: the last outcome line per key wins; torn/unknown lines are
    // skipped.
    std::ifstream in(journal_path_);
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream fields(line);
      std::string tag;
      fields >> tag;
      if (tag != "outcome") continue;
      std::string key, kind_str;
      int exit_code = 0, signal = 0, attempts = 0, quarantined = 0;
      if (!(fields >> key >> kind_str >> exit_code >> signal >> attempts >>
            quarantined)) {
        continue;
      }
      UnitOutcome outcome;
      if (!parse_outcome_kind(kind_str, outcome.kind)) continue;
      outcome.exit_code = exit_code;
      outcome.signal = signal;
      outcome.attempts = attempts;
      outcome.quarantined = quarantined != 0;
      std::string detail;
      std::getline(fields, detail);
      if (!detail.empty() && detail.front() == ' ') detail.erase(0, 1);
      outcome.detail = unescape_detail(detail);
      replayed_[key] = std::move(outcome);
    }
  } else {
    // Fresh run into an existing directory: clear the previous journal and
    // snapshots so stale state can never masquerade as this run's.
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      if (name == "journal.psaj" || name.ends_with(".snap") ||
          name.ends_with(".snap.tmp")) {
        fs::remove(entry.path(), ec);
      }
    }
  }

  // A torn final line (writer died mid-write, even inside the header) is
  // skipped by replay — but it must also not glue itself onto the next
  // record we append. Terminate it first.
  {
    std::error_code ec;
    const auto size = fs::file_size(journal_path_, ec);
    if (!ec && size > 0) {
      std::ifstream tail(journal_path_, std::ios::binary);
      tail.seekg(-1, std::ios::end);
      char last = '\n';
      if (tail.get(last) && last != '\n') {
        (void)append_record("");
      }
    }
  }

  std::error_code ec;
  const auto size = fs::file_size(journal_path_, ec);
  if (ec || size == 0) {
    if (!append_record(std::string(kJournalHeader))) {
      // The journal is unwritable (full disk, failing device, bad perms).
      // Degrade instead of killing the batch: the run completes normally,
      // every later record_* reports failure for the caller to count, and a
      // --resume simply re-runs what the journal never learned about.
      recovery_notes_.push_back(
          "checkpoint: journal not writable at " + journal_path_ +
          "; this run will not be resumable from it");
    }
  }
}

bool Checkpoint::append_record(const std::string& line) {
  const auto result = support::io::checked_append(journal_path_, line + '\n');
  if (!result) PSA_COUNT(support::Counter::kIoDegradations);
  return result.ok;
}

bool Checkpoint::record_attempt(const std::string& key, int attempt) {
  return append_record("attempt " + key + ' ' + std::to_string(attempt));
}

bool Checkpoint::record_outcome(const std::string& key,
                                const UnitOutcome& outcome) {
  std::ostringstream record;
  record << "outcome " << key << ' ' << to_string(outcome.kind) << ' '
         << outcome.exit_code << ' ' << outcome.signal << ' '
         << outcome.attempts << ' ' << (outcome.quarantined ? 1 : 0) << ' '
         << escape_detail(outcome.detail);
  return append_record(record.str());
}

const UnitOutcome* Checkpoint::replayed_outcome(const std::string& key) const {
  const auto it = replayed_.find(key);
  return it == replayed_.end() ? nullptr : &it->second;
}

std::string Checkpoint::snapshot_path(const std::string& key) const {
  return (fs::path(dir_) / (key + ".snap")).string();
}

std::string Checkpoint::snapshot_tmp_path(const std::string& key) const {
  return (fs::path(dir_) / (key + ".snap.tmp")).string();
}

std::optional<UnitPayload> Checkpoint::load_payload(const std::string& key,
                                                    std::string* error) const {
  const std::string path = snapshot_path(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "missing snapshot " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  try {
    return deserialize_unit_payload(bytes);
  } catch (const rsg::SnapshotError& e) {
    if (error != nullptr) *error = std::string(e.what()) + " in " + path;
    return std::nullopt;
  }
}

}  // namespace psa::driver
