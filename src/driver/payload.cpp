#include "driver/payload.hpp"

#include "support/metrics.hpp"

namespace psa::driver {

namespace {

using rsg::ByteReader;
using rsg::ByteWriter;
using rsg::SnapshotError;

void append_finding(ByteWriter& out, const checker::Finding& f) {
  out.u8(static_cast<std::uint8_t>(f.kind));
  out.u8(static_cast<std::uint8_t>(f.severity));
  out.u32(f.site);
  out.u32(f.loc.line);
  out.u32(f.loc.column);
  out.str(f.stmt);
  out.str(f.message);
  out.str(f.witness_node);
  out.u64(f.graphs_bad);
  out.u64(f.graphs_total);
  out.u8(f.degraded ? 1 : 0);
  out.u32(static_cast<std::uint32_t>(f.trace.size()));
  for (const checker::TraceStep& step : f.trace) {
    out.u32(step.loc.line);
    out.u32(step.loc.column);
    out.str(step.text);
  }
}

checker::Finding read_finding(ByteReader& in) {
  checker::Finding f;
  const std::uint8_t kind = in.u8("finding kind");
  if (kind > static_cast<std::uint8_t>(checker::CheckKind::kLeakAtExit)) {
    throw SnapshotError("bad finding kind");
  }
  f.kind = static_cast<checker::CheckKind>(kind);
  const std::uint8_t severity = in.u8("finding severity");
  if (severity > static_cast<std::uint8_t>(checker::CheckSeverity::kError)) {
    throw SnapshotError("bad finding severity");
  }
  f.severity = static_cast<checker::CheckSeverity>(severity);
  f.site = in.u32("finding site");
  f.loc.line = in.u32("finding line");
  f.loc.column = in.u32("finding column");
  f.stmt = std::string(in.str("finding stmt"));
  f.message = std::string(in.str("finding message"));
  f.witness_node = std::string(in.str("finding witness"));
  f.graphs_bad = in.u64("finding graphs bad");
  f.graphs_total = in.u64("finding graphs total");
  const std::uint8_t degraded = in.u8("finding degraded flag");
  if (degraded > 1) throw SnapshotError("bad finding degraded flag");
  f.degraded = degraded != 0;
  const std::uint32_t steps = in.count("finding trace", 12);
  f.trace.reserve(steps);
  for (std::uint32_t i = 0; i < steps; ++i) {
    checker::TraceStep step;
    step.loc.line = in.u32("trace line");
    step.loc.column = in.u32("trace column");
    step.text = std::string(in.str("trace text"));
    f.trace.push_back(std::move(step));
  }
  return f;
}

}  // namespace

std::string serialize_unit_payload(const UnitPayload& payload,
                                   const support::Interner& interner) {
  PSA_PHASE_TIMER(serialize_timer, support::Counter::kPhaseSerializeWallNs,
                  support::Counter::kPhaseSerializeCpuNs);
  rsg::SymbolTableBuilder table(interner);
  ByteWriter body;
  body.str(payload.unit_name);
  body.str(payload.function);
  body.u8(payload.frontend_ok ? 1 : 0);
  if (!payload.frontend_ok) {
    body.str(payload.frontend_error);
  } else {
    body.u32(payload.exit_node);
    analysis::append_analysis_result(body, payload.result, table);
    // Salvage-mode degradation summary (all zero on a clean frontend).
    body.u32(payload.skipped_decls);
    body.u32(payload.havoc_sites);
    body.u32(payload.unsupported_count);
    body.u32(payload.functions_analyzable);
    body.u32(payload.functions_total);
    body.str(payload.salvage_diagnostics);
  }
  body.u8(payload.checked ? 1 : 0);
  body.u32(static_cast<std::uint32_t>(payload.findings.size()));
  for (const checker::Finding& f : payload.findings) append_finding(body, f);
  analysis::append_metrics(body, payload.metrics);

  ByteWriter out;
  table.write_table(out);
  std::string bytes = out.take();
  bytes += body.bytes();
  return rsg::wrap_snapshot(std::move(bytes));
}

UnitPayload deserialize_unit_payload(std::string_view bytes) {
  ByteReader in(rsg::unwrap_snapshot(bytes));
  UnitPayload payload;
  payload.interner = std::make_shared<support::Interner>();
  const rsg::SymbolTableView table(in, *payload.interner);
  payload.unit_name = std::string(in.str("unit name"));
  payload.function = std::string(in.str("unit function"));
  const std::uint8_t frontend_ok = in.u8("frontend flag");
  if (frontend_ok > 1) throw SnapshotError("bad frontend flag");
  payload.frontend_ok = frontend_ok != 0;
  if (!payload.frontend_ok) {
    payload.frontend_error = std::string(in.str("frontend error"));
  } else {
    payload.exit_node = in.u32("exit node");
    payload.result = analysis::read_analysis_result(in, table);
    if (payload.exit_node >= payload.result.per_node.size()) {
      throw SnapshotError("exit node out of range");
    }
    payload.skipped_decls = in.u32("salvage skipped decls");
    payload.havoc_sites = in.u32("salvage havoc sites");
    payload.unsupported_count = in.u32("salvage unsupported count");
    payload.functions_analyzable = in.u32("salvage functions analyzable");
    payload.functions_total = in.u32("salvage functions total");
    if (payload.functions_analyzable > payload.functions_total) {
      throw SnapshotError("salvage function counts inconsistent");
    }
    payload.salvage_diagnostics = std::string(in.str("salvage diagnostics"));
  }
  const std::uint8_t checked = in.u8("checked flag");
  if (checked > 1) throw SnapshotError("bad checked flag");
  payload.checked = checked != 0;
  const std::uint32_t findings = in.count("findings", 39);
  payload.findings.reserve(findings);
  for (std::uint32_t i = 0; i < findings; ++i) {
    payload.findings.push_back(read_finding(in));
  }
  payload.metrics = analysis::read_metrics(in);
  in.expect_end("unit payload");
  return payload;
}

}  // namespace psa::driver
