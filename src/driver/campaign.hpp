// Deterministic fault-space exploration over the durable-I/O layer
// (src/support/io): replay the batch → cache → checkpoint → resume pipeline
// once per (op number, fault kind) pair and assert, machine-checkably, that
// every single-fault outcome is a *sound degradation*:
//
//   1. The documented exit-code contract holds — a faulted child exits with
//      a contract code (never a signal death, never an undocumented code).
//   2. The final report is byte-identical to the golden run, or carries an
//      explicit degradation marker (io degradations / attempts / quarantined)
//      — a fault is never silently absorbed into a *different* answer.
//   3. No corrupt cache entry is ever served: a warm re-run against the
//      fault-scarred cache directory (fresh checkpoint, no fault) must
//      reproduce the golden report byte-for-byte.
//   4. A `crash` fault that kills the whole process is recoverable:
//      `--resume` against the surviving checkpoint + cache reproduces the
//      uninterrupted report byte-for-byte (modulo the documented
//      "from checkpoint" markers).
//
// The sweep is driven by a golden trace: one clean run with PSA_IO_TRACE
// records the stream of durable ops; the campaign then re-execs the same
// pipeline once per traced op per kind with PSA_IO_FAULT=<op>:<kind>.
// docs/RESILIENCE.md ("The I/O fault space") documents the model;
// scripts/fault_campaign.sh wraps this driver and adds a daemon-side sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psa::driver {

struct CampaignOptions {
  /// Path of the psa_cli binary to re-exec for every scenario (argv[0] of
  /// the invoking process).
  std::string exe;
  /// Scratch root for unit sources, checkpoint/cache directories, traces,
  /// and per-scenario transcripts. Created if missing; contents clobbered.
  std::string workdir;
  /// Fault kinds to sweep. Defaults to the full vocabulary of
  /// support::io::FaultKind.
  std::vector<std::string> kinds = {"enospc", "eio", "shortwrite",
                                    "tornrename", "crash"};
  /// Cap on the number of traced ops to fault (0 = every op in the golden
  /// trace). CI uses the default bounded corpus and no cap; a cap exists for
  /// quick local iteration.
  std::uint64_t max_ops = 0;
  /// false: two-unit bounded corpus (minutes); true: the whole clean corpus
  /// (the full sweep documented in EXPERIMENTS.md).
  bool full_corpus = false;
};

/// Runs the campaign: golden run, per-(op, kind) fault scenarios, warm-cache
/// verification, and crash/--resume verification. Streams per-scenario
/// progress to stderr and a final verdict to stdout. Returns 0 when every
/// invariant held for every pair, 1 on any violation, 2 on setup failure
/// (golden run broken, unwritable workdir, unknown fault kind).
[[nodiscard]] int run_fault_campaign(const CampaignOptions& options);

}  // namespace psa::driver
