#include "driver/supervisor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "analysis/analyzer.hpp"
#include "cache/cache.hpp"
#include "cache/key.hpp"
#include "checker/checker.hpp"
#include "corpus/corpus.hpp"
#include "driver/checkpoint.hpp"
#include "driver/fault.hpp"
#include "driver/incremental.hpp"
#include "ipa/summarize.hpp"
#include "support/io.hpp"
#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PSA_DRIVER_HAS_FORK 1
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif
#else
#define PSA_DRIVER_HAS_FORK 0
#endif

namespace psa::driver {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string describe(const UnitOutcome& outcome) {
  std::ostringstream out;
  out << to_string(outcome.kind);
  switch (outcome.kind) {
    case UnitOutcomeKind::kOk:
    case UnitOutcomeKind::kFrontendError:
    case UnitOutcomeKind::kTimeout:
    case UnitOutcomeKind::kPartial:
      break;
    case UnitOutcomeKind::kExit:
      out << " (code " << outcome.exit_code << ")";
      break;
    case UnitOutcomeKind::kCrash:
      out << " (signal " << outcome.signal << ")";
      break;
    case UnitOutcomeKind::kOom:
      break;
  }
  return out.str();
}

std::size_t BatchResult::ok_count() const {
  return static_cast<std::size_t>(
      std::count_if(units.begin(), units.end(), [](const UnitReport& u) {
        return !u.outcome.failed();
      }));
}

std::size_t BatchResult::failed_count() const {
  return units.size() - ok_count();
}

std::size_t BatchResult::partial_count() const {
  return static_cast<std::size_t>(
      std::count_if(units.begin(), units.end(), [](const UnitReport& u) {
        return u.outcome.kind == UnitOutcomeKind::kPartial;
      }));
}

std::size_t BatchResult::quarantined_count() const {
  return static_cast<std::size_t>(
      std::count_if(units.begin(), units.end(), [](const UnitReport& u) {
        return u.outcome.quarantined;
      }));
}

std::size_t BatchResult::from_checkpoint_count() const {
  return static_cast<std::size_t>(
      std::count_if(units.begin(), units.end(), [](const UnitReport& u) {
        return u.outcome.from_checkpoint;
      }));
}

std::size_t BatchResult::finding_count() const {
  std::size_t n = 0;
  for (const UnitReport& u : units) {
    if (u.payload) n += u.payload->findings.size();
  }
  return n;
}

bool isolation_supported() noexcept { return PSA_DRIVER_HAS_FORK != 0; }

analysis::Options stepped_down(const analysis::Options& options) {
  analysis::Options out = options;
  if (out.widen_threshold == 0 || out.widen_threshold > 16) {
    out.widen_threshold = std::max<std::size_t>(
        8, out.widen_threshold == 0 ? 16 : out.widen_threshold / 2);
  }
  if (out.max_rsgs_per_set > 64) out.max_rsgs_per_set /= 2;
  if (out.max_node_visits > 100'000) out.max_node_visits /= 2;
  if (out.deadline_ms > 1000) out.deadline_ms /= 2;
  return out;
}

namespace {

/// A result is cached only when re-running it would reproduce it exactly:
/// the fixpoint converged, and no wall-clock deadline could have shaped the
/// degradation it carries (visit/memory/set budgets are deterministic;
/// deadline expiry is not, so a deadline run that degraded at all is not
/// trusted to be repeatable).
bool cacheable(const UnitPayload& payload, const analysis::Options& engine) {
  return payload.frontend_ok && payload.result.converged() &&
         (engine.deadline_ms == 0 || payload.result.degradation.empty());
}

/// PSA_FAULT_AT cache fault points (docs/RESILIENCE.md). Unlike the
/// process-killing kinds, these are honored wherever the store runs — the
/// corruption they plant is contained by the cache's own validation, so
/// there is nothing to sandbox.
cache::StoreFault store_fault_for(const AnalysisUnit& unit) {
  switch (FaultPlan::from_env().for_unit(unit.name)) {
    case FaultKind::kCacheTear:
      return cache::StoreFault::kTear;
    case FaultKind::kCacheFlip:
      return cache::StoreFault::kFlip;
    default:
      return cache::StoreFault::kNone;
  }
}

cache::LookupFault lookup_fault_for(const AnalysisUnit& unit) {
  return FaultPlan::from_env().for_unit(unit.name) == FaultKind::kEvictRace
             ? cache::LookupFault::kEvictRace
             : cache::LookupFault::kNone;
}

}  // namespace

std::string run_unit_serialized(const AnalysisUnit& unit,
                                const analysis::Options& engine, bool check,
                                bool salvage, cache::ResultCache* cache) {
  // Whole-unit counter attribution (frontend + fixpoint + checkers). In a
  // forked worker the delta equals the absolute registry values; on the
  // in-process path the region keeps earlier units' operations out.
  const support::MetricsRegion unit_metrics;
  UnitPayload payload;
  payload.unit_name = unit.name;
  payload.function = unit.function;

  std::string source = unit.source;
  if (source.empty() && !unit.source_path.empty()) {
    std::ifstream in(unit.source_path, std::ios::binary);
    if (!in) {
      payload.frontend_ok = false;
      payload.frontend_error = "cannot read " + unit.source_path;
      const support::Interner empty;
      return serialize_unit_payload(payload, empty);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  }

  try {
    analysis::FrontendOptions frontend;
    frontend.salvage = salvage;
    const analysis::ProgramAnalysis program =
        analysis::prepare(source, unit.function, frontend);

    // Cache lookup sits after the frontend (cheap) and before the fixpoint
    // (the expensive part a hit skips). The key is content-addressed over
    // the lowered CFG + options, so an edited unit misses while its
    // untouched neighbors hit.
    cache::CacheKey key;
    cache::CacheKey func_key;
    bool func_key_valid = false;
    ipa::SummaryTable summaries;
    bool inject_summaries = false;
    if (cache != nullptr) {
      key = cache::cache_key(program, engine, check, salvage);
      bool self_heal = false;
      {
        PSA_PHASE_TIMER(lookup_timer, support::Counter::kPhaseCacheLookupWallNs,
                        support::Counter::kPhaseCacheLookupCpuNs);
        cache::ResultCache::Lookup found =
            cache->lookup(key, lookup_fault_for(unit));
        if (found.status == cache::ResultCache::Lookup::Status::kHit) {
          try {
            UnitPayload cached = deserialize_unit_payload(found.bytes);
            // Re-issue under this run's identity and metrics: the report
            // fields (result, findings, salvage summary) are byte-equal to a
            // cold run; only the truthful counters (cache_hits, lookup
            // timers) differ in the metrics stream.
            cached.unit_name = unit.name;
            cached.function = unit.function;
            cached.metrics = unit_metrics.delta();
            return serialize_unit_payload(cached, *cached.interner);
          } catch (const rsg::SnapshotError& e) {
            // Envelope-valid but payload-skewed (or hostile): evict and
            // recompute — a cache entry is never allowed to fail a unit.
            cache->evict(key, e.what());
            self_heal = true;
          }
        } else if (found.status ==
                   cache::ResultCache::Lookup::Status::kEvicted) {
          self_heal = true;
        }
      }
      if (self_heal) PSA_COUNT(support::Counter::kCacheSelfHeals);

      // Unit miss: the function-granular tier (docs/CACHING.md). First
      // resolve the summaries the target's call sites demand — each one
      // loaded from its own cache entry when the callee (and its callees'
      // summary hashes) are unchanged, recomputed otherwise. The resolved
      // hashes then key the per-function result entry, whose bytes are a
      // full UnitPayload: a sibling edit that changed no callee summary
      // still serves the report from cache, and an edited function is the
      // only fixpoint that re-runs.
      if (engine.enable_summaries) {
        const std::vector<support::Symbol> roots = demand_roots(program.cfg);
        if (!roots.empty()) {
          CachedSummaries reuse(*cache, program, engine, salvage);
          PSA_PHASE_TIMER(ipa_timer, support::Counter::kPhaseIpaWallNs,
                          support::Counter::kPhaseIpaCpuNs);
          summaries = ipa::compute_summaries(program, engine, &reuse, &roots);
        }
        // Inject even when empty (no call sites): analyze_program would
        // otherwise recompute every sibling's summary the target never uses.
        inject_summaries = true;
      }
      func_key = cache::function_result_key(
          program, engine, check, salvage,
          callee_deps(program.cfg, program.interner(), summaries));
      func_key_valid = true;
      bool func_self_heal = false;
      {
        PSA_PHASE_TIMER(lookup_timer, support::Counter::kPhaseCacheLookupWallNs,
                        support::Counter::kPhaseCacheLookupCpuNs);
        cache::ResultCache::Lookup found = cache->lookup(
            func_key, cache::LookupFault::kNone, cache::EntryTier::kFunction);
        if (found.status == cache::ResultCache::Lookup::Status::kHit) {
          try {
            UnitPayload cached = deserialize_unit_payload(found.bytes);
            cached.unit_name = unit.name;
            cached.function = unit.function;
            cached.metrics = unit_metrics.delta();
            // Promote to the unit fast path: the next unedited run of this
            // unit hits the unit entry without touching the function tier.
            (void)cache->store(key, found.bytes, store_fault_for(unit));
            return serialize_unit_payload(cached, *cached.interner);
          } catch (const rsg::SnapshotError& e) {
            cache->evict(func_key, e.what());
            func_self_heal = true;
          }
        } else if (found.status ==
                   cache::ResultCache::Lookup::Status::kEvicted) {
          func_self_heal = true;
        }
      }
      if (func_self_heal) PSA_COUNT(support::Counter::kCacheSelfHeals);
    }

    analysis::Options engine_run = engine;
    if (inject_summaries) engine_run.summaries = &summaries;
    payload.result = analysis::analyze_program(program, engine_run);
    payload.exit_node = program.cfg.exit();
    payload.skipped_decls =
        static_cast<std::uint32_t>(program.salvage.skipped_decls);
    payload.havoc_sites =
        static_cast<std::uint32_t>(program.salvage.havoc_sites);
    payload.unsupported_count =
        static_cast<std::uint32_t>(program.salvage.unsupported_count);
    payload.functions_analyzable =
        static_cast<std::uint32_t>(program.salvage.functions_analyzable);
    payload.functions_total =
        static_cast<std::uint32_t>(program.salvage.functions_total);
    payload.salvage_diagnostics = program.salvage.diagnostics;
    if (check) {
      payload.checked = true;
      payload.findings = checker::run_checkers(program, payload.result);
    }
    payload.metrics = unit_metrics.delta();
    std::string bytes = serialize_unit_payload(payload, program.interner());
    if (cache != nullptr && cacheable(payload, engine)) {
      // Store failure (disk full, permissions) degrades to "no cache". The
      // same bytes land under both keys: the unit entry is the fast path,
      // the function-tier result entry survives sibling edits.
      if (func_key_valid) {
        (void)cache->store(func_key, bytes, cache::StoreFault::kNone,
                           cache::EntryTier::kFunction);
      }
      (void)cache->store(key, bytes, store_fault_for(unit));
    }
    return bytes;
  } catch (const analysis::FrontendError& e) {
    payload = UnitPayload{};
    payload.unit_name = unit.name;
    payload.function = unit.function;
    payload.frontend_ok = false;
    payload.frontend_error = e.what();
    payload.metrics = unit_metrics.delta();
    const support::Interner empty;
    return serialize_unit_payload(payload, empty);
  }
}

namespace {

void log_line(const BatchOptions& options, const std::string& line) {
  if (options.log) options.log(line);
}

/// Scratch snapshot directory when the batch has no --checkpoint: same
/// write-tmp-then-rename worker protocol, deleted when the batch ends.
class ScratchDir {
 public:
  ScratchDir() {
    static std::atomic<unsigned> counter{0};
    const unsigned n = counter.fetch_add(1);
    std::ostringstream name;
    name << "psa-batch-"
#if PSA_DRIVER_HAS_FORK
         << static_cast<long>(::getpid())
#else
         << "x"
#endif
         << "-" << n;
    path_ = (fs::temp_directory_path() / name.str()).string();
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  [[nodiscard]] std::string snapshot_path(const std::string& key) const {
    return (fs::path(path_) / (key + ".snap")).string();
  }
  [[nodiscard]] std::string snapshot_tmp_path(const std::string& key) const {
    return (fs::path(path_) / (key + ".snap.tmp")).string();
  }

 private:
  std::string path_;
};

/// Write bytes to `tmp`, fsync, rename to `final`, fsync the directory (all
/// via support::io::atomic_write — this used to claim "fsync-close" over a
/// plain std::ofstream, which never fsyncs). The rename is the completion
/// marker: a half-written snapshot never carries the .snap name.
bool write_snapshot_file(const std::string& tmp, const std::string& final_path,
                         std::string_view bytes) {
  const auto result = support::io::atomic_write(tmp, final_path, bytes);
  if (!result) {
    PSA_COUNT(support::Counter::kIoDegradations);
  }
  return result.ok;
}

std::optional<UnitPayload> load_snapshot_file(const std::string& path,
                                              std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "missing snapshot " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  try {
    return deserialize_unit_payload(bytes);
  } catch (const rsg::SnapshotError& e) {
    if (error != nullptr) *error = std::string(e.what()) + " in " + path;
    return std::nullopt;
  }
}

/// Turn a validated payload into the unit's outcome (+ report payload).
void adopt_payload(UnitReport& report, UnitPayload&& payload, int attempts) {
  if (payload.frontend_ok) {
    if (payload.degraded()) {
      report.outcome.kind = UnitOutcomeKind::kPartial;
      std::ostringstream detail;
      detail << "analyzed " << payload.functions_analyzable << " of "
             << payload.functions_total << " functions, "
             << payload.havoc_sites << " havoc sites";
      report.outcome.detail = detail.str();
    } else {
      report.outcome.kind = UnitOutcomeKind::kOk;
      report.outcome.detail.clear();
    }
    report.payload = std::move(payload);
  } else {
    report.outcome.kind = UnitOutcomeKind::kFrontendError;
    report.outcome.detail = payload.frontend_error;
    report.payload.reset();
  }
  report.outcome.attempts = attempts;
}

struct SnapshotPaths {
  std::string tmp;
  std::string final_path;
};

#if PSA_DRIVER_HAS_FORK

struct RunningWorker {
  pid_t pid = -1;
  std::size_t unit_index = 0;
  int attempt = 1;
  Clock::time_point start;
  bool term_sent = false;
  bool timed_out = false;
  Clock::time_point term_time;
};

/// The worker body after fork(). Never returns.
[[noreturn]] void run_worker(const AnalysisUnit& unit,
                             const analysis::Options& engine,
                             const UnitRunner& runner,
                             const SnapshotPaths& paths) {
#if defined(__linux__)
  // Die with the supervisor: a SIGKILLed batch must not leave hung workers
  // behind (the resume acceptance test kills the supervisor mid-run).
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  try {
    // The deliberate-fault hook is honored ONLY here, inside the sandbox.
    inject_fault(FaultPlan::from_env().for_unit(unit.name));
    const std::string bytes = runner(unit, engine);
    if (!write_snapshot_file(paths.tmp, paths.final_path, bytes)) {
      std::fprintf(stderr, "psa worker: cannot write snapshot %s\n",
                   paths.final_path.c_str());
      ::_exit(1);
    }
    ::_exit(0);
  } catch (const std::bad_alloc&) {
    ::_exit(kOomExitCode);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psa worker: uncaught exception: %s\n", e.what());
    ::_exit(kUncaughtExceptionExitCode);
  } catch (...) {
    ::_exit(kUncaughtExceptionExitCode);
  }
}

/// Classify a reaped worker. `status` is the raw waitpid status.
UnitOutcome classify_worker_death(int status, const RunningWorker& worker,
                                  const SnapshotPaths& paths,
                                  std::optional<UnitPayload>& payload_out) {
  UnitOutcome outcome;
  outcome.attempts = worker.attempt;

  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    // Clean completion wins even when the watchdog's TERM raced it: the
    // snapshot is the completion marker, and it validated or it didn't.
    std::string error;
    std::optional<UnitPayload> payload =
        load_snapshot_file(paths.final_path, &error);
    if (payload) {
      if (payload->frontend_ok) {
        outcome.kind = UnitOutcomeKind::kOk;
        payload_out = std::move(payload);
      } else {
        outcome.kind = UnitOutcomeKind::kFrontendError;
        outcome.detail = payload->frontend_error;
      }
      return outcome;
    }
    outcome.kind = UnitOutcomeKind::kExit;
    outcome.exit_code = 0;
    outcome.detail = "clean exit but " + error;
    return outcome;
  }

  if (worker.timed_out) {
    outcome.kind = UnitOutcomeKind::kTimeout;
    if (WIFSIGNALED(status)) outcome.signal = WTERMSIG(status);
    return outcome;
  }

  if (WIFEXITED(status)) {
    const int code = WEXITSTATUS(status);
    if (code == kOomExitCode) {
      outcome.kind = UnitOutcomeKind::kOom;
      outcome.exit_code = code;
      outcome.detail = "allocation failure";
    } else {
      outcome.kind = UnitOutcomeKind::kExit;
      outcome.exit_code = code;
      if (code == kUncaughtExceptionExitCode) {
        outcome.detail = "uncaught exception";
      }
    }
    return outcome;
  }

  if (WIFSIGNALED(status)) {
    outcome.kind = UnitOutcomeKind::kCrash;
    outcome.signal = WTERMSIG(status);
    return outcome;
  }

  outcome.kind = UnitOutcomeKind::kExit;
  outcome.detail = "unrecognized wait status";
  return outcome;
}

#endif  // PSA_DRIVER_HAS_FORK

/// Shared batch bookkeeping: one pending attempt of one unit.
struct PendingAttempt {
  std::size_t unit_index = 0;
  int attempt = 1;
  analysis::Options engine;
};

}  // namespace

BatchResult run_batch(const std::vector<AnalysisUnit>& units,
                      const BatchOptions& options, const UnitRunner& runner) {
  // Create the fork-shared io op counter before anything forks, so the
  // supervisor and its workers number durable ops in one stream (the fault
  // campaign's determinism rests on this).
  support::io::ensure_initialized();

  BatchResult result;

  // Open + recover the result cache before anything runs: stray tmp files
  // from a killed writer are swept and corrupt entries quarantined exactly
  // once, so every worker that follows sees a verified directory. An
  // unusable cache dir is a sound degradation, not a batch killer: the run
  // proceeds uncached (correct, just slower) with the failure counted and
  // noted. The shared_ptr keeps the cache alive inside the runner closure
  // (and across fork, where each worker gets its copy).
  std::shared_ptr<cache::ResultCache> cache;
  if (!options.cache_dir.empty()) {
    try {
      cache = std::make_shared<cache::ResultCache>(options.cache_dir);
      const cache::ResultCache::RecoveryReport recovered = cache->recover();
      std::ostringstream line;
      line << "cache " << cache->dir() << ": " << recovered.entries_kept
           << " entries";
      if (!recovered.clean()) {
        line << ", swept " << recovered.tmp_removed << " tmp, quarantined "
             << recovered.quarantined;
      }
      log_line(options, line.str());
    } catch (const std::exception& e) {
      PSA_COUNT(support::Counter::kIoDegradations);
      ++result.io_degradations;
      log_line(options,
               std::string("cache unavailable, running uncached: ") + e.what());
      cache.reset();
    }
  }

  const UnitRunner effective_runner =
      runner ? runner
             : UnitRunner([&options, cache](const AnalysisUnit& unit,
                                            const analysis::Options& engine) {
                 return run_unit_serialized(unit, engine, options.check,
                                            !options.strict_frontend,
                                            cache.get());
               });

  result.units.resize(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    result.units[i].unit = units[i];
  }

  // Streaming hook dispatch: exactly once per unit, at the moment its
  // outcome is final and recorded in `result`.
  const auto notify_done = [&](std::size_t i) {
    if (options.on_unit_done) options.on_unit_done(i, result.units[i]);
  };
  const auto tick = [&] {
    if (options.on_tick) options.on_tick();
  };

  std::unique_ptr<Checkpoint> checkpoint;
  std::unique_ptr<ScratchDir> scratch;
  if (!options.checkpoint_dir.empty()) {
    checkpoint =
        std::make_unique<Checkpoint>(options.checkpoint_dir, options.resume);
    for (const std::string& note : checkpoint->recovery_notes()) {
      log_line(options, note);
    }
  } else {
    scratch = std::make_unique<ScratchDir>();
  }

  std::vector<std::string> keys(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) keys[i] = unit_key(units[i]);

  const auto paths_for = [&](std::size_t i) {
    SnapshotPaths p;
    if (checkpoint) {
      p.tmp = checkpoint->snapshot_tmp_path(keys[i]);
      p.final_path = checkpoint->snapshot_path(keys[i]);
    } else {
      p.tmp = scratch->snapshot_tmp_path(keys[i]);
      p.final_path = scratch->snapshot_path(keys[i]);
    }
    return p;
  };

  // Journal writes are checked: a record that does not land durably is a
  // sound degradation — the unit merely re-runs on a later --resume — so it
  // is counted and noted, never fatal and never silently dropped.
  const auto journal_attempt = [&](std::size_t i, int attempt) {
    if (!checkpoint) return;
    if (!checkpoint->record_attempt(keys[i], attempt)) {
      ++result.io_degradations;
      log_line(options, "checkpoint degraded: attempt record for " +
                            units[i].name + " not durable");
    }
  };
  const auto journal_outcome = [&](std::size_t i, const UnitOutcome& outcome) {
    if (!checkpoint) return;
    if (!checkpoint->record_outcome(keys[i], outcome)) {
      ++result.io_degradations;
      log_line(options, "checkpoint degraded: outcome record for " +
                            units[i].name + " not durable");
    }
  };

  // Resume: serve finished units from disk, replay quarantined failures,
  // queue everything else.
  std::deque<PendingAttempt> pending;
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (checkpoint && options.resume) {
      const UnitOutcome* replayed = checkpoint->replayed_outcome(keys[i]);
      if (replayed != nullptr &&
          (replayed->kind == UnitOutcomeKind::kOk ||
           replayed->kind == UnitOutcomeKind::kPartial)) {
        std::string error;
        std::optional<UnitPayload> payload =
            checkpoint->load_payload(keys[i], &error);
        if (payload) {
          adopt_payload(result.units[i], std::move(*payload),
                        replayed->attempts);
          result.units[i].outcome.from_checkpoint = true;
          log_line(options, "skip " + units[i].name + " (checkpointed)");
          notify_done(i);
          continue;
        }
        log_line(options,
                 "re-run " + units[i].name + " (checkpoint invalid: " + error +
                     ")");
      } else if (replayed != nullptr && replayed->quarantined) {
        result.units[i].outcome = *replayed;
        result.units[i].outcome.from_checkpoint = true;
        log_line(options, "skip " + units[i].name + " (quarantined: " +
                              describe(*replayed) + ")");
        notify_done(i);
        continue;
      }
    }
    pending.push_back(PendingAttempt{i, 1, options.engine});
  }

  const bool isolate =
      options.isolate && isolation_supported() && PSA_DRIVER_HAS_FORK != 0;
  if (options.isolate && !isolate) {
    log_line(options,
             "isolation unsupported on this platform; running in-process");
  }
  result.isolated = isolate;

  const int max_attempts = std::max(1, options.max_attempts);

  // Decide what to do with a classified failure: retry once at a stepped-down
  // budget, or quarantine.
  const auto settle = [&](std::size_t i, int attempt,
                          const analysis::Options& engine,
                          UnitOutcome outcome) {
    if (retryable(outcome.kind) && attempt < max_attempts) {
      log_line(options, "retry " + units[i].name + " (" + describe(outcome) +
                            "), stepped-down budget");
      journal_outcome(i, outcome);
      pending.push_back(PendingAttempt{i, attempt + 1, stepped_down(engine)});
      return;
    }
    if (outcome.failed() && retryable(outcome.kind)) {
      outcome.quarantined = true;
    }
    result.units[i].outcome = outcome;
    journal_outcome(i, outcome);
    log_line(options, "done " + units[i].name + ": " + describe(outcome));
    notify_done(i);
  };

  if (isolate) {
#if PSA_DRIVER_HAS_FORK
    const std::size_t jobs = std::max<std::size_t>(1, options.jobs);
    std::vector<RunningWorker> running;

    const auto spawn_next = [&]() {
      const PendingAttempt next = pending.front();
      pending.pop_front();
      const AnalysisUnit& unit = units[next.unit_index];
      const SnapshotPaths paths = paths_for(next.unit_index);
      journal_attempt(next.unit_index, next.attempt);
      log_line(options, (next.attempt > 1 ? "start (retry) " : "start ") +
                            unit.name);
      std::error_code ec;
      fs::remove(paths.final_path, ec);  // stale result must not count
      const pid_t pid = ::fork();
      if (pid == 0) {
        run_worker(unit, next.engine, effective_runner, paths);
      }
      if (pid < 0) {
        // fork failure is a batch-level resource problem; treat the unit as
        // an exit failure and keep going.
        UnitOutcome outcome;
        outcome.kind = UnitOutcomeKind::kExit;
        outcome.attempts = next.attempt;
        outcome.detail = "fork failed";
        settle(next.unit_index, next.attempt, next.engine, outcome);
        return;
      }
      RunningWorker worker;
      worker.pid = pid;
      worker.unit_index = next.unit_index;
      worker.attempt = next.attempt;
      worker.start = Clock::now();
      running.push_back(worker);
    };

    // Engine options of the in-flight attempt, so retries step down from
    // what actually ran.
    const auto engine_for = [&](const RunningWorker& w) {
      return w.attempt == 1 ? options.engine
                            : [&] {
                                analysis::Options e = options.engine;
                                for (int a = 1; a < w.attempt; ++a) {
                                  e = stepped_down(e);
                                }
                                return e;
                              }();
    };

    while (!pending.empty() || !running.empty()) {
      tick();
      while (!pending.empty() && running.size() < jobs) spawn_next();

      bool reaped = false;
      for (std::size_t w = 0; w < running.size();) {
        RunningWorker& worker = running[w];
        int status = 0;
        const pid_t r = ::waitpid(worker.pid, &status, WNOHANG);
        if (r == worker.pid) {
          std::optional<UnitPayload> payload;
          UnitOutcome outcome = classify_worker_death(
              status, worker, paths_for(worker.unit_index), payload);
          if (outcome.kind == UnitOutcomeKind::kOk && payload) {
            UnitReport& report = result.units[worker.unit_index];
            adopt_payload(report, std::move(*payload), worker.attempt);
            journal_outcome(worker.unit_index, report.outcome);
            log_line(options, "done " + units[worker.unit_index].name + ": " +
                                  describe(report.outcome));
            notify_done(worker.unit_index);
          } else {
            settle(worker.unit_index, worker.attempt, engine_for(worker),
                   outcome);
          }
          running.erase(running.begin() + static_cast<std::ptrdiff_t>(w));
          reaped = true;
          continue;
        }
        if (r < 0) {
          // Lost track of the child (should not happen); classify as exit.
          UnitOutcome outcome;
          outcome.kind = UnitOutcomeKind::kExit;
          outcome.attempts = worker.attempt;
          outcome.detail = "waitpid failed";
          settle(worker.unit_index, worker.attempt, engine_for(worker),
                 outcome);
          running.erase(running.begin() + static_cast<std::ptrdiff_t>(w));
          reaped = true;
          continue;
        }

        // Still running: watchdog.
        if (options.unit_timeout_ms > 0) {
          const auto elapsed =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  Clock::now() - worker.start)
                  .count();
          if (!worker.term_sent &&
              elapsed >=
                  static_cast<std::int64_t>(options.unit_timeout_ms)) {
            worker.term_sent = true;
            worker.timed_out = true;
            worker.term_time = Clock::now();
            ::kill(worker.pid, SIGTERM);
            log_line(options, "timeout " + units[worker.unit_index].name +
                                  " (SIGTERM)");
          } else if (worker.term_sent) {
            const auto grace =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    Clock::now() - worker.term_time)
                    .count();
            if (grace >= static_cast<std::int64_t>(options.term_grace_ms)) {
              ::kill(worker.pid, SIGKILL);
            }
          }
        }
        ++w;
      }

      if (!reaped) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
#endif  // PSA_DRIVER_HAS_FORK
  } else {
    // In-process fallback: same outcome taxonomy and checkpoint protocol,
    // but exceptions are the only failures it can contain — a hard crash or
    // hang takes the batch with it (which is why isolation is the default).
    // No fault injection here: the hook is worker-only by contract.
    while (!pending.empty()) {
      tick();
      const PendingAttempt next = pending.front();
      pending.pop_front();
      const AnalysisUnit& unit = units[next.unit_index];
      const SnapshotPaths paths = paths_for(next.unit_index);
      journal_attempt(next.unit_index, next.attempt);
      log_line(options, (next.attempt > 1 ? "start (retry) " : "start ") +
                            unit.name);
      UnitOutcome outcome;
      outcome.attempts = next.attempt;
      try {
        const std::string bytes = effective_runner(unit, next.engine);
        if (!write_snapshot_file(paths.tmp, paths.final_path, bytes)) {
          // The in-memory payload is adopted regardless; only a later
          // --resume pays (it re-runs this unit). Sound, counted, noted.
          ++result.io_degradations;
          log_line(options,
                   "snapshot degraded: " + unit.name + " not durable");
        }
        UnitPayload payload = deserialize_unit_payload(bytes);
        UnitReport& report = result.units[next.unit_index];
        adopt_payload(report, std::move(payload), next.attempt);
        journal_outcome(next.unit_index, report.outcome);
        log_line(options,
                 "done " + unit.name + ": " + describe(report.outcome));
        notify_done(next.unit_index);
        continue;
      } catch (const std::bad_alloc&) {
        outcome.kind = UnitOutcomeKind::kOom;
        outcome.detail = "allocation failure";
      } catch (const rsg::SnapshotError& e) {
        outcome.kind = UnitOutcomeKind::kExit;
        outcome.detail = e.what();
      } catch (const std::exception& e) {
        outcome.kind = UnitOutcomeKind::kExit;
        outcome.detail = e.what();
      }
      settle(next.unit_index, next.attempt, next.engine, outcome);
    }
  }

  // Bound the cache once the batch is done: every result this run produced
  // is already stored, so the sweep sees the directory at its peak. A busy
  // sweep lock means a concurrent batch/daemon is already bounding it.
  if (cache && (options.cache_max_bytes > 0 || options.cache_max_age_ms > 0)) {
    cache::ResultCache::SweepLimits limits;
    limits.max_bytes = options.cache_max_bytes;
    limits.max_age_ms = options.cache_max_age_ms;
    const cache::ResultCache::SweepReport swept = cache->sweep(limits);
    std::ostringstream line;
    if (swept.ran) {
      line << "cache sweep: " << swept.evicted << " evicted, "
           << swept.quarantined << " quarantined, " << swept.bytes_after
           << " bytes kept";
    } else {
      line << "cache sweep: skipped (another sweeper holds the lock)";
    }
    log_line(options, line.str());
  }

  return result;
}

int batch_exit_code(const BatchResult& result) {
  const std::size_t failed = result.failed_count();
  if (!result.units.empty() && failed == result.units.size()) {
    return kExitAllUnitsFailed;
  }
  if (failed > 0) return kExitSomeUnitsFailed;
  if (result.finding_count() > 0) return kExitFindings;
  return kExitOk;
}

std::string format_batch_report(const BatchResult& result) {
  std::ostringstream out;
  out << "batch: " << result.units.size() << " units, " << result.ok_count()
      << " ok, " << result.failed_count() << " failed";
  if (result.partial_count() > 0) {
    out << " (" << result.partial_count() << " partial)";
  }
  if (result.quarantined_count() > 0) {
    out << " (" << result.quarantined_count() << " quarantined)";
  }
  if (result.from_checkpoint_count() > 0) {
    out << ", " << result.from_checkpoint_count() << " from checkpoint";
  }
  out << ", mode " << (result.isolated ? "isolated" : "in-process") << '\n';

  for (const UnitReport& u : result.units) {
    out << "  " << u.unit.name << ": " << describe(u.outcome);
    if (u.outcome.attempts > 1) out << ", attempts " << u.outcome.attempts;
    if (u.outcome.quarantined) out << ", quarantined";
    if (u.outcome.from_checkpoint) out << ", from checkpoint";
    if (u.payload) {
      out << " — " << to_string(u.payload->result.status) << ", "
          << u.payload->exit_graphs() << " graphs / "
          << u.payload->exit_nodes() << " nodes at exit";
      if (u.payload->checked) {
        out << ", " << u.payload->findings.size() << " findings";
      }
      if (u.outcome.kind == UnitOutcomeKind::kPartial &&
          !u.outcome.detail.empty()) {
        out << " [" << u.outcome.detail << "]";
      }
    } else if (!u.outcome.detail.empty()) {
      std::string detail = u.outcome.detail;
      std::replace(detail.begin(), detail.end(), '\n', ' ');
      if (detail.size() > 120) {
        detail.resize(117);
        detail += "...";
      }
      out << " — " << detail;
    }
    out << '\n';
  }

  std::size_t errors = 0, warnings = 0, notes = 0, degraded = 0;
  for (const UnitReport& u : result.units) {
    if (!u.payload) continue;
    for (const checker::Finding& f : u.payload->findings) {
      switch (f.severity) {
        case checker::CheckSeverity::kError: ++errors; break;
        case checker::CheckSeverity::kWarning: ++warnings; break;
        case checker::CheckSeverity::kNote: ++notes; break;
      }
      if (f.degraded) ++degraded;
    }
  }
  out << "findings: " << result.finding_count() << " (" << errors
      << " errors, " << warnings << " warnings, " << notes << " notes)";
  if (degraded > 0) {
    out << ", " << degraded << " possible (degraded frontend)";
  }
  out << '\n';
  if (result.io_degradations > 0) {
    // The degradation note of the durable-I/O contract: results are intact,
    // but N journal/snapshot/cache writes did not land durably (details in
    // the batch log). Deterministic for a deterministic fault plan; absent
    // entirely on a healthy run, so golden reports are unchanged.
    out << "io degradations: " << result.io_degradations
        << " (results intact; resume may re-run units)\n";
  }
  return out.str();
}

std::vector<checker::ArtifactFindings> batch_findings(
    const BatchResult& result) {
  std::vector<checker::ArtifactFindings> groups;
  for (const UnitReport& u : result.units) {
    if (!u.payload || u.payload->findings.empty()) continue;
    checker::ArtifactFindings group;
    group.artifact_uri = u.unit.display_uri();
    group.findings = u.payload->findings;
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<AnalysisUnit> corpus_units() {
  std::vector<AnalysisUnit> units;
  for (const corpus::UnitSource& s : corpus::unit_sources()) {
    AnalysisUnit unit;
    unit.name = std::string(s.name);
    unit.source = std::string(s.source);
    units.push_back(std::move(unit));
  }
  return units;
}

std::vector<AnalysisUnit> corpus_dirty_units() {
  std::vector<AnalysisUnit> units;
  for (const corpus::UnitSource& s : corpus::dirty_unit_sources()) {
    AnalysisUnit unit;
    unit.name = std::string(s.name);
    unit.source = std::string(s.source);
    units.push_back(std::move(unit));
  }
  return units;
}

}  // namespace psa::driver
