// Batch analysis units and the outcome taxonomy of the crash-isolated
// supervisor (see docs/RESILIENCE.md).
//
// One unit = one (source × function) analysis. The supervisor runs each unit
// in a sandboxed worker process (or in-process when isolation is off),
// classifies how the worker ended, and the batch always completes with a
// structured UnitOutcome per unit — a pathological input or an analyzer
// defect can cost at most its own unit, never the batch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace psa::driver {

/// One analysis unit: a source buffer (inline or on disk) and the function
/// to analyze. `name` is the stable identity used for checkpoint keys,
/// fault-injection matching and logs.
struct AnalysisUnit {
  std::string name;
  std::string function = "main";
  /// Inline source text; when empty the worker reads `source_path`.
  std::string source;
  /// On-disk source (also the artifact URI in merged SARIF logs).
  std::string source_path;

  /// URI to attribute findings to (SARIF artifactLocation.uri).
  [[nodiscard]] std::string display_uri() const {
    return source_path.empty() ? name : source_path;
  }
};

/// How a unit ended. The supervisor classifies every worker death; the
/// in-process fallback maps its failure modes onto the same taxonomy.
enum class UnitOutcomeKind : std::uint8_t {
  /// Worker completed and its result snapshot validated.
  kOk = 0,
  /// The frontend rejected the source — deterministic, never retried.
  kFrontendError = 1,
  /// Worker exited with an unexpected nonzero code (includes a top-level
  /// uncaught exception, and a clean exit whose snapshot failed to
  /// validate).
  kExit = 2,
  /// Worker was killed by a signal it raised itself (SIGSEGV, SIGABRT, ...).
  kCrash = 3,
  /// The watchdog killed the worker after the per-unit wall-clock budget
  /// (SIGTERM, then SIGKILL after the grace period).
  kTimeout = 4,
  /// The worker ran out of memory (allocation failure reported via the
  /// dedicated exit code, see kOomExitCode).
  kOom = 5,
  /// Worker completed in salvage mode with a degraded frontend: some
  /// declarations were stubbed out and/or unsupported constructs were
  /// lowered to havoc. The result snapshot validated and findings are
  /// usable, but confidence-tainted (see docs/RESILIENCE.md).
  kPartial = 6,
};

/// Worker exit-code protocol (anything else nonzero classifies as kExit).
inline constexpr int kOomExitCode = 77;
inline constexpr int kUncaughtExceptionExitCode = 78;

[[nodiscard]] constexpr std::string_view to_string(UnitOutcomeKind kind) {
  switch (kind) {
    case UnitOutcomeKind::kOk: return "ok";
    case UnitOutcomeKind::kFrontendError: return "frontend-error";
    case UnitOutcomeKind::kExit: return "exit";
    case UnitOutcomeKind::kCrash: return "crash";
    case UnitOutcomeKind::kTimeout: return "timeout";
    case UnitOutcomeKind::kOom: return "oom";
    case UnitOutcomeKind::kPartial: return "partial";
  }
  return "?";
}

/// Inverse of to_string (for journal replay); false when unknown.
[[nodiscard]] constexpr bool parse_outcome_kind(std::string_view s,
                                                UnitOutcomeKind& out) {
  for (const auto kind :
       {UnitOutcomeKind::kOk, UnitOutcomeKind::kFrontendError,
        UnitOutcomeKind::kExit, UnitOutcomeKind::kCrash,
        UnitOutcomeKind::kTimeout, UnitOutcomeKind::kOom,
        UnitOutcomeKind::kPartial}) {
    if (s == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

/// A failed unit (for retry, quarantine and batch exit codes). Frontend
/// rejections count as failures of the *input*, not of the worker: they are
/// deterministic, so they are never retried or quarantined. Partial units
/// succeeded — degraded, but with a validated result.
[[nodiscard]] constexpr bool unit_failed(UnitOutcomeKind kind) {
  return kind != UnitOutcomeKind::kOk && kind != UnitOutcomeKind::kPartial;
}

/// A worker-death failure eligible for the retry-then-quarantine policy.
[[nodiscard]] constexpr bool retryable(UnitOutcomeKind kind) {
  return kind == UnitOutcomeKind::kExit || kind == UnitOutcomeKind::kCrash ||
         kind == UnitOutcomeKind::kTimeout || kind == UnitOutcomeKind::kOom;
}

struct UnitOutcome {
  UnitOutcomeKind kind = UnitOutcomeKind::kOk;
  /// Worker exit code (kExit) or killing signal (kCrash/kTimeout).
  int exit_code = 0;
  int signal = 0;
  /// Attempts consumed (retries included).
  int attempts = 1;
  /// Failed max_attempts times; resume skips it and replays this outcome.
  bool quarantined = false;
  /// Replayed from the checkpoint journal instead of being re-run.
  bool from_checkpoint = false;
  /// Frontend diagnostics, exception message, or classification note.
  std::string detail;

  [[nodiscard]] bool failed() const { return unit_failed(kind); }
};

/// Deterministic one-line rendering, e.g. "crash (signal 6)".
[[nodiscard]] std::string describe(const UnitOutcome& outcome);

}  // namespace psa::driver
