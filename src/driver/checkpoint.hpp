// The on-disk checkpoint of a batch run: an append-only journal of unit
// attempts/outcomes plus one snapshot file per completed unit.
//
// Directory layout (--checkpoint=DIR):
//   journal.psaj          append-only text journal (see below)
//   <unit-key>.snap       UnitPayload snapshot (envelope-checksummed bytes)
//   <unit-key>.snap.tmp   in-flight write; renamed to .snap on completion,
//                         so the bare presence of .snap marks a finished
//                         write (the checksum still guards its content)
//
// Journal format — line oriented, tolerant to a torn final line (a SIGKILLed
// supervisor can lose at most the line being written):
//   psa-journal v1
//   attempt <key> <n>
//   outcome <key> <kind> <exit> <signal> <attempts> <quarantined> <detail>
// `detail` is the remainder of the line with newlines escaped as "\n".
// The LAST outcome line per key wins on replay.
//
// Resume semantics (--resume): a unit whose replayed outcome is `ok` AND
// whose snapshot validates is skipped and its payload served from disk; a
// quarantined unit is skipped and its failure outcome replayed (it already
// failed twice — rerunning it would hang the resumed batch on the same
// defect); anything else — including a torn journal or a corrupt snapshot —
// is re-run from scratch. Without --resume an existing checkpoint directory
// is cleared first.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "driver/payload.hpp"
#include "driver/unit.hpp"

namespace psa::driver {

/// Filesystem-safe stable key for a unit: sanitized name plus a hash of
/// (name, function) so distinct units never collide.
[[nodiscard]] std::string unit_key(const AnalysisUnit& unit);

class Checkpoint {
 public:
  /// Open (and create) `dir`. With `resume` the existing journal is replayed
  /// into memory; otherwise the directory is cleared. Throws
  /// std::runtime_error only when the directory itself cannot be created; a
  /// journal that cannot be written is a degradation (noted in
  /// recovery_notes(), every later record_* returns false) — the batch runs
  /// to completion, it just is not resumable from this journal.
  Checkpoint(std::string dir, bool resume);

  /// Journal writes, durable (O_APPEND + fsync via support/io). False means
  /// the record is not known durable: the caller counts the degradation and
  /// carries on — on a later --resume the unit re-runs, which is sound.
  [[nodiscard]] bool record_attempt(const std::string& key, int attempt);
  [[nodiscard]] bool record_outcome(const std::string& key,
                                    const UnitOutcome& outcome);

  /// Replayed terminal outcome of `key` from a previous run, if any.
  [[nodiscard]] const UnitOutcome* replayed_outcome(
      const std::string& key) const;

  /// Snapshot paths for the worker protocol (write .tmp, rename to .snap).
  [[nodiscard]] std::string snapshot_path(const std::string& key) const;
  [[nodiscard]] std::string snapshot_tmp_path(const std::string& key) const;

  /// Load + validate the snapshot of `key`. Returns nullopt (with the
  /// diagnostic in `error`) when missing or corrupt — the caller re-runs the
  /// unit; corruption never aborts a batch.
  [[nodiscard]] std::optional<UnitPayload> load_payload(
      const std::string& key, std::string* error) const;

  /// Diagnostics produced while opening the directory: on --resume, a stray
  /// .snap.tmp left by a worker killed mid-write is deleted (its rename
  /// never happened, so it was never a result) and noted here. The
  /// supervisor forwards these to the batch log.
  [[nodiscard]] const std::vector<std::string>& recovery_notes()
      const noexcept {
    return recovery_notes_;
  }

 private:
  /// One durable journal append (adds the newline). Counts the degradation
  /// on failure and reports it; never throws.
  [[nodiscard]] bool append_record(const std::string& line);

  std::string dir_;
  std::string journal_path_;
  std::map<std::string, UnitOutcome> replayed_;
  std::vector<std::string> recovery_notes_;
};

}  // namespace psa::driver
