#include "driver/incremental.hpp"

#include <algorithm>
#include <set>

#include "ipa/summary_io.hpp"
#include "rsg/serialize.hpp"
#include "support/metrics.hpp"

namespace psa::driver {

std::vector<support::Symbol> demand_roots(const cfg::Cfg& cfg) {
  std::vector<support::Symbol> roots;
  std::set<support::Symbol> seen;
  for (const cfg::CfgNode& node : cfg.nodes()) {
    if (node.stmt.op != cfg::SimpleOp::kCall) continue;
    if (node.stmt.callee.valid() && seen.insert(node.stmt.callee).second) {
      roots.push_back(node.stmt.callee);
    }
  }
  return roots;
}

std::vector<cache::CalleeDep> callee_deps(const cfg::Cfg& cfg,
                                          const support::Interner& interner,
                                          const ipa::SummaryTable& table) {
  std::vector<cache::CalleeDep> deps;
  for (const support::Symbol callee : demand_roots(cfg)) {
    cache::CalleeDep dep;
    dep.name = interner.spelling(callee);
    const auto it = table.find(callee);
    if (it != table.end()) {
      dep.has_summary = true;
      dep.summary_hash = ipa::summary_hash(it->second, interner);
    }
    deps.push_back(std::move(dep));
  }
  std::sort(deps.begin(), deps.end(),
            [](const cache::CalleeDep& a, const cache::CalleeDep& b) {
              return a.name < b.name;
            });
  return deps;
}

std::optional<ipa::FunctionSummary> CachedSummaries::lookup(
    const analysis::FunctionCfg& fn, const ipa::SummaryTable& table) {
  const support::Interner& interner = program_.interner();
  const cache::CacheKey key = cache::function_summary_key(
      program_, fn, options_, salvage_, callee_deps(fn.cfg, interner, table));
  bool self_heal = false;
  cache::ResultCache::Lookup found =
      cache_.lookup(key, cache::LookupFault::kNone, cache::EntryTier::kFunction);
  if (found.status == cache::ResultCache::Lookup::Status::kHit) {
    try {
      ipa::FunctionSummary summary =
          ipa::deserialize_summary(found.bytes, interner);
      if (summary.function == fn.name) {
        PSA_COUNT(support::Counter::kSummaryReuse);
        return summary;
      }
      // Envelope-valid bytes for a different function: a key collision or
      // hostile entry. Evict and recompute, like any payload skew.
      cache_.evict(key, "summary entry names a different function");
      self_heal = true;
    } catch (const rsg::SnapshotError& e) {
      cache_.evict(key, e.what());
      self_heal = true;
    }
  } else if (found.status == cache::ResultCache::Lookup::Status::kEvicted) {
    self_heal = true;
  }
  if (self_heal) PSA_COUNT(support::Counter::kCacheSelfHeals);
  return std::nullopt;
}

void CachedSummaries::store(const analysis::FunctionCfg& fn,
                            const ipa::SummaryTable& table,
                            const ipa::FunctionSummary& summary) {
  const support::Interner& interner = program_.interner();
  const cache::CacheKey key = cache::function_summary_key(
      program_, fn, options_, salvage_, callee_deps(fn.cfg, interner, table));
  // Summary runs are deterministic by construction (visit-budgeted, no
  // wall-clock deadline — see summarize.cpp), so even an `analyzed == false`
  // summary is worth caching: the next run would only recompute the same
  // degradation. Store failure degrades to "no cache".
  (void)cache_.store(key, ipa::serialize_summary(summary, interner),
                     cache::StoreFault::kNone, cache::EntryTier::kFunction);
}

}  // namespace psa::driver
