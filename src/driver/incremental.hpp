// The function-granular incremental tier of the result cache
// (docs/CACHING.md).
//
// The unit-level cache entry (cache/key.hpp) folds every sibling CFG into
// its key, so any edit anywhere in a unit invalidates the whole unit. This
// module is the finer tier consulted on a unit miss: it reuses the two kinds
// of per-function work a unit analysis performs —
//
//   * summary entries: one per non-recursive function the target's call
//     sites (transitively) demand, keyed on the function's own CFG and its
//     direct callees' summary content hashes. Loaded summaries skip that
//     function's summary fixpoint entirely (counter: summary_reuse).
//   * the result entry: the full UnitPayload bytes keyed on the target's
//     own CFG plus its direct callees' summary hashes — the unit key with
//     the sibling-CFG clause replaced by summary identities.
//
// The IPA bottom-up pass is the invalidation oracle: summaries resolve
// callee-first, so by the time a function is probed, its callees' summary
// hashes are known. An edited leaf whose recomputed summary hashes the same
// leaves every caller's key unchanged — the cascade stops at the leaf, and a
// one-line edit re-runs exactly one fixpoint.
//
// Counting: probes here go to func_cache_hits / func_cache_misses /
// func_cache_stores (never the unit-level cache_* counters); a summary
// loaded instead of computed counts summary_reuse; corrupt entries are
// evicted-and-recomputed like unit entries and count cache_self_heals.
#pragma once

#include <optional>
#include <vector>

#include "analysis/analyzer.hpp"
#include "cache/cache.hpp"
#include "cache/key.hpp"
#include "ipa/summarize.hpp"

namespace psa::driver {

/// Names of `cfg`'s direct callees (deduplicated, first-seen order): the
/// demand roots of the incremental summary pass. Functions not transitively
/// reachable from these can never have their summary consulted while
/// analyzing `cfg`, so they are neither probed nor computed.
[[nodiscard]] std::vector<support::Symbol> demand_roots(const cfg::Cfg& cfg);

/// `cfg`'s direct callees as function-tier key deps: deduplicated, sorted by
/// spelling, each resolved against `table` (absent or unanalyzed entries
/// still carry their identity — an extern gaining a summary must change the
/// key).
[[nodiscard]] std::vector<cache::CalleeDep> callee_deps(
    const cfg::Cfg& cfg, const support::Interner& interner,
    const ipa::SummaryTable& table);

/// ipa::SummaryReuse backed by the result cache's function tier: lookup
/// probes the summary entry for (function CFG, callee summary hashes) and
/// store writes it back after a computation. All failure modes degrade to
/// "recompute": corrupt entries are quarantined via the cache's own
/// validation, entries naming symbols this unit does not intern are evicted
/// as payload skew.
class CachedSummaries final : public ipa::SummaryReuse {
 public:
  CachedSummaries(cache::ResultCache& cache,
                  const analysis::ProgramAnalysis& program,
                  const analysis::Options& options, bool salvage)
      : cache_(cache), program_(program), options_(options),
        salvage_(salvage) {}

  [[nodiscard]] std::optional<ipa::FunctionSummary> lookup(
      const analysis::FunctionCfg& fn, const ipa::SummaryTable& table) override;
  void store(const analysis::FunctionCfg& fn, const ipa::SummaryTable& table,
             const ipa::FunctionSummary& summary) override;

 private:
  cache::ResultCache& cache_;
  const analysis::ProgramAnalysis& program_;
  analysis::Options options_;
  bool salvage_;
};

}  // namespace psa::driver
