// Node properties of a Reference Shape Graph (§3 of the paper).
//
// A node summarizes one or more memory locations that share all of these
// properties; the properties bound the number of distinct nodes and hence
// the size of every RSG.
//
// Stored properties (updated by the abstract semantics and MERGE_NODES):
//   TYPE        struct type of the represented locations
//   SHARED      some location is referenced more than once from the heap
//   SHSEL(sel)  some location is referenced more than once via `sel`
//   SELINset / SELOUTset          definite reference patterns
//   PosSELINset / PosSELOUTset    possible reference patterns
//   CYCLELINKS  pairs <sel_i, sel_j>: every location's sel_i successor
//               points back to it via sel_j
//   TOUCH       induction pvars that visited the locations (L3 only)
//   cardinality `one` = exactly one location per concrete configuration,
//               `many` = one or more. (Reconstructed from reference [2]:
//               strong updates and materialization decisions need it.)
//   FREE        deallocation state (engineering addition for the memory-
//               safety checkers, see docs/CHECKERS.md): kLive, kFreed
//               (every represented location was passed to free()), or
//               kMaybeFreed (a forced merge mixed freed and live locations).
//               Freed and live nodes are never summarized together by the
//               compatibility checks; only the governor's forced merges can
//               produce kMaybeFreed.
//   ALLOCSITES  source lines of the malloc statements that created the
//               represented locations (union under every merge; ignored by
//               the compatibility checks so summarization is unaffected).
//   HAVOC       taint (engineering addition for the salvage-mode frontend,
//               see docs/RESILIENCE.md): the node's properties were widened
//               by a kHavoc transfer — an unsupported construct may have
//               rewritten the represented locations. OR-combined under every
//               merge; like ALLOCSITES it is ignored by the compatibility
//               checks, so summarization and precision are unaffected. The
//               checker downgrades findings whose witness touches tainted
//               state from "definite" to "possible (degraded frontend)".
//
// Derived properties (computed from the graph, never stored):
//   STRUCTURE   connected-component identity
//   SPATH       simple paths of length <= 1 from pvars
#pragma once

#include <compare>
#include <cstdint>

#include "lang/types.hpp"
#include "support/hash.hpp"
#include "support/interner.hpp"
#include "support/small_set.hpp"

namespace psa::rsg {

using lang::StructId;
using support::SmallSet;
using support::Symbol;

/// A cycle-link pair <out, back>: following `out` and then `back` from any
/// location of the node returns to that location.
struct SelPair {
  Symbol out;
  Symbol back;

  friend constexpr bool operator==(SelPair, SelPair) noexcept = default;
  friend constexpr auto operator<=>(SelPair, SelPair) noexcept = default;
};

/// A one-length simple path <pvar, sel>: pvar points to a node that links to
/// this node via sel.
struct SimplePath {
  Symbol pvar;
  Symbol sel;

  friend constexpr bool operator==(SimplePath, SimplePath) noexcept = default;
  friend constexpr auto operator<=>(SimplePath, SimplePath) noexcept = default;
};

enum class Cardinality : std::uint8_t { kOne, kMany };

/// Deallocation state of the represented locations.
enum class FreeState : std::uint8_t {
  kLive = 0,        // no represented location was freed
  kFreed = 1,       // every represented location was freed
  kMaybeFreed = 2,  // freed and live locations were (forcibly) merged
};

/// The sound combine when locations with different states are merged: equal
/// states survive, mixtures widen to kMaybeFreed.
[[nodiscard]] constexpr FreeState merge_free_states(FreeState a,
                                                    FreeState b) noexcept {
  return a == b ? a : FreeState::kMaybeFreed;
}

/// Any represented location may already have been freed — a dereference is
/// then a (possible) use-after-free, a re-free a (possible) double free.
[[nodiscard]] constexpr bool may_be_freed(FreeState s) noexcept {
  return s != FreeState::kLive;
}

struct NodeProps {
  StructId type{};
  Cardinality cardinality = Cardinality::kOne;
  bool shared = false;
  SmallSet<Symbol> shsel;        // selectors with SHSEL = true
  SmallSet<Symbol> selin;        // definite incoming reference pattern
  SmallSet<Symbol> selout;       // definite outgoing reference pattern
  SmallSet<Symbol> pos_selin;    // possible incoming (disjoint from selin)
  SmallSet<Symbol> pos_selout;   // possible outgoing (disjoint from selout)
  SmallSet<SelPair> cyclelinks;
  SmallSet<Symbol> touch;        // induction pvars that visited (L3)
  FreeState free_state = FreeState::kLive;
  SmallSet<std::uint32_t> alloc_sites;  // malloc source lines
  bool havoc = false;  // salvage taint: widened by a kHavoc transfer

  friend bool operator==(const NodeProps&, const NodeProps&) = default;

  [[nodiscard]] std::uint64_t hash() const {
    using support::hash_combine;
    using support::hash_value;
    std::uint64_t h = hash_value(lang::raw(type));
    h = hash_combine(h, hash_value(cardinality));
    h = hash_combine(h, hash_value(static_cast<int>(shared)));
    auto sym_hash = [](Symbol s) { return support::hash_value(s.id()); };
    h = hash_combine(h, shsel.hash(sym_hash));
    h = hash_combine(h, selin.hash(sym_hash));
    h = hash_combine(h, selout.hash(sym_hash));
    h = hash_combine(h, pos_selin.hash(sym_hash));
    h = hash_combine(h, pos_selout.hash(sym_hash));
    h = hash_combine(h, cyclelinks.hash([](SelPair p) {
      return support::hash_combine(support::hash_value(p.out.id()),
                                   support::hash_value(p.back.id()));
    }));
    h = hash_combine(h, touch.hash(sym_hash));
    h = hash_combine(h, hash_value(free_state));
    h = hash_combine(h, alloc_sites.hash([](std::uint32_t line) {
      return support::hash_value(line);
    }));
    h = hash_combine(h, hash_value(static_cast<int>(havoc)));
    return h;
  }

  /// Rough byte footprint for the Table-1 space metric.
  [[nodiscard]] std::size_t footprint_bytes() const {
    return sizeof(NodeProps) +
           (shsel.size() + selin.size() + selout.size() + pos_selin.size() +
            pos_selout.size() + touch.size()) *
               sizeof(Symbol) +
           cyclelinks.size() * sizeof(SelPair) +
           alloc_sites.size() * sizeof(std::uint32_t);
  }
};

}  // namespace psa::rsg
