// Reference Shape Graph (§3 of the paper).
//
// RSG = (N, P, S, PL, NL):
//   N  — nodes (NodeProps + identity)
//   P  — the program's pvars (owned by the frontend; symbols here)
//   S  — the program's selectors (likewise)
//   PL — references from pvars to nodes. A concrete store binds each pvar to
//        at most one location, and the analysis maintains the invariant that
//        PL is a partial map pvar -> node (DIVIDE restores it after loads).
//   NL — may-links between nodes, labeled with selectors.
//
// Graph invariants maintained by the operations:
//   * a node referenced by a pvar always has cardinality `one`
//     (fresh mallocs and materialized nodes are `one`; COMPRESS never
//     summarizes a pvar-pointed node with anything else because their
//     zero-length SPATHs differ),
//   * selin/pos_selin and selout/pos_selout stay disjoint,
//   * every node is reachable from some pvar (gc() removes the rest).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rsg/properties.hpp"
#include "support/memory_stats.hpp"

namespace psa::rsg {

using NodeRef = std::uint32_t;
constexpr NodeRef kNoNode = static_cast<NodeRef>(-1);

/// An outgoing link entry <sel, target>.
struct Link {
  Symbol sel;
  NodeRef target = kNoNode;

  friend constexpr bool operator==(Link, Link) noexcept = default;
  friend constexpr auto operator<=>(Link, Link) noexcept = default;
};

/// An incoming link entry <source, sel>.
struct InLink {
  NodeRef source = kNoNode;
  Symbol sel;

  friend constexpr bool operator==(InLink, InLink) noexcept = default;
  friend constexpr auto operator<=>(InLink, InLink) noexcept = default;
};

class Rsg {
 public:
  Rsg();
  Rsg(const Rsg&);
  Rsg& operator=(const Rsg&);
  Rsg(Rsg&&) noexcept = default;
  Rsg& operator=(Rsg&&) noexcept = default;

  // --- Nodes ---------------------------------------------------------------

  NodeRef add_node(NodeProps props);
  void remove_node(NodeRef n);  // also removes every link touching n
  [[nodiscard]] bool alive(NodeRef n) const { return nodes_[n].alive; }
  [[nodiscard]] NodeProps& props(NodeRef n) { return nodes_[n].props; }
  [[nodiscard]] const NodeProps& props(NodeRef n) const {
    return nodes_[n].props;
  }
  /// Count of alive nodes.
  [[nodiscard]] std::size_t node_count() const noexcept { return alive_count_; }
  /// Upper bound of node refs (iterate [0, node_capacity()) checking alive()).
  [[nodiscard]] std::size_t node_capacity() const noexcept {
    return nodes_.size();
  }

  /// All alive node refs, ascending.
  [[nodiscard]] std::vector<NodeRef> node_refs() const;

  // --- PL: pvar references ---------------------------------------------------

  void bind_pvar(Symbol pvar, NodeRef n);
  void unbind_pvar(Symbol pvar);
  [[nodiscard]] NodeRef pvar_target(Symbol pvar) const;  // kNoNode if unbound
  [[nodiscard]] const std::vector<std::pair<Symbol, NodeRef>>& pvar_links()
      const noexcept {
    return pl_;
  }
  /// Pvars bound to `n`, ascending.
  [[nodiscard]] SmallSet<Symbol> pvars_of(NodeRef n) const;

  // --- NL: selector links ----------------------------------------------------

  /// Add the may-link <from, sel, to>; returns false if already present.
  bool add_link(NodeRef from, Symbol sel, NodeRef to);
  bool remove_link(NodeRef from, Symbol sel, NodeRef to);
  [[nodiscard]] bool has_link(NodeRef from, Symbol sel, NodeRef to) const;
  [[nodiscard]] const std::vector<Link>& out_links(NodeRef n) const {
    return nodes_[n].out;
  }
  /// Targets of `from` via `sel`, ascending.
  [[nodiscard]] std::vector<NodeRef> sel_targets(NodeRef from, Symbol sel) const;
  /// All incoming links of `to` (maintained incrementally, sorted).
  [[nodiscard]] const std::vector<InLink>& in_links(NodeRef to) const {
    return nodes_[to].in;
  }
  [[nodiscard]] std::size_t link_count() const;

  // --- Derived properties ------------------------------------------------------

  /// Zero-length simple paths: pvars bound to n.
  [[nodiscard]] SmallSet<Symbol> spath0(NodeRef n) const { return pvars_of(n); }
  /// One-length simple paths: <pvar, sel> with pvar -> m and <m, sel, n>.
  [[nodiscard]] SmallSet<SimplePath> spath1(NodeRef n) const;
  /// STRUCTURE: weakly-connected-component id per node slot (dead slots get
  /// kNoNode). Ids are the smallest member ref of the component.
  [[nodiscard]] std::vector<NodeRef> components() const;
  /// Forward reachability from the pvars (alive slots only).
  [[nodiscard]] std::vector<bool> reachable_from_pvars() const;

  /// Upper bound on the number of distinct heap references to locations of
  /// `to` via `sel` (2 stands for "2 or more"): a link from a cardinality-one
  /// source counts 1, from a summary source 2.
  [[nodiscard]] int max_in_refs(NodeRef to, Symbol sel) const;
  /// Same over all selectors.
  [[nodiscard]] int max_in_refs_total(NodeRef to) const;
  /// True when <from, sel, to> is a *definite* link: `from` has cardinality
  /// one, sel is in its definite SELOUTset and `to` is its unique sel-target.
  [[nodiscard]] bool definite_link(NodeRef from, Symbol sel, NodeRef to) const;

  // --- Salvage taint -----------------------------------------------------------

  /// Sticky graph-level HAVOC taint: true once any kHavoc transfer widened
  /// this configuration (even a variant that left no tainted node behind,
  /// e.g. "the unknown expression was NULL" unbinds the pvar). OR-combined by
  /// JOIN/force_join, serialized with the graph; see docs/RESILIENCE.md.
  [[nodiscard]] bool havoc() const noexcept { return havoc_; }
  void set_havoc(bool on) noexcept { havoc_ = on; }

  // --- Maintenance -------------------------------------------------------------

  /// Remove nodes unreachable from every pvar. Returns true if changed.
  bool gc();
  /// Renumber nodes to remove dead slots.
  void compact();
  /// Re-register this graph's byte footprint with support::MemoryStats.
  void refresh_footprint();
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Multi-line textual dump for tests and debugging.
  [[nodiscard]] std::string dump(const support::Interner& interner) const;

 private:
  struct Node {
    bool alive = true;
    NodeProps props;
    std::vector<Link> out;   // sorted ascending
    std::vector<InLink> in;  // sorted ascending, mirrors the out lists
  };

  std::vector<Node> nodes_;
  std::size_t alive_count_ = 0;
  std::vector<std::pair<Symbol, NodeRef>> pl_;  // sorted by pvar
  bool havoc_ = false;
  support::TrackedFootprint footprint_;
};

}  // namespace psa::rsg
