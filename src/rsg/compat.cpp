#include "rsg/compat.hpp"

namespace psa::rsg {

std::vector<NodeCompatContext> compute_compat_contexts(const Rsg& g) {
  std::vector<NodeCompatContext> out(g.node_capacity());
  const auto comps = g.components();
  for (NodeRef n = 0; n < g.node_capacity(); ++n) {
    if (!g.alive(n)) continue;
    out[n].spath0 = g.spath0(n);
    out[n].spath1 = g.spath1(n);
    out[n].component = comps[n];
  }
  return out;
}

bool c_spath(const NodeCompatContext& a, const NodeCompatContext& b,
             const LevelPolicy& policy) {
  if (a.spath0 != b.spath0) return false;
  if (!policy.use_spath1()) return true;
  // C_SPATH1: the one-length sets must share at least one simple path —
  // vacuously compatible when both are empty.
  if (a.spath1.empty() && b.spath1.empty()) return true;
  return intersects(a.spath1, b.spath1);
}

bool c_refpat(const NodeProps& a, const NodeProps& b) {
  // "Compatible reference pattern information": each node's definite sets
  // must be covered by the other's definite-or-possible sets. Equality is
  // not required — MERGE_NODES's intersection/possible-set formulas exist
  // precisely to reconcile unequal patterns — but a selector that one node
  // *definitely* has and the other *cannot* have keeps them apart (that is
  // what separates a list's last element, selout={prv}, from its middles,
  // selout={nxt,prv}).
  auto covered = [](const SmallSet<Symbol>& definite,
                    const SmallSet<Symbol>& other_definite,
                    const SmallSet<Symbol>& other_possible) {
    for (const Symbol s : definite) {
      if (!other_definite.contains(s) && !other_possible.contains(s))
        return false;
    }
    return true;
  };
  return covered(a.selin, b.selin, b.pos_selin) &&
         covered(b.selin, a.selin, a.pos_selin) &&
         covered(a.selout, b.selout, b.pos_selout) &&
         covered(b.selout, a.selout, a.pos_selout);
}

namespace {

/// The property comparisons shared by C_NODES and C_NODES_RSG.
bool common_compat(const NodeProps& pa, const NodeCompatContext& ca,
                   const NodeProps& pb, const NodeCompatContext& cb,
                   const LevelPolicy& policy) {
  if (pa.type != pb.type) return false;
  // Freed and live locations never summarize together: a summary node's
  // FREE state must describe every represented location, and mixing would
  // either hide a use-after-free (freed folded into live) or flag every
  // access to the structure (live folded into freed). ALLOCSITES, by
  // contrast, is deliberately *not* compared — it is diagnostic payload.
  if (pa.free_state != pb.free_state) return false;
  if (pa.shared != pb.shared) return false;
  if (pa.shsel != pb.shsel) return false;
  if (policy.use_touch() && pa.touch != pb.touch) return false;
  if (!c_refpat(pa, pb)) return false;
  return c_spath(ca, cb, policy);
}

}  // namespace

bool c_nodes(const NodeProps& pa, const NodeCompatContext& ca,
             const NodeProps& pb, const NodeCompatContext& cb,
             const LevelPolicy& policy) {
  return common_compat(pa, ca, pb, cb, policy);
}

bool c_nodes_rsg(const NodeProps& pa, const NodeCompatContext& ca,
                 const NodeProps& pb, const NodeCompatContext& cb,
                 const LevelPolicy& policy) {
  // STRUCTURE: never summarize nodes of different connected components.
  if (ca.component != cb.component) return false;
  return common_compat(pa, ca, pb, cb, policy);
}

NodeProps merge_node_props(const Rsg& ga, NodeRef na, const Rsg& gb,
                           NodeRef nb, bool same_configuration) {
  const NodeProps& a = ga.props(na);
  const NodeProps& b = gb.props(nb);

  NodeProps out;
  out.type = a.type;

  // Cardinality: two distinct nodes of one configuration always make a
  // summary; across configurations the merged node still denotes one
  // location per configuration when both inputs did.
  if (same_configuration || a.cardinality == Cardinality::kMany ||
      b.cardinality == Cardinality::kMany) {
    out.cardinality = Cardinality::kMany;
  } else {
    out.cardinality = Cardinality::kOne;
  }

  // SHARED/SHSEL merge upward (may-information), TOUCH downward ("visited by
  // p" is definite information about every represented location). Under the
  // compatibility checks the inputs are equal and these reduce to identity;
  // the forced-join widening relies on the conservative directions.
  out.shared = a.shared || b.shared;
  out.shsel = set_union(a.shsel, b.shsel);
  out.touch = set_intersection(a.touch, b.touch);
  // FREE widens to kMaybeFreed on a forced freed/live merge (the compat
  // checks make equal-state merges the common case); ALLOCSITES unions.
  out.free_state = merge_free_states(a.free_state, b.free_state);
  out.alloc_sites = set_union(a.alloc_sites, b.alloc_sites);
  // HAVOC taint sticks: a summary containing any havoc-widened location is
  // itself speculative. Like ALLOCSITES it is not a compatibility criterion,
  // so carrying it never changes which nodes summarize.
  out.havoc = a.havoc || b.havoc;

  // Reference patterns (the paper's MERGE_NODES formulas):
  //   SELINset(n)    = SELINset(n1) ∩ SELINset(n2)
  //   PosSELINset(n) = (SELINset(n1) ∪ SELINset(n2) ∪ PosSELINset(n1)
  //                     ∪ PosSELINset(n2)) \ SELINset(n)
  out.selin = set_intersection(a.selin, b.selin);
  out.selout = set_intersection(a.selout, b.selout);
  out.pos_selin = set_difference(
      set_union(set_union(a.selin, b.selin),
                set_union(a.pos_selin, b.pos_selin)),
      out.selin);
  out.pos_selout = set_difference(
      set_union(set_union(a.selout, b.selout),
                set_union(a.pos_selout, b.pos_selout)),
      out.selout);

  // CYCLELINKS: keep the pairs common to both, plus a pair from one node
  // whose first selector is not a link selector of the other node (then the
  // pair holds vacuously for the other node's locations).
  auto has_out_sel = [](const Rsg& g, NodeRef n, Symbol sel) {
    for (const Link& l : g.out_links(n))
      if (l.sel == sel) return true;
    return false;
  };
  for (const SelPair cl : a.cyclelinks) {
    if (b.cyclelinks.contains(cl) || !has_out_sel(gb, nb, cl.out))
      out.cyclelinks.insert(cl);
  }
  for (const SelPair cl : b.cyclelinks) {
    if (a.cyclelinks.contains(cl) || !has_out_sel(ga, na, cl.out))
      out.cyclelinks.insert(cl);
  }

  return out;
}

}  // namespace psa::rsg
