// The three progressive analysis levels (§5 of the paper).
//
//  L1: TOUCH sets are neither built nor compared; node compatibility uses
//      C_SPATH0 (equal zero-length simple paths).
//  L2: as L1 but with C_SPATH1 (additionally, the one-length simple-path
//      sets must share an element or both be empty).
//  L3: every property including TOUCH.
#pragma once

#include <cstdint>
#include <string_view>

namespace psa::rsg {

enum class AnalysisLevel : std::uint8_t { kL1 = 1, kL2 = 2, kL3 = 3 };

[[nodiscard]] constexpr std::string_view to_string(AnalysisLevel level) {
  switch (level) {
    case AnalysisLevel::kL1: return "L1";
    case AnalysisLevel::kL2: return "L2";
    case AnalysisLevel::kL3: return "L3";
  }
  return "?";
}

/// How a level parameterizes the compatibility functions.
struct LevelPolicy {
  AnalysisLevel level = AnalysisLevel::kL1;

  /// C_SPATH1 instead of C_SPATH0 (the paper's parameter m).
  [[nodiscard]] constexpr bool use_spath1() const noexcept {
    return level != AnalysisLevel::kL1;
  }
  /// Build and compare TOUCH sets.
  [[nodiscard]] constexpr bool use_touch() const noexcept {
    return level == AnalysisLevel::kL3;
  }
};

}  // namespace psa::rsg
