#include "rsg/rsg.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace psa::rsg {

Rsg::Rsg() { support::MemoryStats::instance().note_graph_created(); }

Rsg::Rsg(const Rsg& other)
    : nodes_(other.nodes_),
      alive_count_(other.alive_count_),
      pl_(other.pl_),
      havoc_(other.havoc_) {
  support::MemoryStats::instance().note_graph_created();
  refresh_footprint();
}

Rsg& Rsg::operator=(const Rsg& other) {
  if (this != &other) {
    nodes_ = other.nodes_;
    alive_count_ = other.alive_count_;
    pl_ = other.pl_;
    havoc_ = other.havoc_;
    refresh_footprint();
  }
  return *this;
}

// --- Nodes -------------------------------------------------------------------

NodeRef Rsg::add_node(NodeProps props) {
  nodes_.push_back(Node{true, std::move(props), {}, {}});
  ++alive_count_;
  support::MemoryStats::instance().note_node_created();
  return static_cast<NodeRef>(nodes_.size() - 1);
}

void Rsg::remove_node(NodeRef n) {
  assert(nodes_[n].alive);
  // Detach from neighbours through the mirrored adjacency.
  for (const Link& l : nodes_[n].out) {
    if (l.target == n) continue;
    std::erase_if(nodes_[l.target].in,
                  [n](const InLink& in) { return in.source == n; });
  }
  for (const InLink& in : nodes_[n].in) {
    if (in.source == n) continue;
    std::erase_if(nodes_[in.source].out,
                  [n](const Link& l) { return l.target == n; });
  }
  nodes_[n].alive = false;
  nodes_[n].out.clear();
  nodes_[n].in.clear();
  --alive_count_;
  std::erase_if(pl_, [n](const auto& p) { return p.second == n; });
}

std::vector<NodeRef> Rsg::node_refs() const {
  std::vector<NodeRef> out;
  out.reserve(alive_count_);
  for (NodeRef i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].alive) out.push_back(i);
  return out;
}

// --- PL ------------------------------------------------------------------------

void Rsg::bind_pvar(Symbol pvar, NodeRef n) {
  assert(nodes_[n].alive);
  auto it = std::lower_bound(
      pl_.begin(), pl_.end(), pvar,
      [](const auto& p, Symbol s) { return p.first < s; });
  if (it != pl_.end() && it->first == pvar) {
    it->second = n;
  } else {
    pl_.insert(it, {pvar, n});
  }
}

void Rsg::unbind_pvar(Symbol pvar) {
  std::erase_if(pl_, [pvar](const auto& p) { return p.first == pvar; });
}

NodeRef Rsg::pvar_target(Symbol pvar) const {
  auto it = std::lower_bound(
      pl_.begin(), pl_.end(), pvar,
      [](const auto& p, Symbol s) { return p.first < s; });
  if (it != pl_.end() && it->first == pvar) return it->second;
  return kNoNode;
}

SmallSet<Symbol> Rsg::pvars_of(NodeRef n) const {
  SmallSet<Symbol> out;
  for (const auto& [pvar, target] : pl_)
    if (target == n) out.insert(pvar);
  return out;
}

// --- NL ------------------------------------------------------------------------

bool Rsg::add_link(NodeRef from, Symbol sel, NodeRef to) {
  assert(nodes_[from].alive && nodes_[to].alive);
  auto& out = nodes_[from].out;
  const Link link{sel, to};
  auto it = std::lower_bound(out.begin(), out.end(), link);
  if (it != out.end() && *it == link) return false;
  out.insert(it, link);
  auto& in = nodes_[to].in;
  const InLink inlink{from, sel};
  in.insert(std::lower_bound(in.begin(), in.end(), inlink), inlink);
  return true;
}

bool Rsg::remove_link(NodeRef from, Symbol sel, NodeRef to) {
  auto& out = nodes_[from].out;
  const Link link{sel, to};
  auto it = std::lower_bound(out.begin(), out.end(), link);
  if (it == out.end() || !(*it == link)) return false;
  out.erase(it);
  auto& in = nodes_[to].in;
  const InLink inlink{from, sel};
  auto iit = std::lower_bound(in.begin(), in.end(), inlink);
  assert(iit != in.end() && *iit == inlink);
  in.erase(iit);
  return true;
}

bool Rsg::has_link(NodeRef from, Symbol sel, NodeRef to) const {
  const auto& out = nodes_[from].out;
  const Link link{sel, to};
  return std::binary_search(out.begin(), out.end(), link);
}

std::vector<NodeRef> Rsg::sel_targets(NodeRef from, Symbol sel) const {
  std::vector<NodeRef> out;
  for (const Link& l : nodes_[from].out)
    if (l.sel == sel) out.push_back(l.target);
  return out;
}

std::size_t Rsg::link_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_)
    if (node.alive) n += node.out.size();
  return n;
}

// --- Derived -------------------------------------------------------------------

SmallSet<SimplePath> Rsg::spath1(NodeRef n) const {
  SmallSet<SimplePath> out;
  for (const auto& [pvar, m] : pl_) {
    for (const Link& l : nodes_[m].out)
      if (l.target == n) out.insert(SimplePath{pvar, l.sel});
  }
  return out;
}

std::vector<NodeRef> Rsg::components() const {
  // Union-find over undirected link adjacency.
  std::vector<NodeRef> parent(nodes_.size());
  for (NodeRef i = 0; i < nodes_.size(); ++i)
    parent[i] = nodes_[i].alive ? i : kNoNode;

  auto find = [&](NodeRef a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  };
  auto unite = [&](NodeRef a, NodeRef b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[b] = a;  // smaller ref becomes the representative
  };

  for (NodeRef i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive) continue;
    for (const Link& l : nodes_[i].out) unite(i, l.target);
  }

  std::vector<NodeRef> comp(nodes_.size(), kNoNode);
  for (NodeRef i = 0; i < nodes_.size(); ++i)
    if (nodes_[i].alive) comp[i] = find(i);
  return comp;
}

std::vector<bool> Rsg::reachable_from_pvars() const {
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeRef> work;
  for (const auto& [pvar, n] : pl_) {
    if (!seen[n]) {
      seen[n] = true;
      work.push_back(n);
    }
  }
  while (!work.empty()) {
    const NodeRef n = work.back();
    work.pop_back();
    for (const Link& l : nodes_[n].out) {
      if (!seen[l.target]) {
        seen[l.target] = true;
        work.push_back(l.target);
      }
    }
  }
  return seen;
}

int Rsg::max_in_refs(NodeRef to, Symbol sel) const {
  int refs = 0;
  for (const InLink& in : nodes_[to].in) {
    if (in.sel != sel) continue;
    refs += nodes_[in.source].props.cardinality == Cardinality::kOne ? 1 : 2;
    if (refs >= 2) break;
  }
  return std::min(refs, 2);
}

int Rsg::max_in_refs_total(NodeRef to) const {
  int refs = 0;
  for (const InLink& in : nodes_[to].in) {
    refs += nodes_[in.source].props.cardinality == Cardinality::kOne ? 1 : 2;
    if (refs >= 2) break;
  }
  return std::min(refs, 2);
}

bool Rsg::definite_link(NodeRef from, Symbol sel, NodeRef to) const {
  if (nodes_[from].props.cardinality != Cardinality::kOne) return false;
  if (!nodes_[from].props.selout.contains(sel)) return false;
  const auto targets = sel_targets(from, sel);
  return targets.size() == 1 && targets[0] == to;
}

// --- Maintenance -----------------------------------------------------------------

bool Rsg::gc() {
  const auto seen = reachable_from_pvars();

  // Reference-pattern maintenance: links between garbage and live nodes
  // vanish with the garbage, but the *references they stood for* were real.
  // A definite SELIN/SELOUT that loses its last witnessing link must be
  // demoted to the possible set, otherwise a later PRUNE would declare the
  // graph infeasible over a reference that merely became untracked.
  std::vector<std::pair<NodeRef, Symbol>> lost_in;   // live target, sel
  std::vector<std::pair<NodeRef, Symbol>> lost_out;  // live source, sel
  for (NodeRef i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive || seen[i]) continue;
    for (const Link& l : nodes_[i].out) {
      if (seen[l.target]) lost_in.emplace_back(l.target, l.sel);
    }
    for (const InLink& in : nodes_[i].in) {
      if (seen[in.source]) lost_out.emplace_back(in.source, in.sel);
    }
  }

  bool changed = false;
  for (NodeRef i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].alive && !seen[i]) {
      remove_node(i);
      changed = true;
    }
  }

  for (const auto& [t, sel] : lost_in) {
    if (!nodes_[t].props.selin.contains(sel)) continue;
    bool still_witnessed = false;
    for (const InLink& in : nodes_[t].in) {
      if (in.sel == sel) {
        still_witnessed = true;
        break;
      }
    }
    if (!still_witnessed) {
      nodes_[t].props.selin.erase(sel);
      nodes_[t].props.pos_selin.insert(sel);
    }
  }
  for (const auto& [s, sel] : lost_out) {
    if (!nodes_[s].props.selout.contains(sel)) continue;
    bool still_witnessed = false;
    for (const Link& l : nodes_[s].out) {
      if (l.sel == sel) {
        still_witnessed = true;
        break;
      }
    }
    if (!still_witnessed) {
      nodes_[s].props.selout.erase(sel);
      nodes_[s].props.pos_selout.insert(sel);
    }
  }
  return changed;
}

void Rsg::compact() {
  std::vector<NodeRef> remap(nodes_.size(), kNoNode);
  std::vector<Node> packed;
  packed.reserve(alive_count_);
  for (NodeRef i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive) continue;
    remap[i] = static_cast<NodeRef>(packed.size());
    packed.push_back(std::move(nodes_[i]));
  }
  for (auto& node : packed) {
    for (auto& l : node.out) l.target = remap[l.target];
    for (auto& in : node.in) in.source = remap[in.source];
    std::sort(node.out.begin(), node.out.end());
    std::sort(node.in.begin(), node.in.end());
  }
  for (auto& [pvar, n] : pl_) n = remap[n];
  nodes_ = std::move(packed);
}

std::size_t Rsg::footprint_bytes() const {
  std::size_t bytes = sizeof(Rsg) + pl_.size() * sizeof(pl_[0]);
  for (const auto& node : nodes_) {
    if (!node.alive) continue;
    bytes += node.props.footprint_bytes() + node.out.size() * sizeof(Link) +
             node.in.size() * sizeof(InLink);
  }
  return bytes;
}

void Rsg::refresh_footprint() { footprint_.resize(footprint_bytes()); }

std::string Rsg::dump(const support::Interner& in) const {
  std::ostringstream os;
  for (const auto& [pvar, n] : pl_)
    os << in.spelling(pvar) << " -> n" << n << '\n';
  for (NodeRef i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].alive) continue;
    const NodeProps& p = nodes_[i].props;
    os << 'n' << i << " [card="
       << (p.cardinality == Cardinality::kOne ? "one" : "many")
       << " shared=" << (p.shared ? 'T' : 'F');
    if (!p.shsel.empty()) {
      os << " shsel={";
      for (Symbol s : p.shsel) os << in.spelling(s) << ' ';
      os << '}';
    }
    auto put_set = [&](const char* name, const SmallSet<Symbol>& set) {
      if (set.empty()) return;
      os << ' ' << name << "={";
      for (Symbol s : set) os << in.spelling(s) << ' ';
      os << '}';
    };
    put_set("selin", p.selin);
    put_set("selout", p.selout);
    put_set("pselin", p.pos_selin);
    put_set("pselout", p.pos_selout);
    put_set("touch", p.touch);
    if (!p.cyclelinks.empty()) {
      os << " cl={";
      for (SelPair cl : p.cyclelinks)
        os << '<' << in.spelling(cl.out) << ',' << in.spelling(cl.back) << "> ";
      os << '}';
    }
    if (p.free_state != FreeState::kLive) {
      os << " freed="
         << (p.free_state == FreeState::kFreed ? "yes" : "maybe");
    }
    if (!p.alloc_sites.empty()) {
      os << " alloc={";
      for (const std::uint32_t line : p.alloc_sites) os << line << ' ';
      os << '}';
    }
    os << "]\n";
    for (const Link& l : nodes_[i].out)
      os << "  n" << i << " -" << in.spelling(l.sel) << "-> n" << l.target
         << '\n';
  }
  return os.str();
}

}  // namespace psa::rsg
