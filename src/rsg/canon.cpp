#include "rsg/canon.hpp"

#include <algorithm>

#include "support/hash.hpp"

namespace psa::rsg {

namespace {

using support::hash_accumulate_unordered;
using support::hash_combine;
using support::hash_value;
using support::mix64;

std::uint64_t initial_color(const Rsg& g, NodeRef n) {
  std::uint64_t h = g.props(n).hash();
  // The zero-length SPATH (which pvars point here) is part of the identity.
  h = hash_combine(h, g.spath0(n).hash([](Symbol s) {
    return hash_value(s.id());
  }));
  return h;
}

/// Iteratively refine node colors until the partition stabilizes; returns
/// final colors indexed by node slot.
std::vector<std::uint64_t> refine_colors(const Rsg& g) {
  const auto refs = g.node_refs();
  std::vector<std::uint64_t> color(g.node_capacity(), 0);
  for (const NodeRef n : refs) color[n] = initial_color(g, n);

  // n rounds suffice for WL refinement on n nodes, but the partition almost
  // always stabilizes after 2-4; stop when the *grouping* stops refining
  // (the hash values themselves change every round by construction).
  auto partition_classes = [&](const std::vector<std::uint64_t>& c) {
    std::vector<std::uint64_t> sorted;
    sorted.reserve(refs.size());
    for (const NodeRef n : refs) sorted.push_back(c[n]);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    return sorted.size();
  };

  std::size_t classes = partition_classes(color);
  for (std::size_t round = 0; round < refs.size(); ++round) {
    std::vector<std::uint64_t> next = color;
    for (const NodeRef n : refs) {
      std::uint64_t out_acc = 0x0ddba11;
      for (const Link& l : g.out_links(n)) {
        out_acc = hash_accumulate_unordered(
            out_acc, hash_combine(hash_value(l.sel.id()), color[l.target]));
      }
      std::uint64_t in_acc = 0x5ca1ab1e;
      for (const InLink& in : g.in_links(n)) {
        in_acc = hash_accumulate_unordered(
            in_acc, hash_combine(hash_value(in.sel.id()), color[in.source]));
      }
      next[n] = hash_combine(hash_combine(color[n], out_acc), in_acc);
    }
    const std::size_t next_classes = partition_classes(next);
    color = std::move(next);
    if (next_classes == classes) break;  // partition stable
    classes = next_classes;
  }
  return color;
}

}  // namespace

std::uint64_t fingerprint(const Rsg& g) {
  const auto color = refine_colors(g);
  // Graph-level salvage taint is part of the identity: a tainted
  // configuration never dedups against its untainted twin (the taint would
  // silently vanish from the set).
  std::uint64_t h = hash_combine(0x9e3779b9, hash_value(g.havoc() ? 1 : 0));
  for (const NodeRef n : g.node_refs())
    h = hash_accumulate_unordered(h, mix64(color[n]));
  for (const auto& [pvar, n] : g.pvar_links())
    h = hash_accumulate_unordered(
        h, hash_combine(hash_value(pvar.id()), color[n]));
  return h;
}

namespace {

/// Backtracking isomorphism: map a's nodes onto b's within color classes.
class IsoMatcher {
 public:
  IsoMatcher(const Rsg& a, const Rsg& b) : a_(a), b_(b) {
    colors_a_ = refine_colors(a);
    colors_b_ = refine_colors(b);
    refs_a_ = a.node_refs();
    map_.assign(a.node_capacity(), kNoNode);
    used_.assign(b.node_capacity(), false);
  }

  bool run() { return extend(0); }

 private:
  bool extend(std::size_t idx) {
    if (idx == refs_a_.size()) return check_full();
    const NodeRef na = refs_a_[idx];
    for (const NodeRef nb : b_.node_refs()) {
      if (used_[nb] || colors_a_[na] != colors_b_[nb]) continue;
      if (!locally_consistent(na, nb)) continue;
      map_[na] = nb;
      used_[nb] = true;
      if (extend(idx + 1)) return true;
      used_[nb] = false;
      map_[na] = kNoNode;
    }
    return false;
  }

  /// Check properties + links to already-mapped nodes.
  bool locally_consistent(NodeRef na, NodeRef nb) {
    if (!(a_.props(na) == b_.props(nb))) return false;
    if (a_.out_links(na).size() != b_.out_links(nb).size()) return false;
    if (a_.spath0(na) != b_.spath0(nb)) return false;
    for (const Link& l : a_.out_links(na)) {
      const NodeRef mt = map_[l.target];
      if (mt != kNoNode && !b_.has_link(nb, l.sel, mt)) return false;
    }
    for (const InLink& in : a_.in_links(na)) {
      const NodeRef ms = map_[in.source];
      if (ms != kNoNode && !b_.has_link(ms, in.sel, nb)) return false;
    }
    return true;
  }

  /// Full verification of links and PL under the completed mapping.
  bool check_full() {
    for (const NodeRef na : refs_a_) {
      for (const Link& l : a_.out_links(na)) {
        if (!b_.has_link(map_[na], l.sel, map_[l.target])) return false;
      }
    }
    if (a_.link_count() != b_.link_count()) return false;
    for (const auto& [pvar, n] : a_.pvar_links()) {
      if (b_.pvar_target(pvar) != map_[n]) return false;
    }
    return true;
  }

  const Rsg& a_;
  const Rsg& b_;
  std::vector<std::uint64_t> colors_a_;
  std::vector<std::uint64_t> colors_b_;
  std::vector<NodeRef> refs_a_;
  std::vector<NodeRef> map_;
  std::vector<bool> used_;
};

}  // namespace

bool rsg_equal(const Rsg& a, const Rsg& b) {
  if (a.havoc() != b.havoc()) return false;
  if (a.node_count() != b.node_count()) return false;
  if (a.link_count() != b.link_count()) return false;
  if (a.pvar_links().size() != b.pvar_links().size()) return false;
  for (std::size_t i = 0; i < a.pvar_links().size(); ++i) {
    if (a.pvar_links()[i].first != b.pvar_links()[i].first) return false;
  }
  IsoMatcher matcher(a, b);
  return matcher.run();
}

}  // namespace psa::rsg
