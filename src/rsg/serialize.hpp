// Versioned, checksummed binary snapshots of shape graphs.
//
// The wire format backs two consumers (see docs/RESILIENCE.md):
//   * the worker -> supervisor IPC payload of the crash-isolated batch
//     driver (src/driver/), and
//   * the on-disk checkpoint journal that makes interrupted batch runs
//     resumable.
//
// Layout. Every snapshot is an *envelope* around a payload:
//
//   offset  size  field
//   0       8     magic "PSASNAP1"
//   8       4     format version (little-endian u32, currently 2)
//   12      4     flags (reserved, 0)
//   16      8     payload size in bytes (little-endian u64)
//   24      8     FNV-1a 64-bit checksum of the payload bytes
//   32      n     payload
//
// Payloads are built from little-endian fixed-width integers, length-
// prefixed byte strings, and an interned-strings table: symbols are stored
// as indices into the table (index 0 is the invalid symbol), and the table
// itself is re-interned into the destination Interner on load, so a snapshot
// is portable across processes whose interners differ. Identity semantics:
// reading back into the ORIGINATING interner reproduces the value exactly
// (rsg_equal / fingerprint compare symbol ids); reading into a different
// interner yields the same graph up to symbol renaming, and re-serializing
// it reproduces the original bytes exactly — every symbol collection is
// written in spelling order (in-memory containers sort by interner id, which
// is process-local), so the snapshot itself is canonical.
//
// Robustness contract: deserialization NEVER exhibits UB on hostile bytes.
// Every read is bounds-checked, every count is validated against the bytes
// actually remaining, and every node ref / symbol index is range-checked;
// violations (including truncation, bit flips, version and checksum
// mismatches) throw SnapshotError with a diagnostic. The corruption suite in
// tests/rsg/serialize_test.cpp locks this in under ASan/UBSan.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rsg/rsg.hpp"
#include "support/interner.hpp"

namespace psa::rsg {

/// Any defect in a snapshot: truncation, corruption, version or checksum
/// mismatch, out-of-range record. The message names the offending field.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

/// The format version written by this build. v2 added the salvage-mode HAVOC
/// taint (one flag byte per node record, one per graph record); v3 grew the
/// embedded metrics vocabulary with the interprocedural-summary counters and
/// the phase_ipa timers (the metrics array is length-checked against
/// kCounterCount, so the growth is a wire-format change); v4 grew it again
/// with the function-granular cache counters (func_cache_*, summary_reuse);
/// v5 grew it with the durable-I/O counters (io_writes, io_fsyncs,
/// io_faults_injected, io_degradations).
/// Older snapshots are rejected with a version mismatch rather than misread.
inline constexpr std::uint32_t kSnapshotVersion = 5;

// --- Byte-level primitives ---------------------------------------------------

/// Append-only little-endian byte sink.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  // IEEE-754 bit pattern, round-trips exactly
  /// Length-prefixed (u32) byte string.
  void str(std::string_view s);

  [[nodiscard]] const std::string& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::string take() noexcept { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked reader over a byte buffer; every overrun throws
/// SnapshotError naming `what`.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8(const char* what);
  [[nodiscard]] std::uint32_t u32(const char* what);
  [[nodiscard]] std::uint64_t u64(const char* what);
  [[nodiscard]] double f64(const char* what);
  [[nodiscard]] std::string_view str(const char* what);
  /// A u32 element count about to drive a loop: additionally validated
  /// against the bytes remaining (>= min_bytes_each per element), so a
  /// corrupted count cannot trigger a pathological allocation.
  [[nodiscard]] std::uint32_t count(const char* what,
                                    std::size_t min_bytes_each = 1);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == bytes_.size(); }
  /// Throws unless the buffer was fully consumed.
  void expect_end(const char* what) const;

 private:
  void need(std::size_t n, const char* what) const;

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// --- Envelope ----------------------------------------------------------------

/// FNV-1a 64-bit over `bytes` (the envelope checksum).
[[nodiscard]] std::uint64_t snapshot_checksum(std::string_view bytes) noexcept;

/// Wrap a payload in the magic/version/size/checksum envelope.
[[nodiscard]] std::string wrap_snapshot(std::string payload);

/// Validate the envelope and return a view of the payload. Throws
/// SnapshotError on bad magic, unsupported version, size mismatch
/// (truncation/trailing garbage) or checksum mismatch.
[[nodiscard]] std::string_view unwrap_snapshot(std::string_view bytes);

// --- Interned-strings table --------------------------------------------------

/// Collects the distinct strings a payload references; symbols serialize as
/// table indices. Index 0 is reserved for the invalid symbol.
class SymbolTableBuilder {
 public:
  explicit SymbolTableBuilder(const support::Interner& interner)
      : interner_(interner) {}

  /// Table index of `sym`, interning its spelling on first use.
  [[nodiscard]] std::uint32_t index_of(support::Symbol sym);

  /// Spelling lookup, used to write symbol collections in spelling order so
  /// the byte stream is independent of interner ids (see file comment).
  [[nodiscard]] std::string_view spelling(support::Symbol sym) const {
    return interner_.spelling(sym);
  }

  /// Emit the table (count + length-prefixed strings, index 0 omitted).
  void write_table(ByteWriter& out) const;

 private:
  const support::Interner& interner_;
  std::vector<std::string_view> strings_;       // index-1 -> spelling
  std::vector<std::uint32_t> by_symbol_id_;     // interner id -> index+1
};

/// The table read back: maps snapshot indices to symbols of the destination
/// interner (re-interning each spelling).
class SymbolTableView {
 public:
  SymbolTableView(ByteReader& in, support::Interner& interner);

  /// Symbol for table index `idx`; index 0 is the invalid symbol. Throws
  /// SnapshotError when out of range.
  [[nodiscard]] support::Symbol symbol_at(std::uint32_t idx) const;

 private:
  std::vector<support::Symbol> symbols_;  // [0] = invalid
};

// --- Graph records -----------------------------------------------------------

/// Append the RSG record: alive nodes renumbered densely, with properties,
/// pvar bindings and out-links. Symbols go through `table`.
void append_rsg(ByteWriter& out, const Rsg& g, SymbolTableBuilder& table);

/// Read one RSG record. The result is canon-identical (rsg_equal) to the
/// graph that was serialized when `table` re-interns into the originating
/// interner; otherwise identical up to symbol renaming (see file comment).
/// Throws SnapshotError on any malformed field.
[[nodiscard]] Rsg read_rsg(ByteReader& in, const SymbolTableView& table);

/// Convenience single-graph snapshot: envelope + string table + one record.
[[nodiscard]] std::string serialize_rsg(const Rsg& g,
                                        const support::Interner& interner);
[[nodiscard]] Rsg deserialize_rsg(std::string_view bytes,
                                  support::Interner& interner);

}  // namespace psa::rsg
