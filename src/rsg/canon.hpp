// Graph canonicalization for fixpoint detection.
//
// The engine iterates the abstract interpretation until the RSRSG of every
// statement stops changing; "stops changing" is equality of RSGs up to node
// renaming. We compute a Weisfeiler-Lehman-style fingerprint (cheap, order
// independent) as a prefilter, and decide true equality with a backtracking
// isomorphism search seeded by the refined color classes. The graphs are
// small (bounded by the node-property space), so the search is fast.
#pragma once

#include <cstdint>

#include "rsg/rsg.hpp"

namespace psa::rsg {

/// Order-independent structural fingerprint. Equal graphs (up to renaming)
/// have equal fingerprints; the converse holds modulo hash collisions, which
/// rsg_equal resolves exactly.
[[nodiscard]] std::uint64_t fingerprint(const Rsg& g);

/// Exact isomorphism test respecting node properties, links, and PL.
[[nodiscard]] bool rsg_equal(const Rsg& a, const Rsg& b);

}  // namespace psa::rsg
