// The RSG operations of §3.1 and §4: COMPRESS, DIVIDE, PRUNE, JOIN, and the
// materialization (focus) step the abstract semantics needs before strong
// updates through summary nodes (Fig. 1 (d) of the paper).
#pragma once

#include <optional>
#include <vector>

#include "rsg/compat.hpp"
#include "rsg/level.hpp"
#include "rsg/rsg.hpp"

namespace psa::rsg {

struct PruneOptions {
  /// The share-based link pruning of §4.2 ("the false value in share
  /// attributes leads to a more aggressive pruning"): with SHSEL(t,sel)=false
  /// and a definite <a,sel,t> link, every other sel-link into a
  /// cardinality-one t is spurious; with SHARED(t)=false the same holds
  /// across all selectors. Disabled only by the ablation benchmark.
  bool share_pruning = true;
};

/// Clear SHARED/SHSEL bits that the link structure proves impossible
/// (max_in_refs <= 1). Downward-only refinement; returns true if changed.
bool refine_sharing(Rsg& g);

/// PRUNE (§4.2): iteratively remove links violating CYCLELINKS, links made
/// spurious by share attributes, nodes violating their reference patterns,
/// and nodes unreachable from every pvar — until a fixed point.
/// Returns false when the graph is *infeasible* (a pvar-referenced node had
/// to be removed): the caller must drop the graph.
[[nodiscard]] bool prune(Rsg& g, const PruneOptions& opts = {});

/// DIVIDE (§4.1): split `g` so that in every resulting graph the node
/// referenced by `x` has at most one outgoing `sel` link — one graph per
/// original sel-target, plus (when sel is not a definite out-selector) the
/// graph in which x->sel is NULL. Each result is pruned; infeasible results
/// are dropped. When x is unbound the result is empty (the caller treats the
/// statement as a null dereference on this configuration).
[[nodiscard]] std::vector<Rsg> divide(const Rsg& g, Symbol x, Symbol sel,
                                      const PruneOptions& opts = {});

/// Result of materialization: the graph variant plus the cardinality-one
/// node that now represents the single location `from->sel` denotes.
struct Materialized {
  Rsg graph;
  NodeRef one_node = kNoNode;
};

/// Materialize (focus) the target of the unique link <from, sel, summary>.
/// Produces the "exactly one location remained" and "more locations remain"
/// variants (both pruned; infeasible ones dropped). When the target is
/// already cardinality-one the graph passes through unchanged.
[[nodiscard]] std::vector<Materialized> materialize(const Rsg& g, NodeRef from,
                                                    Symbol sel,
                                                    const PruneOptions& opts = {});

/// COMPRESS (§3.1): summarize C_NODES_RSG-compatible nodes until stable,
/// then drop unreachable nodes and compact.
void compress(Rsg& g, const LevelPolicy& policy);

/// Coarsening (engineering addition, see DESIGN.md): summarize *every* pair
/// of nodes with equal TYPE and equal zero-length SPATH, with conservative
/// property merges. Bounds the graph at (#pvar-combinations + 1) x #types
/// nodes — the widening the engine falls back to when the paper's semantics
/// explode (Barnes-Hut at L1). Sound; strictly less precise than COMPRESS.
void coarsen(Rsg& g, const LevelPolicy& policy);

/// ALIAS-relation equality (§4): same bound pvars, same pvar partition.
[[nodiscard]] bool alias_equal(const Rsg& a, const Rsg& b);

/// COMPATIBLE (§4): ALIAS equality plus per-pvar C_NODES compatibility.
[[nodiscard]] bool compatible(const Rsg& a, const Rsg& b,
                              const LevelPolicy& policy);

/// As above with caller-supplied compatibility contexts (hot path: RSRSG
/// insertion caches per-member contexts to avoid recomputing them per pair).
[[nodiscard]] bool compatible_with_contexts(
    const Rsg& a, const std::vector<NodeCompatContext>& ctx_a, const Rsg& b,
    const std::vector<NodeCompatContext>& ctx_b, const LevelPolicy& policy);

/// JOIN (§4.3): union of two compatible graphs; cross-graph C_NODES-
/// compatible nodes are summarized, everything else is copied side by side.
/// The result is compressed.
[[nodiscard]] Rsg join(const Rsg& a, const Rsg& b, const LevelPolicy& policy);

/// Widening (engineering addition, see DESIGN.md): join two ALIAS-equal
/// graphs even when COMP_NODES fails, by additionally summarizing the node
/// pair referenced by each pvar with conservative property merges
/// (SHARED/SHSEL grow, SELIN/SELOUT/TOUCH shrink). Sound but less precise
/// than JOIN; the engine applies it only above Options::widen_threshold to
/// bound the RSG count the paper bounds with patience (17-minute L1 runs).
[[nodiscard]] Rsg force_join(const Rsg& a, const Rsg& b,
                             const LevelPolicy& policy);

/// Degradation support (the resource governor's kForceJoin rung): demote
/// every node's must-information to may-information — SELIN/SELOUT move to
/// their possible counterparts, CYCLELINKS and TOUCH are cleared. Sound:
/// must sets may only be under-approximated, possible sets only grown.
/// Returns true when anything changed.
bool drop_must_info(Rsg& g);

/// Degradation support (the governor's kSummarize rung): the ⊤-like collapse
/// for a fixed ALIAS pattern. Sets SHARED and SHSEL(sel) for every node and
/// every selector of `selectors`, demotes must-information, marks every
/// node not referenced by a pvar as a summary, then coarsens. Links are
/// never deleted, pvar bindings are untouched, so the result covers every
/// store the input covered.
///
/// When `types` is given, the may-structure is additionally *saturated*:
/// every type-correct link (a selector field of the source's struct whose
/// pointee is the target's struct) is present, with PosSELOUT/PosSELIN to
/// match. Saturation makes ⊤ a fixed point under joining further transfer
/// outputs — without it a degraded fixpoint climbs the link lattice one
/// fold at a time, re-queuing successors on every climb. The saturation
/// must stay *typed*: saturating untyped would let a later DIVIDE bind
/// pvars to nodes of every type, exploding the ALIAS-pattern space.
void summarize_top(Rsg& g, const LevelPolicy& policy,
                   const std::vector<Symbol>& selectors,
                   const lang::TypeTable* types = nullptr);

/// Region-scoped ⊤ collapse for the interprocedural kCall transfer: the
/// summarize_top widening restricted to `region` (the argument-reachable
/// subgraph a callee could mutate). Must-information of region nodes is
/// demoted, their sharing bits saturate, non-pvar-referenced region nodes
/// become summaries, and every type-correct link *within* the region is
/// added. Nodes outside the region — caller state the callee can never
/// reach — are untouched, and no coarsen runs (it is a global operation;
/// the caller's finish/compress pass compacts instead).
void summarize_region(Rsg& g, const std::vector<NodeRef>& region,
                      const std::vector<Symbol>& selectors,
                      const lang::TypeTable* types = nullptr);

}  // namespace psa::rsg
