// Snapshot wire format (see serialize.hpp for the layout contract).
#include "rsg/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

namespace psa::rsg {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'A', 'S', 'N', 'A', 'P', '1'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8 + 8;

/// Hard cap on any element count: well above every real workload, well below
/// anything that could make a corrupted count allocate gigabytes.
constexpr std::uint32_t kMaxCount = 1u << 24;

}  // namespace

// --- ByteWriter --------------------------------------------------------------

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.append(s.data(), s.size());
}

// --- ByteReader --------------------------------------------------------------

void ByteReader::need(std::size_t n, const char* what) const {
  if (bytes_.size() - pos_ < n) {
    throw SnapshotError(std::string("truncated reading ") + what);
  }
}

std::uint8_t ByteReader::u8(const char* what) {
  need(1, what);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t ByteReader::u32(const char* what) {
  need(4, what);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes_[pos_++]))
         << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64(const char* what) {
  need(8, what);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes_[pos_++]))
         << (8 * i);
  }
  return v;
}

double ByteReader::f64(const char* what) {
  const std::uint64_t bits = u64(what);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string_view ByteReader::str(const char* what) {
  const std::uint32_t len = u32(what);
  need(len, what);
  const std::string_view out = bytes_.substr(pos_, len);
  pos_ += len;
  return out;
}

std::uint32_t ByteReader::count(const char* what, std::size_t min_bytes_each) {
  const std::uint32_t n = u32(what);
  if (n > kMaxCount) {
    throw SnapshotError(std::string("implausible count for ") + what);
  }
  if (min_bytes_each != 0 && remaining() / min_bytes_each < n) {
    throw SnapshotError(std::string("count overruns buffer for ") + what);
  }
  return n;
}

void ByteReader::expect_end(const char* what) const {
  if (!at_end()) {
    throw SnapshotError(std::string("trailing bytes after ") + what);
  }
}

// --- Envelope ----------------------------------------------------------------

std::uint64_t snapshot_checksum(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string wrap_snapshot(std::string payload) {
  std::string out(kMagic, sizeof(kMagic));
  ByteWriter w;
  w.u32(kSnapshotVersion);
  w.u32(0);  // flags
  w.u64(payload.size());
  w.u64(snapshot_checksum(payload));
  out += w.bytes();
  out += payload;
  return out;
}

std::string_view unwrap_snapshot(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) throw SnapshotError("truncated header");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotError("bad magic");
  }
  ByteReader r(bytes.substr(sizeof(kMagic), kHeaderSize - sizeof(kMagic)));
  const std::uint32_t version = r.u32("version");
  if (version != kSnapshotVersion) {
    throw SnapshotError("unsupported version " + std::to_string(version) +
                        " (expected " + std::to_string(kSnapshotVersion) + ")");
  }
  const std::uint32_t flags = r.u32("flags");
  if (flags != 0) {
    // Reserved: a v1 reader must not silently accept bytes written with
    // semantics it does not know (also makes every header bit checked).
    throw SnapshotError("unsupported flags " + std::to_string(flags));
  }
  const std::uint64_t size = r.u64("payload size");
  const std::uint64_t checksum = r.u64("checksum");
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() != size) {
    throw SnapshotError("payload size mismatch (header says " +
                        std::to_string(size) + ", got " +
                        std::to_string(payload.size()) + ")");
  }
  if (snapshot_checksum(payload) != checksum) {
    throw SnapshotError("checksum mismatch");
  }
  return payload;
}

// --- Interned-strings table --------------------------------------------------

std::uint32_t SymbolTableBuilder::index_of(support::Symbol sym) {
  if (!sym.valid()) return 0;
  const std::uint32_t id = sym.id();
  if (by_symbol_id_.size() <= id) by_symbol_id_.resize(id + 1, 0);
  if (by_symbol_id_[id] == 0) {
    strings_.push_back(interner_.spelling(sym));
    by_symbol_id_[id] = static_cast<std::uint32_t>(strings_.size());
  }
  return by_symbol_id_[id];
}

void SymbolTableBuilder::write_table(ByteWriter& out) const {
  out.u32(static_cast<std::uint32_t>(strings_.size()));
  for (const std::string_view s : strings_) out.str(s);
}

SymbolTableView::SymbolTableView(ByteReader& in, support::Interner& interner) {
  const std::uint32_t n = in.count("string table", 4);
  symbols_.reserve(n + 1);
  symbols_.push_back(support::Symbol());  // index 0 = invalid
  for (std::uint32_t i = 0; i < n; ++i) {
    symbols_.push_back(interner.intern(in.str("string table entry")));
  }
}

support::Symbol SymbolTableView::symbol_at(std::uint32_t idx) const {
  if (idx >= symbols_.size()) {
    throw SnapshotError("symbol index " + std::to_string(idx) +
                        " out of range (table has " +
                        std::to_string(symbols_.size()) + ")");
  }
  return symbols_[idx];
}

// --- Graph records -----------------------------------------------------------

namespace {

// In-memory containers sort symbols by interner id, which differs between
// processes; the wire format orders every symbol collection by SPELLING so
// the bytes are canonical (re-serializing a snapshot read into any interner
// reproduces them exactly).
void append_symbol_set(ByteWriter& out, const SmallSet<Symbol>& set,
                       SymbolTableBuilder& table) {
  std::vector<Symbol> order(set.begin(), set.end());
  std::sort(order.begin(), order.end(), [&](Symbol a, Symbol b) {
    return table.spelling(a) < table.spelling(b);
  });
  out.u32(static_cast<std::uint32_t>(order.size()));
  for (const Symbol s : order) out.u32(table.index_of(s));
}

SmallSet<Symbol> read_symbol_set(ByteReader& in, const SymbolTableView& table,
                                 const char* what) {
  SmallSet<Symbol> set;
  const std::uint32_t n = in.count(what, 4);
  for (std::uint32_t i = 0; i < n; ++i) set.insert(table.symbol_at(in.u32(what)));
  return set;
}

void append_props(ByteWriter& out, const NodeProps& p,
                  SymbolTableBuilder& table) {
  out.u32(lang::raw(p.type));
  out.u8(static_cast<std::uint8_t>(p.cardinality));
  out.u8(p.shared ? 1 : 0);
  out.u8(static_cast<std::uint8_t>(p.free_state));
  out.u8(p.havoc ? 1 : 0);
  append_symbol_set(out, p.shsel, table);
  append_symbol_set(out, p.selin, table);
  append_symbol_set(out, p.selout, table);
  append_symbol_set(out, p.pos_selin, table);
  append_symbol_set(out, p.pos_selout, table);
  append_symbol_set(out, p.touch, table);
  std::vector<SelPair> cycles(p.cyclelinks.begin(), p.cyclelinks.end());
  std::sort(cycles.begin(), cycles.end(),
            [&](const SelPair& a, const SelPair& b) {
              return std::pair(table.spelling(a.out), table.spelling(a.back)) <
                     std::pair(table.spelling(b.out), table.spelling(b.back));
            });
  out.u32(static_cast<std::uint32_t>(cycles.size()));
  for (const SelPair pair : cycles) {
    out.u32(table.index_of(pair.out));
    out.u32(table.index_of(pair.back));
  }
  out.u32(static_cast<std::uint32_t>(p.alloc_sites.size()));
  for (const std::uint32_t line : p.alloc_sites) out.u32(line);
}

NodeProps read_props(ByteReader& in, const SymbolTableView& table) {
  NodeProps p;
  p.type = static_cast<StructId>(in.u32("node type"));
  const std::uint8_t card = in.u8("cardinality");
  if (card > 1) throw SnapshotError("bad cardinality value");
  p.cardinality = static_cast<Cardinality>(card);
  const std::uint8_t shared = in.u8("shared flag");
  if (shared > 1) throw SnapshotError("bad shared flag");
  p.shared = shared != 0;
  const std::uint8_t free_state = in.u8("free state");
  if (free_state > 2) throw SnapshotError("bad free state");
  p.free_state = static_cast<FreeState>(free_state);
  const std::uint8_t havoc = in.u8("havoc flag");
  if (havoc > 1) throw SnapshotError("bad havoc flag");
  p.havoc = havoc != 0;
  p.shsel = read_symbol_set(in, table, "shsel");
  p.selin = read_symbol_set(in, table, "selin");
  p.selout = read_symbol_set(in, table, "selout");
  p.pos_selin = read_symbol_set(in, table, "pos_selin");
  p.pos_selout = read_symbol_set(in, table, "pos_selout");
  p.touch = read_symbol_set(in, table, "touch");
  const std::uint32_t cycles = in.count("cyclelinks", 8);
  for (std::uint32_t i = 0; i < cycles; ++i) {
    SelPair pair;
    pair.out = table.symbol_at(in.u32("cyclelink out"));
    pair.back = table.symbol_at(in.u32("cyclelink back"));
    p.cyclelinks.insert(pair);
  }
  const std::uint32_t sites = in.count("alloc sites", 4);
  for (std::uint32_t i = 0; i < sites; ++i) {
    p.alloc_sites.insert(in.u32("alloc site"));
  }
  return p;
}

}  // namespace

void append_rsg(ByteWriter& out, const Rsg& g, SymbolTableBuilder& table) {
  out.u8(g.havoc() ? 1 : 0);
  // Alive nodes, renumbered densely in ref order.
  const std::vector<NodeRef> refs = g.node_refs();
  std::vector<std::uint32_t> dense(g.node_capacity(),
                                   std::numeric_limits<std::uint32_t>::max());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    dense[refs[i]] = static_cast<std::uint32_t>(i);
  }

  out.u32(static_cast<std::uint32_t>(refs.size()));
  for (const NodeRef n : refs) append_props(out, g.props(n), table);

  std::vector<std::pair<Symbol, NodeRef>> pvars(g.pvar_links().begin(),
                                                g.pvar_links().end());
  std::sort(pvars.begin(), pvars.end(), [&](const auto& a, const auto& b) {
    return table.spelling(a.first) < table.spelling(b.first);
  });
  out.u32(static_cast<std::uint32_t>(pvars.size()));
  for (const auto& [pvar, target] : pvars) {
    out.u32(table.index_of(pvar));
    out.u32(dense[target]);
  }

  std::uint32_t link_count = 0;
  for (const NodeRef n : refs) {
    link_count += static_cast<std::uint32_t>(g.out_links(n).size());
  }
  out.u32(link_count);
  for (const NodeRef n : refs) {
    std::vector<Link> links(g.out_links(n).begin(), g.out_links(n).end());
    std::sort(links.begin(), links.end(), [&](const Link& a, const Link& b) {
      return std::pair(table.spelling(a.sel), dense[a.target]) <
             std::pair(table.spelling(b.sel), dense[b.target]);
    });
    for (const Link& l : links) {
      out.u32(dense[n]);
      out.u32(table.index_of(l.sel));
      out.u32(dense[l.target]);
    }
  }
}

Rsg read_rsg(ByteReader& in, const SymbolTableView& table) {
  Rsg g;
  const std::uint8_t graph_havoc = in.u8("graph havoc flag");
  if (graph_havoc > 1) throw SnapshotError("bad graph havoc flag");
  g.set_havoc(graph_havoc != 0);
  // A minimal node record is 40 bytes: type + four flag bytes + eight empty
  // set counts.
  const std::uint32_t node_count = in.count("node count", 40);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    (void)g.add_node(read_props(in, table));
  }
  auto check_ref = [&](std::uint32_t n, const char* what) -> NodeRef {
    if (n >= node_count) {
      throw SnapshotError(std::string("node ref out of range in ") + what);
    }
    return static_cast<NodeRef>(n);
  };

  const std::uint32_t pvars = in.count("pvar bindings", 8);
  for (std::uint32_t i = 0; i < pvars; ++i) {
    const Symbol pvar = table.symbol_at(in.u32("pvar symbol"));
    if (!pvar.valid()) throw SnapshotError("invalid pvar symbol in binding");
    g.bind_pvar(pvar, check_ref(in.u32("pvar target"), "pvar binding"));
  }

  const std::uint32_t links = in.count("links", 12);
  for (std::uint32_t i = 0; i < links; ++i) {
    const NodeRef from = check_ref(in.u32("link source"), "link");
    const Symbol sel = table.symbol_at(in.u32("link selector"));
    if (!sel.valid()) throw SnapshotError("invalid selector in link");
    const NodeRef to = check_ref(in.u32("link target"), "link");
    (void)g.add_link(from, sel, to);
  }
  return g;
}

std::string serialize_rsg(const Rsg& g, const support::Interner& interner) {
  SymbolTableBuilder table(interner);
  ByteWriter body;
  append_rsg(body, g, table);
  ByteWriter payload;
  table.write_table(payload);
  std::string out = payload.take();
  out += body.bytes();
  return wrap_snapshot(std::move(out));
}

Rsg deserialize_rsg(std::string_view bytes, support::Interner& interner) {
  const std::string_view payload = unwrap_snapshot(bytes);
  ByteReader in(payload);
  const SymbolTableView table(in, interner);
  Rsg g = read_rsg(in, table);
  in.expect_end("rsg record");
  g.refresh_footprint();
  return g;
}

}  // namespace psa::rsg
