// Node-compatibility functions (§3.1 and §4 of the paper).
//
//   C_SPATH(n1, n2, m)   m=0: equal zero-length simple-path sets
//                        m=1: additionally the one-length sets must share an
//                             element or both be empty
//   C_REFPAT(n1, n2)     equal definite reference patterns (SELIN/SELOUT)
//   C_NODES(n1, n2)      the *join* compatibility: TYPE, SHARED, SHSEL,
//                        TOUCH, C_REFPAT, C_SPATH (no STRUCTURE — the paper's
//                        C_NODES deliberately omits it)
//   C_NODES_RSG(n1, n2)  the *compress* compatibility: C_NODES plus equal
//                        STRUCTURE (same connected component)
#pragma once

#include "rsg/level.hpp"
#include "rsg/rsg.hpp"

namespace psa::rsg {

/// Pre-computed per-node context so the O(n^2) compatibility sweeps don't
/// recompute derived properties per pair.
struct NodeCompatContext {
  SmallSet<Symbol> spath0;
  SmallSet<SimplePath> spath1;
  NodeRef component = kNoNode;
};

/// Compute the compatibility context of every alive node of `g`.
[[nodiscard]] std::vector<NodeCompatContext> compute_compat_contexts(
    const Rsg& g);

[[nodiscard]] bool c_spath(const NodeCompatContext& a,
                           const NodeCompatContext& b,
                           const LevelPolicy& policy);

[[nodiscard]] bool c_refpat(const NodeProps& a, const NodeProps& b);

/// C_NODES — used by COMPATIBLE / JOIN across two graphs.
[[nodiscard]] bool c_nodes(const NodeProps& pa, const NodeCompatContext& ca,
                           const NodeProps& pb, const NodeCompatContext& cb,
                           const LevelPolicy& policy);

/// C_NODES_RSG — used by COMPRESS within one graph (adds STRUCTURE).
[[nodiscard]] bool c_nodes_rsg(const NodeProps& pa, const NodeCompatContext& ca,
                               const NodeProps& pb, const NodeCompatContext& cb,
                               const LevelPolicy& policy);

/// MERGE_NODES (§3.1): combine the properties of two compatible nodes.
/// `same_configuration` is true when the nodes summarize locations of the
/// same concrete configuration (COMPRESS) — the result is then always a
/// summary; across configurations (JOIN) `one`+`one` stays `one`.
/// The cycle-link rule needs to know whether each node has an outgoing link
/// per selector, so the owning graphs are passed alongside.
[[nodiscard]] NodeProps merge_node_props(const Rsg& ga, NodeRef na,
                                         const Rsg& gb, NodeRef nb,
                                         bool same_configuration);

}  // namespace psa::rsg
