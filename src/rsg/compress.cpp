// COMPRESS (§3.1): summarization of C_NODES_RSG-compatible nodes.
#include <numeric>

#include "rsg/ops.hpp"
#include "support/metrics.hpp"

namespace psa::rsg {

namespace {

struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), NodeRef{0});
  }
  NodeRef find(NodeRef a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  }
  void unite(NodeRef a, NodeRef b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[b] = a;
  }
  std::vector<NodeRef> parent;
};

/// One summarization sweep; returns true when something was merged.
bool compress_once(Rsg& g, const LevelPolicy& policy) {
  const auto refs = g.node_refs();
  if (refs.size() < 2) return false;

  const auto ctx = compute_compat_contexts(g);
  UnionFind uf(g.node_capacity());
  bool any = false;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    for (std::size_t j = i + 1; j < refs.size(); ++j) {
      const NodeRef a = refs[i];
      const NodeRef b = refs[j];
      if (uf.find(a) == uf.find(b)) continue;
      if (c_nodes_rsg(g.props(a), ctx[a], g.props(b), ctx[b], policy)) {
        uf.unite(a, b);
        any = true;
      }
    }
  }
  if (!any) return false;

  // Collect the classes with more than one member.
  std::vector<std::vector<NodeRef>> classes(g.node_capacity());
  for (const NodeRef n : refs) classes[uf.find(n)].push_back(n);

  std::uint64_t merged_nodes = 0;
  for (const auto& members : classes) {
    if (members.size() < 2) continue;
    merged_nodes += members.size() - 1;
    const NodeRef rep = members[0];

    // MERGE_COMP_NODES: fold the members' properties pairwise, in ascending
    // node order, against the original graph's links.
    NodeProps merged = g.props(rep);
    Rsg snapshot = g;  // link context for the cycle-link merge rule
    for (std::size_t k = 1; k < members.size(); ++k) {
      // Accumulate into `rep` inside the snapshot so the k-th merge sees the
      // links of the already-merged group.
      const NodeRef other = members[k];
      merged = merge_node_props(snapshot, rep, snapshot, other,
                                /*same_configuration=*/true);
      for (const Link& l : snapshot.out_links(other))
        snapshot.add_link(rep, l.sel, l.target == other ? rep : l.target);
      for (const InLink& in : snapshot.in_links(other)) {
        if (in.source == other) continue;
        snapshot.add_link(in.source, in.sel, rep);
      }
      snapshot.props(rep) = merged;
      snapshot.remove_node(other);
    }

    // Apply to the real graph: remap all members' links and PL onto rep.
    for (std::size_t k = 1; k < members.size(); ++k) {
      const NodeRef other = members[k];
      for (const Link& l : g.out_links(other))
        g.add_link(rep, l.sel, l.target == other ? rep : l.target);
      for (const InLink& in : g.in_links(other)) {
        if (in.source == other) continue;
        g.add_link(in.source, in.sel, rep);
      }
      // Summarized nodes are never pvar-referenced (their zero-length SPATHs
      // would differ), so no PL rewrite is needed; remove_node asserts that
      // indirectly by dropping any stale PL entry.
      g.remove_node(other);
    }
    g.props(rep) = merged;
  }
  PSA_COUNT_N(support::Counter::kCompressMerges, merged_nodes);
  return true;
}

}  // namespace

void compress(Rsg& g, const LevelPolicy& policy) {
  PSA_COUNT(support::Counter::kCompressCalls);
  while (compress_once(g, policy)) {
  }
  g.gc();
  g.compact();
  g.refresh_footprint();
}

void coarsen(Rsg& g, const LevelPolicy& policy) {
  PSA_COUNT(support::Counter::kCoarsenCalls);
  const auto refs = g.node_refs();
  if (refs.size() < 2) return;

  // Partition by (TYPE, zero-length SPATH, SHARED, SHSEL). Distinct
  // pvar-reference sets stay separate, so pvar-pointed nodes keep their
  // identity (and their cardinality-one invariant: a pvar references exactly
  // one node); keeping the sharing bits in the key preserves the SHSEL
  // distinctions the paper's Fig. 3 conclusions rest on.
  UnionFind uf(g.node_capacity());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    for (std::size_t j = i + 1; j < refs.size(); ++j) {
      const NodeRef a = refs[i];
      const NodeRef b = refs[j];
      if (g.props(a).type != g.props(b).type) continue;
      if (g.props(a).shared != g.props(b).shared) continue;
      if (g.props(a).shsel != g.props(b).shsel) continue;
      // Freed and live locations stay apart even under this widening, so the
      // memory-safety checkers keep their precision through every governor
      // rung (merge_node_props would otherwise widen to kMaybeFreed and turn
      // each degradation into a flood of may-use-after-free findings).
      if (g.props(a).free_state != g.props(b).free_state) continue;
      if (g.spath0(a) != g.spath0(b)) continue;
      uf.unite(a, b);
    }
  }

  std::vector<std::vector<NodeRef>> classes(g.node_capacity());
  for (const NodeRef n : refs) classes[uf.find(n)].push_back(n);

  for (const auto& members : classes) {
    if (members.size() < 2) continue;
    const NodeRef rep = members[0];
    NodeProps merged = g.props(rep);
    for (std::size_t k = 1; k < members.size(); ++k) {
      const NodeRef other = members[k];
      merged = merge_node_props(g, rep, g, other, /*same_configuration=*/true);
      for (const Link& l : g.out_links(other))
        g.add_link(rep, l.sel, l.target == other ? rep : l.target);
      for (const InLink& in : g.in_links(other)) {
        if (in.source == other) continue;
        g.add_link(in.source, in.sel, rep);
      }
      g.props(rep) = merged;
      g.remove_node(other);
    }
  }

  refine_sharing(g);
  compress(g, policy);
}

bool drop_must_info(Rsg& g) {
  bool changed = false;
  for (const NodeRef n : g.node_refs()) {
    NodeProps& p = g.props(n);
    for (const Symbol s : p.selin) changed |= p.pos_selin.insert(s);
    for (const Symbol s : p.selout) changed |= p.pos_selout.insert(s);
    changed |= !p.selin.empty() || !p.selout.empty() ||
               !p.cyclelinks.empty() || !p.touch.empty();
    p.selin.clear();
    p.selout.clear();
    p.cyclelinks.clear();
    p.touch.clear();
  }
  return changed;
}

void summarize_region(Rsg& g, const std::vector<NodeRef>& region,
                      const std::vector<Symbol>& selectors,
                      const lang::TypeTable* types) {
  for (const NodeRef n : region) {
    NodeProps& p = g.props(n);
    // Region-scoped must-info demotion (drop_must_info restricted to the
    // region): the unknown code may have rewritten every field of these
    // cells, so no definite reference pattern survives.
    for (const Symbol s : p.selin) p.pos_selin.insert(s);
    for (const Symbol s : p.selout) p.pos_selout.insert(s);
    p.selin.clear();
    p.selout.clear();
    p.cyclelinks.clear();
    p.touch.clear();
    p.shared = true;
    for (const Symbol sel : selectors) p.shsel.insert(sel);
    // Pvar-referenced nodes keep cardinality one (a concrete store binds a
    // pvar to at most one location — the PL invariant, not a precision
    // claim); everything else becomes a summary.
    if (g.pvars_of(n).empty()) p.cardinality = Cardinality::kMany;
  }
  // Saturate the may-structure (see ops.hpp) within the region: every
  // *type-correct* link between region cells is present. Links from outside
  // the region into it survive untouched — the unknown code cannot create a
  // link whose *source* cell it cannot reach, so no outside-in saturation is
  // needed.
  if (types != nullptr) {
    for (const NodeRef a : region) {
      const lang::StructDecl& decl = types->struct_decl(g.props(a).type);
      for (const lang::Field& f : decl.fields) {
        if (!f.is_selector()) continue;
        g.props(a).pos_selout.insert(f.name);
        for (const NodeRef b : region) {
          if (g.props(b).type != *f.type.struct_id) continue;
          g.add_link(a, f.name, b);
          g.props(b).pos_selin.insert(f.name);
        }
      }
    }
  }
}

void summarize_top(Rsg& g, const LevelPolicy& policy,
                   const std::vector<Symbol>& selectors,
                   const lang::TypeTable* types) {
  PSA_COUNT(support::Counter::kSummarizeTopCalls);
  // The whole-graph collapse is the region collapse over every node...
  summarize_region(g, g.node_refs(), selectors, types);
  // ...followed by coarsening: with uniform sharing bits and no
  // must-information the partition degenerates to (TYPE, SPATH0) — one node
  // per struct type plus one per pvar-reference combination, the coarsest
  // graph for this ALIAS pattern. (Region-scoped callers skip this: coarsen
  // is a global operation and would collapse caller-private state too.)
  coarsen(g, policy);
}

}  // namespace psa::rsg
