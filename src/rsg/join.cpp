// COMPATIBLE / ALIAS / JOIN (§4, §4.3).
#include <numeric>

#include "rsg/ops.hpp"
#include "support/metrics.hpp"

namespace psa::rsg {

bool alias_equal(const Rsg& a, const Rsg& b) {
  const auto& pla = a.pvar_links();
  const auto& plb = b.pvar_links();
  if (pla.size() != plb.size()) return false;
  // Same bound pvars (both sorted).
  for (std::size_t i = 0; i < pla.size(); ++i)
    if (pla[i].first != plb[i].first) return false;
  // Same partition: pvars i and j alias in a iff they alias in b.
  for (std::size_t i = 0; i < pla.size(); ++i) {
    for (std::size_t j = i + 1; j < pla.size(); ++j) {
      const bool alias_a = pla[i].second == pla[j].second;
      const bool alias_b = plb[i].second == plb[j].second;
      if (alias_a != alias_b) return false;
    }
  }
  return true;
}

bool compatible_with_contexts(const Rsg& a,
                              const std::vector<NodeCompatContext>& ctx_a,
                              const Rsg& b,
                              const std::vector<NodeCompatContext>& ctx_b,
                              const LevelPolicy& policy) {
  if (!alias_equal(a, b)) return false;
  // COMP_NODES: the nodes referenced by the same pvar must be compatible.
  for (const auto& [pvar, na] : a.pvar_links()) {
    const NodeRef nb = b.pvar_target(pvar);
    if (!c_nodes(a.props(na), ctx_a[na], b.props(nb), ctx_b[nb], policy))
      return false;
  }
  return true;
}

bool compatible(const Rsg& a, const Rsg& b, const LevelPolicy& policy) {
  if (!alias_equal(a, b)) return false;
  return compatible_with_contexts(a, compute_compat_contexts(a), b,
                                  compute_compat_contexts(b), policy);
}

namespace {

struct UnionFind {
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), std::size_t{0});
  }
  std::size_t find(std::size_t a) {
    while (parent[a] != a) {
      parent[a] = parent[parent[a]];
      a = parent[a];
    }
    return a;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[b] = a;
  }
  std::vector<std::size_t> parent;
};

}  // namespace

namespace {

Rsg join_impl(const Rsg& a, const Rsg& b, const LevelPolicy& policy,
              bool force) {
  const auto refs_a = a.node_refs();
  const auto refs_b = b.node_refs();
  const auto ctx_a = compute_compat_contexts(a);
  const auto ctx_b = compute_compat_contexts(b);

  // Combined index space: [0, |A|) for a's nodes, [|A|, |A|+|B|) for b's.
  UnionFind uf(refs_a.size() + refs_b.size());
  for (std::size_t i = 0; i < refs_a.size(); ++i) {
    for (std::size_t j = 0; j < refs_b.size(); ++j) {
      const NodeRef na = refs_a[i];
      const NodeRef nb = refs_b[j];
      if (c_nodes(a.props(na), ctx_a[na], b.props(nb), ctx_b[nb], policy))
        uf.unite(i, refs_a.size() + j);
    }
  }
  if (force) {
    // Widening: the node pair referenced by each pvar must land in one class
    // so the result has a well-formed PL, whatever their properties.
    std::vector<std::size_t> index_a(a.node_capacity(), 0);
    for (std::size_t i = 0; i < refs_a.size(); ++i) index_a[refs_a[i]] = i;
    std::vector<std::size_t> index_b(b.node_capacity(), 0);
    for (std::size_t j = 0; j < refs_b.size(); ++j) index_b[refs_b[j]] = j;
    for (const auto& [pvar, na] : a.pvar_links()) {
      const NodeRef nb = b.pvar_target(pvar);
      uf.unite(index_a[na], refs_a.size() + index_b[nb]);
    }
  }

  // Gather classes.
  std::vector<std::vector<std::size_t>> classes(refs_a.size() + refs_b.size());
  for (std::size_t k = 0; k < classes.size(); ++k)
    classes[uf.find(k)].push_back(k);

  auto member_graph = [&](std::size_t k) -> const Rsg& {
    return k < refs_a.size() ? a : b;
  };
  auto member_ref = [&](std::size_t k) {
    return k < refs_a.size() ? refs_a[k] : refs_b[k - refs_a.size()];
  };

  Rsg out;
  // Graph-level salvage taint is sticky through every join.
  out.set_havoc(a.havoc() || b.havoc());
  std::vector<NodeRef> map(refs_a.size() + refs_b.size(), kNoNode);
  for (std::size_t rep = 0; rep < classes.size(); ++rep) {
    const auto& members = classes[rep];
    if (members.empty()) continue;

    // Fold the members' properties.
    NodeProps props = member_graph(members[0]).props(member_ref(members[0]));
    std::size_t from_a = members[0] < refs_a.size() ? 1 : 0;
    std::size_t from_b = 1 - from_a;
    for (std::size_t k = 1; k < members.size(); ++k) {
      const std::size_t m = members[k];
      (m < refs_a.size() ? from_a : from_b) += 1;
      // The cycle-link merge rule consults each node's own out-links in its
      // own graph; fold against a one-node scratch graph carrying `props`.
      Rsg scratch;
      const NodeRef sn = scratch.add_node(props);
      // Reconstruct the accumulated out-selector set: union over processed
      // members (sufficient for the has-out-selector test).
      for (std::size_t kk = 0; kk < k; ++kk) {
        const std::size_t mm = members[kk];
        for (const Link& l : member_graph(mm).out_links(member_ref(mm)))
          scratch.add_link(sn, l.sel, sn);
      }
      props = merge_node_props(scratch, sn, member_graph(m), member_ref(m),
                               /*same_configuration=*/false);
    }
    // Cardinality across configurations: `one` survives only when no single
    // configuration contributes two nodes and no member is a summary.
    if (from_a >= 2 || from_b >= 2) props.cardinality = Cardinality::kMany;
    for (const std::size_t m : members) {
      if (member_graph(m).props(member_ref(m)).cardinality == Cardinality::kMany)
        props.cardinality = Cardinality::kMany;
    }

    const NodeRef nn = out.add_node(std::move(props));
    for (const std::size_t m : members) map[m] = nn;
  }

  // Links: every link of either graph, remapped.
  auto import_links = [&](const Rsg& g, const std::vector<NodeRef>& refs,
                          std::size_t base) {
    std::vector<std::size_t> index_of(g.node_capacity(), 0);
    for (std::size_t i = 0; i < refs.size(); ++i) index_of[refs[i]] = base + i;
    for (std::size_t i = 0; i < refs.size(); ++i) {
      for (const Link& l : g.out_links(refs[i]))
        out.add_link(map[base + i], l.sel, map[index_of[l.target]]);
    }
  };
  import_links(a, refs_a, 0);
  import_links(b, refs_b, refs_a.size());

  // PL: COMPATIBLE guarantees the per-pvar targets landed in the same class.
  {
    std::vector<std::size_t> index_a(a.node_capacity(), 0);
    for (std::size_t i = 0; i < refs_a.size(); ++i) index_a[refs_a[i]] = i;
    for (const auto& [pvar, na] : a.pvar_links())
      out.bind_pvar(pvar, map[index_a[na]]);
  }

  compress(out, policy);
  out.refresh_footprint();
  return out;
}

}  // namespace

Rsg join(const Rsg& a, const Rsg& b, const LevelPolicy& policy) {
  return join_impl(a, b, policy, /*force=*/false);
}

Rsg force_join(const Rsg& a, const Rsg& b, const LevelPolicy& policy) {
  PSA_COUNT(support::Counter::kForceJoins);
  return join_impl(a, b, policy, /*force=*/true);
}

}  // namespace psa::rsg
