#include <algorithm>

#include "rsg/ops.hpp"
#include "support/metrics.hpp"

namespace psa::rsg {

bool refine_sharing(Rsg& g) {
  bool changed = false;
  for (const NodeRef n : g.node_refs()) {
    NodeProps& p = g.props(n);
    if (p.shared && g.max_in_refs_total(n) <= 1) {
      p.shared = false;
      changed = true;
    }
    if (!p.shsel.empty()) {
      SmallSet<Symbol> cleared;
      for (const Symbol sel : p.shsel) {
        if (g.max_in_refs(n, sel) <= 1) cleared.insert(sel);
      }
      for (const Symbol sel : cleared) {
        p.shsel.erase(sel);
        changed = true;
      }
    }
  }
  return changed;
}

namespace {

/// §4.2 example rule: "because node n3 is not shared by selector nxt and we
/// are sure that <n1,nxt,n3> exists, we can conclude that <n2,nxt,n3> should
/// be removed". Restricted to cardinality-one targets, where link counts
/// equal reference counts.
bool share_prune_links(Rsg& g) {
  bool changed = false;
  for (const NodeRef t : g.node_refs()) {
    const NodeProps& p = g.props(t);
    if (p.cardinality != Cardinality::kOne) continue;

    const auto incoming = g.in_links(t);

    // Per-selector rule via SHSEL(t, sel) = false.
    for (const InLink& definite : incoming) {
      if (p.shsel.contains(definite.sel)) continue;
      if (!g.definite_link(definite.source, definite.sel, t)) continue;
      for (const InLink& other : incoming) {
        if (other.sel != definite.sel) continue;
        if (other.source == definite.source) continue;
        if (g.remove_link(other.source, other.sel, t)) {
          PSA_COUNT(support::Counter::kPruneLinksRemoved);
          changed = true;
        }
      }
      // A self-link via the same selector is equally impossible.
      if (definite.source != t && g.remove_link(t, definite.sel, t)) {
        PSA_COUNT(support::Counter::kPruneLinksRemoved);
        changed = true;
      }
    }

    // All-selector rule via SHARED(t) = false: at most one heap reference in
    // total, so one definite link invalidates every other incoming link.
    if (!p.shared) {
      for (const InLink& definite : incoming) {
        if (!g.definite_link(definite.source, definite.sel, t)) continue;
        for (const InLink& other : incoming) {
          if (other.source == definite.source && other.sel == definite.sel)
            continue;
          if (g.remove_link(other.source, other.sel, t)) {
            PSA_COUNT(support::Counter::kPruneLinksRemoved);
            changed = true;
          }
        }
        break;
      }
    }
  }
  return changed;
}

/// NL_PRUNE (§4.2): a link <n1, sel_i, n2> contradicts a cycle link
/// <sel_i, sel_j> of n1 unless n2 links back to n1 via sel_j.
bool cyclelink_prune(Rsg& g) {
  bool changed = false;
  for (const NodeRef n1 : g.node_refs()) {
    const auto out = g.out_links(n1);  // copy: we mutate below
    for (const Link& l : out) {
      for (const SelPair cl : g.props(n1).cyclelinks) {
        if (cl.out != l.sel) continue;
        if (!g.has_link(l.target, cl.back, n1)) {
          if (g.remove_link(n1, l.sel, l.target)) {
            PSA_COUNT(support::Counter::kPruneLinksRemoved);
            changed = true;
          }
          break;
        }
      }
    }
  }
  return changed;
}

enum class NodePruneResult { kUnchanged, kChanged, kInfeasible };

/// N_PRUNE (§4.2): a node whose definite reference pattern cannot be
/// satisfied by the remaining links does not exist in this graph variant.
NodePruneResult refpat_prune(Rsg& g) {
  NodePruneResult result = NodePruneResult::kUnchanged;
  for (const NodeRef n : g.node_refs()) {
    const NodeProps& p = g.props(n);
    bool doomed = false;
    for (const Symbol sel : p.selout) {
      if (g.sel_targets(n, sel).empty()) {
        doomed = true;
        break;
      }
    }
    if (!doomed) {
      for (const Symbol sel : p.selin) {
        bool found = false;
        for (const InLink& in : g.in_links(n)) {
          if (in.sel == sel) {
            found = true;
            break;
          }
        }
        if (!found) {
          doomed = true;
          break;
        }
      }
    }
    if (doomed) {
      if (!g.pvars_of(n).empty()) return NodePruneResult::kInfeasible;
      g.remove_node(n);
      result = NodePruneResult::kChanged;
    }
  }
  return result;
}

}  // namespace

bool prune(Rsg& g, const PruneOptions& opts) {
  PSA_COUNT(support::Counter::kPruneCalls);
  // Counting sits on the structural mutations (remove_link/remove_node), one
  // tally flush per call — negligible next to the graph work itself.
  const std::uint64_t nodes_before = g.node_count();
  std::uint64_t iterations = 0;
  const auto flush = [&](bool infeasible) {
    PSA_COUNT_N(support::Counter::kPruneIterations, iterations);
    const std::uint64_t nodes_now = g.node_count();
    PSA_COUNT_N(support::Counter::kPruneNodesRemoved,
                nodes_before >= nodes_now ? nodes_before - nodes_now : 0);
    if (infeasible) PSA_COUNT(support::Counter::kPruneInfeasible);
  };
  for (;;) {
    ++iterations;
    bool changed = refine_sharing(g);
    if (opts.share_pruning) changed |= share_prune_links(g);
    changed |= cyclelink_prune(g);
    switch (refpat_prune(g)) {
      case NodePruneResult::kInfeasible:
        flush(/*infeasible=*/true);
        return false;
      case NodePruneResult::kChanged:
        changed = true;
        break;
      case NodePruneResult::kUnchanged:
        break;
    }
    changed |= g.gc();
    if (!changed) {
      flush(/*infeasible=*/false);
      return true;
    }
  }
}

std::vector<Rsg> divide(const Rsg& g, Symbol x, Symbol sel,
                        const PruneOptions& opts) {
  PSA_COUNT(support::Counter::kDivideCalls);
  std::vector<Rsg> out;
  const NodeRef n = g.pvar_target(x);
  if (n == kNoNode) return out;

  const auto targets = g.sel_targets(n, sel);

  // The "x->sel is NULL" variant exists whenever sel is not definite.
  if (!g.props(n).selout.contains(sel)) {
    Rsg variant = g;
    for (const NodeRef t : targets) variant.remove_link(n, sel, t);
    variant.props(n).pos_selout.erase(sel);
    if (prune(variant, opts)) out.push_back(std::move(variant));
  }

  // One variant per sel-target: that link becomes the unique, definite one.
  for (const NodeRef chosen : targets) {
    Rsg variant = g;
    for (const NodeRef t : targets) {
      if (t != chosen) variant.remove_link(n, sel, t);
    }
    variant.props(n).pos_selout.erase(sel);
    variant.props(n).selout.insert(sel);
    if (prune(variant, opts)) out.push_back(std::move(variant));
  }
  PSA_COUNT_N(support::Counter::kDivideVariants, out.size());
  return out;
}

std::vector<Materialized> materialize(const Rsg& g, NodeRef from, Symbol sel,
                                      const PruneOptions& opts) {
  PSA_COUNT(support::Counter::kMaterializeCalls);
  std::vector<Materialized> out;
  const auto targets = g.sel_targets(from, sel);
  if (targets.size() != 1) return out;  // caller must divide first
  const NodeRef m = targets[0];

  if (g.props(m).cardinality == Cardinality::kOne) {
    Materialized mat{g, m};
    if (prune(mat.graph, opts)) out.push_back(std::move(mat));
    PSA_COUNT_N(support::Counter::kMaterializeVariants, out.size());
    return out;
  }

  // Variant A — the summary denoted exactly one location: it simply becomes
  // cardinality-one. Self-links turn into possible self-cycles that the
  // pruning rules (share attributes, cycle links) cut when contradicted.
  {
    Materialized mat{g, m};
    mat.graph.props(m).cardinality = Cardinality::kOne;
    if (prune(mat.graph, opts)) {
      if (mat.graph.alive(m)) out.push_back(std::move(mat));
    }
  }

  // Variant B — more locations remain: extract a fresh cardinality-one node
  // m1 for the location from->sel denotes; m keeps representing the rest.
  {
    Rsg v = g;
    NodeProps one_props = v.props(m);
    one_props.cardinality = Cardinality::kOne;
    const NodeRef m1 = v.add_node(std::move(one_props));

    // The focused reference goes to m1.
    v.remove_link(from, sel, m);
    v.add_link(from, sel, m1);

    // Every other may-reference to the summary may denote the extracted
    // location as well.
    for (const InLink& in : g.in_links(m)) {
      if (in.source == from && in.sel == sel) continue;
      if (in.source == m) continue;  // self-links handled below
      v.add_link(in.source, in.sel, m1);
    }
    // The extracted location may point wherever the summary pointed.
    for (const Link& l : g.out_links(m)) {
      if (l.target == m) continue;  // self-links handled below
      v.add_link(m1, l.sel, l.target);
    }
    // A self-link of the summary may relate the extracted location and the
    // rest in either direction, or the location with itself.
    for (const Link& l : g.out_links(m)) {
      if (l.target != m) continue;
      v.add_link(m1, l.sel, m);
      v.add_link(m, l.sel, m1);
      v.add_link(m1, l.sel, m1);
    }

    Materialized mat{std::move(v), m1};
    if (prune(mat.graph, opts)) {
      if (mat.graph.alive(m1)) out.push_back(std::move(mat));
    }
  }

  PSA_COUNT_N(support::Counter::kMaterializeVariants, out.size());
  return out;
}

}  // namespace psa::rsg
