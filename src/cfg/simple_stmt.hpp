// The simple-statement IR the abstract interpreter executes.
//
// Section 2 of the paper: "We consider six simple instructions that deal with
// pointers: x = NULL, x = malloc, x = y, x->sel = NULL, x->sel = y, and
// x = y->sel. More complex pointer instructions can be built upon these
// simple ones and temporal variables."
//
// The CFG builder lowers every statement of the C subset onto these six (plus
// free(), which flips the target node's FREED property but leaves the shape
// untouched, and a handful of bookkeeping operations that carry no pointer
// semantics of their own: opaque scalar statements, branch points, the edge
// refinements assume(x==NULL)/assume(x!=NULL), and TOUCH-scope clearing at
// loop exits).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/types.hpp"
#include "support/diagnostics.hpp"
#include "support/interner.hpp"

namespace psa::cfg {

using lang::StructId;
using support::Symbol;

enum class SimpleOp : std::uint8_t {
  // The six pointer instructions of the paper.
  kPtrNull,      // x = NULL
  kPtrMalloc,    // x = malloc(struct T)
  kPtrCopy,      // x = y
  kStoreNull,    // x->sel = NULL
  kStore,        // x->sel = y
  kLoad,         // x = y->sel

  // Bookkeeping.
  kFree,         // free(x): marks the target node FREED (checker semantics)
  kFieldRead,    // <scalar> = x->sel (scalar field; no shape effect, kept
                 // for the dependence analysis of client passes)
  kFieldWrite,   // x->sel = <scalar> (likewise)
  kScalar,       // opaque scalar computation
  kBranch,       // condition evaluation point (opaque)
  kAssumeNull,   // edge refinement: x == NULL holds on this path
  kAssumeNotNull,// edge refinement: x != NULL holds on this path
  kTouchClear,   // leaving loop `loop_id`: drop its induction pvars from TOUCH
  kNop,          // entry/exit/join points

  // Salvage mode (docs/RESILIENCE.md): sound over-approximation of a
  // statement outside the analyzable subset.
  kHavoc,        // x valid: x = <unknown expr of struct `type`> — rebind x to
                 // any type-correct value. x invalid: an unknown call (or
                 // other opaque mutation) — every reachable cell may have
                 // been rewritten; the transfer saturates may-info and drops
                 // must-info (rsg::summarize_top).

  // Interprocedural analysis (docs/ALGORITHMS.md): a call to an in-unit
  // function. The transfer applies the callee's summary to the region of the
  // caller's heap reachable from the argument pvars; with no summary
  // available (extern, skipped callee, over-budget SCC) it falls back to the
  // kHavoc over-approximation.
  kCall,         // x = callee(args...) — x invalid for value-discarded calls
};

/// One executable statement of the lowered program.
struct SimpleStmt {
  SimpleOp op = SimpleOp::kNop;
  Symbol x;            // destination pvar / store base / assume subject
  Symbol y;            // source pvar (kPtrCopy, kStore, kLoad)
  Symbol sel;          // selector (kStoreNull, kStore, kLoad)
  StructId type{};     // kPtrMalloc: allocated struct; kCall: return struct
                       // (only meaningful when x is valid)
  std::uint32_t loop_id = 0;  // kTouchClear
  Symbol callee;              // kCall: in-unit function name
  std::vector<Symbol> args;   // kCall: struct-pointer arguments, in order
  support::SourceLoc loc;

  [[nodiscard]] bool is_pointer_op() const noexcept {
    switch (op) {
      case SimpleOp::kPtrNull:
      case SimpleOp::kPtrMalloc:
      case SimpleOp::kPtrCopy:
      case SimpleOp::kStoreNull:
      case SimpleOp::kStore:
      case SimpleOp::kLoad:
        return true;
      default:
        return false;
    }
  }
};

/// Pretty-print for reports and tests, e.g. "x->nxt = y".
[[nodiscard]] std::string to_string(const SimpleStmt& stmt,
                                    const support::Interner& interner);

}  // namespace psa::cfg
