#include "cfg/cfg.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace psa::cfg {

using lang::Expr;
using lang::ExprKind;
using lang::Stmt;
using lang::StmtKind;
using lang::Type;

NodeId Cfg::add_node(SimpleStmt stmt) {
  nodes_.push_back(CfgNode{std::move(stmt), {}, {}, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Cfg::add_edge(NodeId from, NodeId to) {
  nodes_[from].succs.push_back(to);
  nodes_[to].preds.push_back(from);
}

std::string Cfg::dump(const support::Interner& interner) const {
  std::ostringstream os;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const CfgNode& n = nodes_[id];
    os << '#' << id << ": " << to_string(n.stmt, interner) << "  ->";
    for (NodeId s : n.succs) os << ' ' << s;
    if (!n.loops.empty()) {
      os << "  [loops";
      for (auto l : n.loops) os << ' ' << l;
      os << ']';
    }
    os << '\n';
  }
  return os.str();
}

/// Builds the statement-level CFG for one function. Defined here (not in an
/// anonymous namespace) because it is the Cfg's friend.
class CfgBuilder {
 public:
  CfgBuilder(lang::TranslationUnit& unit, const lang::FunctionInfo& fn,
             support::DiagnosticEngine& diags)
      : unit_(unit), fn_(fn), diags_(diags) {}

  Cfg build() {
    cfg_.entry_ = fresh({SimpleOp::kNop, {}, {}, {}, {}, 0, {}});
    cursor_ = cfg_.entry_;
    cfg_.exit_ = fresh({SimpleOp::kNop, {}, {}, {}, {}, 0, {}});

    for (const auto& [sym, ty] : fn_.variables) {
      if (ty.is_struct_pointer()) cfg_.pvar_struct_[sym] = *ty.struct_id;
    }

    // Struct-pointer-returning functions materialize every `return expr` in
    // the reserved __ret pvar; callee summaries read it at the exit node.
    if (fn_.decl->return_type.is_struct_pointer()) {
      ret_struct_ = *fn_.decl->return_type.struct_id;
      ret_var_ = unit_.interner->intern("__ret");
      cfg_.pvar_struct_[ret_var_] = ret_struct_;
    }

    visit_stmt(*fn_.decl->body);
    if (cursor_ != kInvalidNode) cfg_.add_edge(cursor_, cfg_.exit_);

    // Final pvar list: declared pvars plus lowering temporaries.
    cfg_.pointer_vars_ = fn_.pointer_vars;
    for (const auto& t : temps_) cfg_.pointer_vars_.push_back(t);
    if (ret_var_.valid()) cfg_.pointer_vars_.push_back(ret_var_);
    std::sort(cfg_.pointer_vars_.begin(), cfg_.pointer_vars_.end());
    return std::move(cfg_);
  }

 private:
  struct LoopCtx {
    std::uint32_t id = 0;
    NodeId continue_target = kInvalidNode;
    std::vector<NodeId> break_sources;  // nodes whose successor is the exit
  };

  // -------------------------------------------------------------------------
  // Node emission
  // -------------------------------------------------------------------------

  NodeId fresh(SimpleStmt stmt) {
    const NodeId id = cfg_.add_node(std::move(stmt));
    cfg_.nodes_[id].loops = loop_stack_;
    for (auto lid : loop_stack_) {
      cfg_.loop_scopes_[lid - 1].members.push_back(id);
    }
    return id;
  }

  /// Append a node after the cursor (if reachable) and move the cursor.
  NodeId emit(SimpleStmt stmt) {
    const NodeId id = fresh(std::move(stmt));
    if (cursor_ != kInvalidNode) cfg_.add_edge(cursor_, id);
    cursor_ = id;
    return id;
  }

  SimpleStmt make(SimpleOp op, support::SourceLoc loc) {
    SimpleStmt s;
    s.op = op;
    s.loc = loc;
    return s;
  }

  // -------------------------------------------------------------------------
  // Temporaries
  // -------------------------------------------------------------------------

  Symbol new_temp(StructId type) {
    std::ostringstream os;
    os << "__t" << temp_counter_++;
    const Symbol sym = unit_.interner->intern(os.str());
    temps_.push_back(sym);
    cfg_.pvar_struct_[sym] = type;
    return sym;
  }

  void kill_temps(std::vector<Symbol>& kill_list, support::SourceLoc loc) {
    for (auto it = kill_list.rbegin(); it != kill_list.rend(); ++it) {
      SimpleStmt s = make(SimpleOp::kPtrNull, loc);
      s.x = *it;
      emit(std::move(s));
    }
    kill_list.clear();
  }

  // -------------------------------------------------------------------------
  // Expression lowering
  // -------------------------------------------------------------------------

  /// Lower a pointer access path (var or var->sel->...) to a single pvar,
  /// emitting Load temporaries as needed. Returns the invalid symbol on
  /// malformed input (already diagnosed by Sema).
  Symbol lower_path(const Expr& expr, std::vector<Symbol>& kill_list) {
    switch (expr.kind) {
      case ExprKind::kVarRef:
        return expr.name;
      case ExprKind::kCast:
        return lower_path(*expr.lhs, kill_list);
      case ExprKind::kFieldAccess: {
        const Symbol base = lower_path(*expr.lhs, kill_list);
        if (!base.valid()) return Symbol();
        if (!expr.type.is_struct_pointer()) {
          diags_.unsupported(expr.loc, "pointer path ends in a non-pointer field");
          return Symbol();
        }
        const Symbol t = new_temp(*expr.type.struct_id);
        kill_list.push_back(t);
        SimpleStmt s = make(SimpleOp::kLoad, expr.loc);
        s.x = t;
        s.y = base;
        s.sel = expr.name;
        emit(std::move(s));
        return t;
      }
      case ExprKind::kCall:
        // A summarizable call returning a struct pointer is a valid path
        // root: lower it into a temporary, e.g. `f(p)->nxt`.
        if (expr.summarizable && expr.type.is_struct_pointer()) {
          const Symbol t = new_temp(*expr.type.struct_id);
          kill_list.push_back(t);
          emit_call(expr, t, kill_list);
          return t;
        }
        diags_.unsupported(expr.loc, "expression is not a pointer access path");
        return Symbol();
      default:
        diags_.unsupported(expr.loc, "expression is not a pointer access path");
        return Symbol();
    }
  }

  /// Unwrap casts; returns the malloc expression when `e` is a (possibly
  /// cast) malloc, nullptr otherwise.
  static const Expr* as_malloc(const Expr& e) {
    if (e.kind == ExprKind::kMalloc) return &e;
    if (e.kind == ExprKind::kCast) return as_malloc(*e.lhs);
    return nullptr;
  }

  // -------------------------------------------------------------------------
  // Salvage mode: havoc lowering
  // -------------------------------------------------------------------------

  /// True when sema marked any node of this expression tree unsupported.
  static bool subtree_unsupported(const Expr& e) {
    if (e.unsupported) return true;
    if (e.lhs && subtree_unsupported(*e.lhs)) return true;
    if (e.rhs && subtree_unsupported(*e.rhs)) return true;
    for (const auto& a : e.args) {
      if (subtree_unsupported(*a)) return true;
    }
    return false;
  }

  /// True when the tree contains an unsupported call (sema marks the call
  /// itself when a struct pointer escapes into it — the unknown callee may
  /// then mutate anything reachable, so the statement needs a global havoc).
  static bool contains_unsupported_call(const Expr& e) {
    if (e.kind == ExprKind::kCall && e.unsupported) return true;
    if (e.lhs && contains_unsupported_call(*e.lhs)) return true;
    if (e.rhs && contains_unsupported_call(*e.rhs)) return true;
    for (const auto& a : e.args) {
      if (contains_unsupported_call(*a)) return true;
    }
    return false;
  }

  /// havoc(*): the statement may rewrite anything reachable; the transfer
  /// function collapses the graph to typed ⊤ and taints it.
  void emit_havoc_global(support::SourceLoc loc) {
    emit(make(SimpleOp::kHavoc, loc));
  }

  /// havoc(x): x is re-bound to an arbitrary type-correct value; the heap
  /// shape reachable from other pvars is preserved.
  void emit_havoc_rebind(Symbol x, StructId type, support::SourceLoc loc) {
    SimpleStmt s = make(SimpleOp::kHavoc, loc);
    s.x = x;
    s.type = type;
    emit(std::move(s));
  }

  static const Expr* strip_casts(const Expr& e) {
    return e.kind == ExprKind::kCast ? strip_casts(*e.lhs) : &e;
  }

  // -------------------------------------------------------------------------
  // Interprocedural calls
  // -------------------------------------------------------------------------

  /// The in-unit FunctionDecl sema resolved a summarizable call against.
  [[nodiscard]] const lang::FunctionDecl* find_callee(Symbol name) const {
    for (const auto& f : unit_.functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }

  /// True for a summarizable call whose lowering needs a kCall statement:
  /// it passes or returns struct pointers. Pure scalar in-unit calls have no
  /// caller-visible shape effect (the subset has no globals), so they stay
  /// opaque kScalar statements.
  static bool is_effect_call(const Expr& e) {
    if (e.kind != ExprKind::kCall || !e.summarizable) return false;
    if (e.type.is_struct_pointer()) return true;
    for (const auto& a : e.args) {
      if (a->type.is_struct_pointer()) return true;
    }
    return false;
  }

  static bool contains_effect_call(const Expr& e) {
    if (is_effect_call(e)) return true;
    if (e.lhs && contains_effect_call(*e.lhs)) return true;
    if (e.rhs && contains_effect_call(*e.rhs)) return true;
    for (const auto& a : e.args) {
      if (contains_effect_call(*a)) return true;
    }
    return false;
  }

  /// Lower one summarizable call to a kCall statement carrying the callee
  /// name and one pvar per struct-pointer argument. `dest` receives the
  /// return value (invalid for value-discarded calls). When an argument
  /// cannot be lowered to a pvar the call degrades to the PR 5 havoc
  /// over-approximation instead.
  void emit_call(const Expr& call, Symbol dest,
                 std::vector<Symbol>& kill_list) {
    const lang::FunctionDecl* callee = find_callee(call.name);
    if (callee == nullptr || callee->params.size() != call.args.size()) {
      // Sema guarantees resolution for summarizable calls; degrade soundly
      // if the invariant ever breaks.
      emit_havoc_global(call.loc);
      if (dest.valid()) {
        emit_havoc_rebind(dest, *call.type.struct_id, call.loc);
      }
      return;
    }
    SimpleStmt s = make(SimpleOp::kCall, call.loc);
    s.callee = call.name;
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      const Expr& arg = *call.args[i];
      if (!callee->params[i].type.is_struct_pointer()) {
        // Scalar argument: no region contribution, but it may read fields
        // and contain further summarizable calls of its own.
        lower_scalar_reads(arg, kill_list);
        continue;
      }
      const Expr* stripped = strip_casts(arg);
      Symbol a;
      if (stripped->kind == ExprKind::kNullLit) {
        a = new_temp(*callee->params[i].type.struct_id);
        kill_list.push_back(a);
        SimpleStmt sn = make(SimpleOp::kPtrNull, arg.loc);
        sn.x = a;
        emit(std::move(sn));
      } else if (const Expr* m = as_malloc(arg)) {
        a = new_temp(*m->type.struct_id);
        kill_list.push_back(a);
        SimpleStmt sm = make(SimpleOp::kPtrMalloc, arg.loc);
        sm.x = a;
        sm.type = *m->type.struct_id;
        emit(std::move(sm));
      } else {
        a = lower_path(*stripped, kill_list);
      }
      if (!a.valid()) {
        // Argument path unrecoverable: the callee may reach anything.
        emit_havoc_global(call.loc);
        if (dest.valid()) {
          emit_havoc_rebind(dest, *call.type.struct_id, call.loc);
        }
        return;
      }
      s.args.push_back(a);
    }
    if (dest.valid()) {
      s.x = dest;
      s.type = *call.type.struct_id;
    }
    emit(std::move(s));
  }

  // -------------------------------------------------------------------------
  // Assignments
  // -------------------------------------------------------------------------

  /// Emit kFieldRead markers for every scalar field read through a struct
  /// pointer inside `e` (client passes consume them; the shape transfer is
  /// the identity) and kCall statements for every summarizable call with
  /// pointer effects. Returns how many reads/calls were emitted.
  int lower_scalar_reads(const Expr& e, std::vector<Symbol>& kill_list) {
    switch (e.kind) {
      case ExprKind::kFieldAccess:
        if (!e.type.is_struct_pointer() && e.lhs->type.is_struct_pointer()) {
          const Symbol base = lower_path(*e.lhs, kill_list);
          if (base.valid()) {
            SimpleStmt s = make(SimpleOp::kFieldRead, e.loc);
            s.x = base;
            s.sel = e.name;
            emit(std::move(s));
            return 1;
          }
          return 0;
        }
        // Pointer-typed access in a scalar context: the base may still
        // contain a summarizable call whose effects must be applied.
        if (e.type.is_struct_pointer() && e.lhs != nullptr) {
          return lower_scalar_reads(*e.lhs, kill_list);
        }
        return 0;
      case ExprKind::kUnary:
      case ExprKind::kCast:
        return e.lhs ? lower_scalar_reads(*e.lhs, kill_list) : 0;
      case ExprKind::kBinary:
        return lower_scalar_reads(*e.lhs, kill_list) +
               lower_scalar_reads(*e.rhs, kill_list);
      case ExprKind::kCall: {
        if (is_effect_call(e)) {
          Symbol dest;
          if (e.type.is_struct_pointer()) {
            dest = new_temp(*e.type.struct_id);
            kill_list.push_back(dest);
          }
          emit_call(e, dest, kill_list);
          return 1;
        }
        int reads = 0;
        for (const auto& a : e.args) reads += lower_scalar_reads(*a, kill_list);
        return reads;
      }
      default:
        return 0;
    }
  }

  void lower_assign(const Expr& lhs, const Expr& rhs, support::SourceLoc loc) {
    const bool tainted = subtree_unsupported(lhs) || subtree_unsupported(rhs);
    const bool mutating =
        contains_unsupported_call(lhs) || contains_unsupported_call(rhs);

    if (!lhs.type.is_struct_pointer()) {
      if (tainted) {
        // Unsupported reads cannot change the heap shape; only an unknown
        // call that received a struct pointer can. Skip the field-access
        // markers — an unsupported path could register bogus selectors.
        if (mutating) {
          emit_havoc_global(loc);
        } else {
          emit(make(SimpleOp::kScalar, loc));
        }
        return;
      }
      // Scalar effect only: no shape change, but client passes need the
      // field accesses for dependence reasoning.
      std::vector<Symbol> kill_list;
      int accesses = lower_scalar_reads(rhs, kill_list);
      if (lhs.kind == ExprKind::kFieldAccess &&
          lhs.lhs->type.is_struct_pointer()) {
        const Symbol base = lower_path(*lhs.lhs, kill_list);
        if (base.valid()) {
          SimpleStmt s = make(SimpleOp::kFieldWrite, loc);
          s.x = base;
          s.sel = lhs.name;
          emit(std::move(s));
          ++accesses;
        }
      }
      if (accesses == 0) emit(make(SimpleOp::kScalar, loc));
      kill_temps(kill_list, loc);
      return;
    }

    if (tainted) {
      // Pointer assignment with an unsupported part. An unknown mutating
      // call first havocs everything it could reach; then, when the target
      // is a plain (supported) variable, the assignment itself is a sound
      // re-bind of just that variable. Any other target could write to an
      // arbitrary heap cell: global havoc.
      if (mutating) emit_havoc_global(loc);
      if (lhs.kind == ExprKind::kVarRef && !lhs.unsupported) {
        emit_havoc_rebind(lhs.name, *lhs.type.struct_id, loc);
      } else if (!mutating) {
        emit_havoc_global(loc);
      }
      return;
    }

    std::vector<Symbol> kill_list;

    if (lhs.kind == ExprKind::kVarRef) {
      const Symbol x = lhs.name;
      if (rhs.kind == ExprKind::kNullLit) {
        SimpleStmt s = make(SimpleOp::kPtrNull, loc);
        s.x = x;
        emit(std::move(s));
      } else if (const Expr* m = as_malloc(rhs)) {
        SimpleStmt s = make(SimpleOp::kPtrMalloc, loc);
        s.x = x;
        s.type = *m->type.struct_id;
        emit(std::move(s));
      } else {
        const Expr* src = strip_casts(rhs);
        if (src->kind == ExprKind::kVarRef) {
          SimpleStmt s = make(SimpleOp::kPtrCopy, loc);
          s.x = x;
          s.y = src->name;
          emit(std::move(s));
        } else if (src->kind == ExprKind::kFieldAccess) {
          // x = path->sel : lower the base, then a single Load into x.
          const Symbol base = lower_path(*src->lhs, kill_list);
          if (base.valid()) {
            SimpleStmt s = make(SimpleOp::kLoad, loc);
            s.x = x;
            s.y = base;
            s.sel = src->name;
            emit(std::move(s));
          } else if (diags_.salvage()) {
            // Source path unrecoverable: x still receives *some* value.
            emit_havoc_rebind(x, *lhs.type.struct_id, loc);
          }
        } else if (src->kind == ExprKind::kCall && src->summarizable &&
                   src->type.is_struct_pointer()) {
          // x = f(args): a kCall statement binds x from the callee summary.
          emit_call(*src, x, kill_list);
        } else {
          diags_.unsupported(rhs.loc, "unsupported pointer assignment source");
          if (diags_.salvage()) {
            emit_havoc_rebind(x, *lhs.type.struct_id, loc);
          }
        }
      }
    } else if (lhs.kind == ExprKind::kFieldAccess) {
      // path->sel = rhs. Evaluate the source first (C evaluation order is
      // unspecified here; sources are side-effect-free loads, so any order
      // is equivalent — we keep rhs-first so the store is always last).
      Symbol src;
      if (rhs.kind == ExprKind::kNullLit) {
        src = Symbol();  // StoreNull
      } else if (const Expr* m = as_malloc(rhs)) {
        src = new_temp(*m->type.struct_id);
        kill_list.push_back(src);
        SimpleStmt s = make(SimpleOp::kPtrMalloc, loc);
        s.x = src;
        s.type = *m->type.struct_id;
        emit(std::move(s));
      } else {
        src = lower_path(*strip_casts(rhs), kill_list);
        if (!src.valid()) {
          // Storing an unrecoverable source into a heap cell: any cell of
          // the written struct type could now hold anything.
          if (diags_.salvage()) emit_havoc_global(loc);
          kill_temps(kill_list, loc);
          return;
        }
      }

      const Symbol base = lower_path(*lhs.lhs, kill_list);
      if (base.valid()) {
        if (src.valid()) {
          SimpleStmt s = make(SimpleOp::kStore, loc);
          s.x = base;
          s.sel = lhs.name;
          s.y = src;
          emit(std::move(s));
        } else {
          SimpleStmt s = make(SimpleOp::kStoreNull, loc);
          s.x = base;
          s.sel = lhs.name;
          emit(std::move(s));
        }
      } else if (diags_.salvage()) {
        emit_havoc_global(loc);
      }
    } else {
      diags_.unsupported(lhs.loc, "unsupported assignment target");
      if (diags_.salvage()) emit_havoc_global(loc);
    }

    kill_temps(kill_list, loc);
  }

  // -------------------------------------------------------------------------
  // Conditions
  // -------------------------------------------------------------------------

  /// Lower a branch condition. Emits load temporaries + the kBranch node and
  /// returns the two successor entry nodes (each an assume or a nop), leaving
  /// `cursor_` invalid (callers wire both arms explicitly).
  struct Branch {
    NodeId then_entry;
    NodeId else_entry;
  };

  Branch lower_condition(const Expr& cond) {
    std::vector<Symbol> kill_list;
    if (contains_unsupported_call(cond)) {
      // Evaluating the condition calls unknown code with a struct pointer;
      // havoc before branching. The condition itself then classifies as
      // opaque below (unsupported subexpressions carry scalar types).
      emit_havoc_global(cond.loc);
    }
    bool force_opaque = false;
    if (contains_effect_call(cond)) {
      // Summarizable calls inside a condition: apply their heap effects
      // before branching, then treat the condition as opaque — once the
      // effects are separated the call result is no longer a refinable
      // null-test subject.
      lower_scalar_reads(cond, kill_list);
      force_opaque = true;
    }
    const auto arms = (subtree_unsupported(cond) || force_opaque)
                          ? CondShape{}
                          : classify_condition(cond, kill_list);
    const NodeId branch = emit(make(SimpleOp::kBranch, cond.loc));

    Branch out{};
    auto arm_node = [&](SimpleOp op, Symbol subject) {
      SimpleStmt s = make(op, cond.loc);
      s.x = subject;
      const NodeId id = fresh(std::move(s));
      cfg_.add_edge(branch, id);
      return id;
    };

    if (arms.subject.valid()) {
      out.then_entry = arm_node(
          arms.then_is_null ? SimpleOp::kAssumeNull : SimpleOp::kAssumeNotNull,
          arms.subject);
      out.else_entry = arm_node(
          arms.then_is_null ? SimpleOp::kAssumeNotNull : SimpleOp::kAssumeNull,
          arms.subject);
    } else {
      out.then_entry = arm_node(SimpleOp::kNop, Symbol());
      out.else_entry = arm_node(SimpleOp::kNop, Symbol());
    }

    // Condition temporaries die on both arms.
    for (NodeId* entry : {&out.then_entry, &out.else_entry}) {
      cursor_ = *entry;
      NodeId last = *entry;
      for (auto it = kill_list.rbegin(); it != kill_list.rend(); ++it) {
        SimpleStmt s = make(SimpleOp::kPtrNull, cond.loc);
        s.x = *it;
        last = emit(std::move(s));
      }
      *entry = *entry;  // entry stays the first node of the arm
      arm_tails_.push_back(last);
    }
    // Record tails so callers attach bodies after the kills.
    out_then_tail_ = arm_tails_[arm_tails_.size() - 2];
    out_else_tail_ = arm_tails_.back();
    arm_tails_.clear();
    cursor_ = kInvalidNode;
    return out;
  }

  /// The node each arm's body should be linked after (entry + temp kills).
  NodeId out_then_tail_ = kInvalidNode;
  NodeId out_else_tail_ = kInvalidNode;
  std::vector<NodeId> arm_tails_;

  struct CondShape {
    Symbol subject;          // invalid => opaque condition
    bool then_is_null = false;
  };

  /// Recognize NULL tests (p, !p, p == NULL, p != NULL, path->sel == NULL...)
  /// and emit the loads their access paths need.
  CondShape classify_condition(const Expr& cond, std::vector<Symbol>& kill_list) {
    switch (cond.kind) {
      case ExprKind::kVarRef:
      case ExprKind::kFieldAccess:
      case ExprKind::kCast: {
        if (cond.type.is_struct_pointer()) {
          const Symbol v = lower_path_for_condition(cond, kill_list);
          return CondShape{v, /*then_is_null=*/false};
        }
        return CondShape{};
      }
      case ExprKind::kUnary:
        if (cond.unary_op == lang::UnaryOp::kNot) {
          CondShape inner = classify_condition(*cond.lhs, kill_list);
          inner.then_is_null = !inner.then_is_null;
          return inner;
        }
        return CondShape{};
      case ExprKind::kBinary: {
        const bool is_eq = cond.binary_op == lang::BinaryOp::kEq;
        const bool is_ne = cond.binary_op == lang::BinaryOp::kNe;
        if (!is_eq && !is_ne) return CondShape{};
        const Expr* lhs = strip_casts(*cond.lhs);
        const Expr* rhs = strip_casts(*cond.rhs);
        const Expr* ptr_side = nullptr;
        if (lhs->kind == ExprKind::kNullLit &&
            rhs->type.is_struct_pointer()) {
          ptr_side = rhs;
        } else if (rhs->kind == ExprKind::kNullLit &&
                   lhs->type.is_struct_pointer()) {
          ptr_side = lhs;
        }
        if (ptr_side == nullptr) return CondShape{};
        const Symbol v = lower_path_for_condition(*ptr_side, kill_list);
        return CondShape{v, /*then_is_null=*/is_eq};
      }
      default:
        return CondShape{};
    }
  }

  Symbol lower_path_for_condition(const Expr& e, std::vector<Symbol>& kill_list) {
    const Expr* stripped = strip_casts(e);
    if (stripped->kind == ExprKind::kVarRef) return stripped->name;
    return lower_path(*stripped, kill_list);
  }

  // -------------------------------------------------------------------------
  // Statements
  // -------------------------------------------------------------------------

  void visit_stmt(const Stmt& stmt) {
    if (cursor_ == kInvalidNode && stmt.kind != StmtKind::kBlock) {
      // Unreachable code after break/continue/return: skip.
      return;
    }
    switch (stmt.kind) {
      case StmtKind::kDecl:
        for (const auto& d : stmt.decls) {
          if (!d.init) {
            // Pointer locals start unbound — emit an explicit kill so the
            // analysis state is well-defined even without initializer.
            if (d.type.is_struct_pointer()) {
              SimpleStmt s = make(SimpleOp::kPtrNull, d.loc);
              s.x = d.name;
              emit(std::move(s));
            }
            continue;
          }
          Expr lhs_ref;
          lhs_ref.kind = ExprKind::kVarRef;
          lhs_ref.loc = d.loc;
          lhs_ref.name = d.name;
          lhs_ref.type = d.type;
          lower_assign(lhs_ref, *d.init, d.loc);
        }
        break;
      case StmtKind::kAssign:
        lower_assign(*stmt.lhs, *stmt.rhs, stmt.loc);
        break;
      case StmtKind::kExpr:
        if (contains_unsupported_call(*stmt.lhs)) {
          emit_havoc_global(stmt.loc);
        } else if (contains_effect_call(*stmt.lhs)) {
          // Value-discarded summarizable call(s), e.g. `append(l, n);`.
          std::vector<Symbol> kill_list;
          if (lower_scalar_reads(*stmt.lhs, kill_list) == 0) {
            emit(make(SimpleOp::kScalar, stmt.loc));
          }
          kill_temps(kill_list, stmt.loc);
        } else {
          emit(make(SimpleOp::kScalar, stmt.loc));
        }
        break;
      case StmtKind::kFree: {
        std::vector<Symbol> kill_list;
        if (subtree_unsupported(*stmt.lhs)) {
          // free() of an unsupported path: some cell may be released and the
          // path evaluation may call unknown code. (The salvage envelope
          // documents that havoc'd frees are modeled as leaks, not
          // deallocations — see docs/RESILIENCE.md.)
          emit_havoc_global(stmt.loc);
          break;
        }
        if (stmt.lhs->type.is_struct_pointer()) {
          const Symbol v = lower_path_for_condition(*stmt.lhs, kill_list);
          SimpleStmt s = make(SimpleOp::kFree, stmt.loc);
          s.x = v;
          emit(std::move(s));
        } else {
          emit(make(SimpleOp::kScalar, stmt.loc));
        }
        kill_temps(kill_list, stmt.loc);
        break;
      }
      case StmtKind::kBlock:
        for (const auto& s : stmt.body) visit_stmt(*s);
        break;
      case StmtKind::kIf:
        visit_if(stmt);
        break;
      case StmtKind::kWhile:
        visit_while(stmt);
        break;
      case StmtKind::kDoWhile:
        visit_do_while(stmt);
        break;
      case StmtKind::kFor:
        visit_for(stmt);
        break;
      case StmtKind::kReturn:
        if (stmt.lhs != nullptr) {
          if (ret_var_.valid()) {
            lower_return_value(*stmt.lhs, stmt.loc);
          } else if (contains_unsupported_call(*stmt.lhs)) {
            emit_havoc_global(stmt.loc);
          } else if (contains_effect_call(*stmt.lhs)) {
            std::vector<Symbol> kill_list;
            if (lower_scalar_reads(*stmt.lhs, kill_list) == 0) {
              emit(make(SimpleOp::kScalar, stmt.loc));
            }
            kill_temps(kill_list, stmt.loc);
          } else {
            emit(make(SimpleOp::kScalar, stmt.loc));
          }
        }
        if (cursor_ != kInvalidNode) cfg_.add_edge(cursor_, cfg_.exit_);
        cursor_ = kInvalidNode;
        break;
      case StmtKind::kBreak:
        if (loop_ctx_.empty()) {
          diags_.error(stmt.loc, "'break' outside of a loop");
        } else if (cursor_ != kInvalidNode) {
          loop_ctx_.back().break_sources.push_back(cursor_);
        }
        cursor_ = kInvalidNode;
        break;
      case StmtKind::kContinue:
        if (loop_ctx_.empty()) {
          diags_.error(stmt.loc, "'continue' outside of a loop");
        } else if (cursor_ != kInvalidNode) {
          cfg_.add_edge(cursor_, loop_ctx_.back().continue_target);
        }
        cursor_ = kInvalidNode;
        break;
      case StmtKind::kEmpty:
        break;
    }
  }

  /// `return expr;` in a struct-pointer-returning function: materialize the
  /// value in the reserved __ret pvar so a caller's summary can read it.
  void lower_return_value(const Expr& value, support::SourceLoc loc) {
    Expr ref;
    ref.kind = ExprKind::kVarRef;
    ref.loc = loc;
    ref.name = ret_var_;
    ref.type = fn_.decl->return_type;

    const Expr* m = as_malloc(value);
    const bool typed_ok =
        value.kind == ExprKind::kNullLit ||
        (m != nullptr && m->type.is_struct_pointer() &&
         *m->type.struct_id == ret_struct_) ||
        (value.type.is_struct_pointer() &&
         *value.type.struct_id == ret_struct_);
    if (subtree_unsupported(value) || typed_ok) {
      lower_assign(ref, value, loc);
      return;
    }
    // Returning a scalar or mistyped value from a pointer function: __ret
    // holds an unknown value of the declared type.
    emit_havoc_rebind(ret_var_, ret_struct_, loc);
  }

  void visit_if(const Stmt& stmt) {
    const Branch br = lower_condition(*stmt.cond);
    const NodeId then_tail = out_then_tail_;
    const NodeId else_tail = out_else_tail_;

    const NodeId join = fresh(make(SimpleOp::kNop, stmt.loc));

    cursor_ = then_tail;
    visit_stmt(*stmt.then_body);
    if (cursor_ != kInvalidNode) cfg_.add_edge(cursor_, join);

    cursor_ = else_tail;
    if (stmt.else_body != nullptr) visit_stmt(*stmt.else_body);
    if (cursor_ != kInvalidNode) cfg_.add_edge(cursor_, join);

    cursor_ = join;
    (void)br;
  }

  std::uint32_t open_loop(support::SourceLoc loc) {
    LoopScope scope;
    scope.id = static_cast<std::uint32_t>(cfg_.loop_scopes_.size() + 1);
    scope.loc = loc;
    cfg_.loop_scopes_.push_back(scope);
    loop_stack_.push_back(scope.id);
    return scope.id;
  }

  void close_loop() { loop_stack_.pop_back(); }

  void visit_while(const Stmt& stmt) {
    const std::uint32_t loop_id = open_loop(stmt.loc);

    const NodeId head = emit(make(SimpleOp::kNop, stmt.loc));
    cfg_.loop_scopes_[loop_id - 1].header = head;

    loop_ctx_.push_back(LoopCtx{loop_id, head, {}});

    const Branch br = lower_condition(*stmt.cond);
    const NodeId then_tail = out_then_tail_;
    const NodeId else_tail = out_else_tail_;

    cursor_ = then_tail;
    visit_stmt(*stmt.then_body);
    if (cursor_ != kInvalidNode) cfg_.add_edge(cursor_, head);

    close_loop();

    SimpleStmt clear = make(SimpleOp::kTouchClear, stmt.loc);
    clear.loop_id = loop_id;
    const NodeId touch_clear = fresh(std::move(clear));
    cfg_.add_edge(else_tail, touch_clear);
    for (NodeId b : loop_ctx_.back().break_sources)
      cfg_.add_edge(b, touch_clear);
    loop_ctx_.pop_back();

    cursor_ = touch_clear;
    (void)br;
  }

  void visit_do_while(const Stmt& stmt) {
    const std::uint32_t loop_id = open_loop(stmt.loc);

    const NodeId head = emit(make(SimpleOp::kNop, stmt.loc));
    cfg_.loop_scopes_[loop_id - 1].header = head;

    // continue in a do-while jumps to the condition; a marker collects it.
    const NodeId cond_entry = fresh(make(SimpleOp::kNop, stmt.loc));
    loop_ctx_.push_back(LoopCtx{loop_id, cond_entry, {}});

    visit_stmt(*stmt.then_body);
    if (cursor_ != kInvalidNode) cfg_.add_edge(cursor_, cond_entry);

    cursor_ = cond_entry;
    const Branch br = lower_condition(*stmt.cond);
    const NodeId then_tail = out_then_tail_;
    const NodeId else_tail = out_else_tail_;
    cfg_.add_edge(then_tail, head);

    close_loop();

    SimpleStmt clear = make(SimpleOp::kTouchClear, stmt.loc);
    clear.loop_id = loop_id;
    const NodeId touch_clear = fresh(std::move(clear));
    cfg_.add_edge(else_tail, touch_clear);
    for (NodeId b : loop_ctx_.back().break_sources)
      cfg_.add_edge(b, touch_clear);
    loop_ctx_.pop_back();

    cursor_ = touch_clear;
    (void)br;
  }

  void visit_for(const Stmt& stmt) {
    if (stmt.init != nullptr) visit_stmt(*stmt.init);

    const std::uint32_t loop_id = open_loop(stmt.loc);
    const NodeId head = emit(make(SimpleOp::kNop, stmt.loc));
    cfg_.loop_scopes_[loop_id - 1].header = head;

    // continue in a for-loop jumps to the step; a marker collects it.
    const NodeId step_entry = fresh(make(SimpleOp::kNop, stmt.loc));
    loop_ctx_.push_back(LoopCtx{loop_id, step_entry, {}});

    NodeId then_tail = head;
    NodeId else_tail = kInvalidNode;
    if (stmt.cond != nullptr) {
      const Branch br = lower_condition(*stmt.cond);
      then_tail = out_then_tail_;
      else_tail = out_else_tail_;
      (void)br;
    }

    cursor_ = then_tail;
    visit_stmt(*stmt.then_body);
    if (cursor_ != kInvalidNode) cfg_.add_edge(cursor_, step_entry);

    cursor_ = step_entry;
    if (stmt.step != nullptr) visit_stmt(*stmt.step);
    if (cursor_ != kInvalidNode) cfg_.add_edge(cursor_, head);

    close_loop();

    SimpleStmt clear = make(SimpleOp::kTouchClear, stmt.loc);
    clear.loop_id = loop_id;
    const NodeId touch_clear = fresh(std::move(clear));
    if (else_tail != kInvalidNode) cfg_.add_edge(else_tail, touch_clear);
    for (NodeId b : loop_ctx_.back().break_sources)
      cfg_.add_edge(b, touch_clear);
    loop_ctx_.pop_back();

    cursor_ = touch_clear;
    // An infinite `for(;;)` with no breaks leaves touch_clear unreachable;
    // downstream passes skip unreachable nodes.
  }

  lang::TranslationUnit& unit_;
  const lang::FunctionInfo& fn_;
  support::DiagnosticEngine& diags_;
  Cfg cfg_;
  NodeId cursor_ = kInvalidNode;
  std::vector<std::uint32_t> loop_stack_;
  std::vector<LoopCtx> loop_ctx_;
  std::vector<Symbol> temps_;
  int temp_counter_ = 0;
  Symbol ret_var_;          // valid only for struct-pointer-returning functions
  StructId ret_struct_{};
};

Cfg build_cfg(lang::TranslationUnit& unit, const lang::FunctionInfo& fn,
              support::DiagnosticEngine& diags) {
  CfgBuilder builder(unit, fn, diags);
  return builder.build();
}

}  // namespace psa::cfg
