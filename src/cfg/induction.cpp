#include "cfg/induction.hpp"

#include <algorithm>

namespace psa::cfg {

namespace {

/// One pointer definition inside a loop body: x = y (deref_count 0) or
/// x = y->sel (deref_count 1).
struct Def {
  Symbol x;
  Symbol y;
  int deref_count = 0;
};

/// True when `target` is backward-reachable from `start` through `defs`
/// accumulating at least one dereference.
bool derives_with_deref(Symbol start, Symbol target,
                        const std::vector<Def>& defs) {
  // State: (var, saw_deref). BFS over the use->def relation.
  struct State {
    Symbol var;
    bool deref;
    bool operator==(const State&) const = default;
  };
  std::vector<State> work{{start, false}};
  std::vector<State> seen = work;
  while (!work.empty()) {
    const State s = work.back();
    work.pop_back();
    for (const Def& d : defs) {
      if (d.x != s.var) continue;
      const State n{d.y, s.deref || d.deref_count > 0};
      if (n.var == target && n.deref) return true;
      if (std::find(seen.begin(), seen.end(), n) == seen.end()) {
        seen.push_back(n);
        work.push_back(n);
      }
    }
  }
  return false;
}

}  // namespace

InductionInfo detect_induction_pvars(const Cfg& cfg) {
  InductionInfo info;

  for (const LoopScope& loop : cfg.loop_scopes()) {
    // Gather the pointer definitions of the loop body.
    std::vector<Def> defs;
    std::vector<Symbol> defined;
    for (const NodeId id : loop.members) {
      const SimpleStmt& s = cfg.node(id).stmt;
      if (s.op == SimpleOp::kPtrCopy) {
        defs.push_back(Def{s.x, s.y, 0});
        defined.push_back(s.x);
      } else if (s.op == SimpleOp::kLoad) {
        defs.push_back(Def{s.x, s.y, 1});
        defined.push_back(s.x);
      }
    }
    std::sort(defined.begin(), defined.end());
    defined.erase(std::unique(defined.begin(), defined.end()), defined.end());

    // Seed: self-deriving pvars (x = x->sel... through copies).
    std::vector<Symbol> induction;
    for (const Symbol x : defined) {
      if (derives_with_deref(x, x, defs)) induction.push_back(x);
    }

    // Propagate: x defined as a (≥1-deref) derivation of an induction pvar.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Symbol x : defined) {
        if (std::binary_search(induction.begin(), induction.end(), x)) continue;
        for (const Symbol base : induction) {
          if (x != base && derives_with_deref(x, base, defs)) {
            induction.push_back(x);
            std::sort(induction.begin(), induction.end());
            changed = true;
            break;
          }
        }
      }
    }

    if (!induction.empty()) info.per_loop.emplace(loop.id, std::move(induction));
  }
  return info;
}

}  // namespace psa::cfg
