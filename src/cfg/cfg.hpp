// Statement-level control-flow graph.
//
// The paper assigns one RSRSG to every *sentence*; the natural CFG
// granularity is therefore one node per lowered simple statement. Loops are
// recorded structurally during construction (the subset has structured
// control flow only), which gives the TOUCH machinery its loop scopes
// without a separate dominator pass — a dominator-based natural-loop
// verifier lives in loops.hpp for cross-checking and for client analyses.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cfg/simple_stmt.hpp"
#include "lang/ast.hpp"
#include "lang/sema.hpp"

namespace psa::cfg {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct CfgNode {
  SimpleStmt stmt;
  std::vector<NodeId> succs;
  std::vector<NodeId> preds;
  /// Ids of the loops this node is (statically) nested in, outermost first.
  std::vector<std::uint32_t> loops;
};

/// Static description of one loop in the function.
struct LoopScope {
  std::uint32_t id = 0;
  NodeId header = kInvalidNode;      // the branch node that tests the loop
  std::vector<NodeId> members;       // nodes inside the loop (incl. header)
  support::SourceLoc loc;
};

class Cfg {
 public:
  [[nodiscard]] NodeId entry() const noexcept { return entry_; }
  [[nodiscard]] NodeId exit() const noexcept { return exit_; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const CfgNode& node(NodeId id) const { return nodes_[id]; }
  [[nodiscard]] const std::vector<CfgNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<LoopScope>& loop_scopes() const noexcept {
    return loop_scopes_;
  }

  /// The pvars of the function, including lowering temporaries (sorted).
  [[nodiscard]] const std::vector<Symbol>& pointer_vars() const noexcept {
    return pointer_vars_;
  }

  /// Struct-pointer pointee type per pvar (parallel to variables map).
  [[nodiscard]] const std::unordered_map<Symbol, lang::StructId>&
  pvar_struct() const noexcept {
    return pvar_struct_;
  }

  /// Innermost loop containing `id`, or 0 when outside every loop.
  [[nodiscard]] std::uint32_t innermost_loop(NodeId id) const {
    const auto& l = nodes_[id].loops;
    return l.empty() ? 0 : l.back();
  }

  [[nodiscard]] std::string dump(const support::Interner& interner) const;

 private:
  friend class CfgBuilder;

  NodeId add_node(SimpleStmt stmt);
  void add_edge(NodeId from, NodeId to);

  std::vector<CfgNode> nodes_;
  std::vector<LoopScope> loop_scopes_;
  std::vector<Symbol> pointer_vars_;
  std::unordered_map<Symbol, lang::StructId> pvar_struct_;
  NodeId entry_ = kInvalidNode;
  NodeId exit_ = kInvalidNode;
};

/// Build the statement-level CFG of `fn`. Lowers every pointer statement to
/// the six simple instructions, inserting `__tN` temporaries (registered as
/// pvars) and killing them immediately after their last use.
[[nodiscard]] Cfg build_cfg(lang::TranslationUnit& unit,
                            const lang::FunctionInfo& fn,
                            support::DiagnosticEngine& diags);

}  // namespace psa::cfg
