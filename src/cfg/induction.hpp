// Induction-pvar detection (the preprocessing pass of §3 of the paper).
//
// "only those pvars which are used to traverse dynamic data structures
//  (called induction pointers by Yuan-Shin Hwang) are eligible to be
//  included in the [TOUCH] set" — the paper bases the pass on Access Path
// Expressions (Hwang & Saltz, LCPC'97).
//
// Reconstruction: within a loop L, a pvar x is an *induction pvar* when one
// of its definitions inside L derives, through the loop's definitions, from
// x itself with at least one selector dereference (x = x->sel, possibly
// through copies and temporaries), or derives with at least one dereference
// from another induction pvar of L (this covers stack-assisted traversals:
// `s = S->node` where S itself walks the stack, as in the paper's inlined
// Barnes-Hut). Computed as a fixed point; the result over-approximates
// (flow-insensitive within the body), which only ever *adds* TOUCH
// distinctions and therefore costs memory, never soundness.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cfg/cfg.hpp"

namespace psa::cfg {

/// Induction pvars per loop id (1-based, matching Cfg::loop_scopes()).
struct InductionInfo {
  /// induction_pvars[loop_id] — sorted set of pvars.
  std::unordered_map<std::uint32_t, std::vector<Symbol>> per_loop;

  [[nodiscard]] bool is_induction(std::uint32_t loop_id, Symbol pvar) const {
    auto it = per_loop.find(loop_id);
    if (it == per_loop.end()) return false;
    return std::binary_search(it->second.begin(), it->second.end(), pvar);
  }
};

[[nodiscard]] InductionInfo detect_induction_pvars(const Cfg& cfg);

}  // namespace psa::cfg
