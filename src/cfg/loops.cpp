#include "cfg/loops.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace psa::cfg {

DominatorTree::DominatorTree(const Cfg& cfg)
    : idom_(cfg.size(), kInvalidNode), rpo_index_(cfg.size(), 0) {
  // Depth-first postorder from the entry.
  std::vector<NodeId> postorder;
  postorder.reserve(cfg.size());
  std::vector<std::uint8_t> state(cfg.size(), 0);  // 0=new 1=open 2=done
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(cfg.entry(), 0);
  state[cfg.entry()] = 1;
  while (!stack.empty()) {
    auto& [id, next] = stack.back();
    const auto& succs = cfg.node(id).succs;
    if (next < succs.size()) {
      const NodeId s = succs[next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[id] = 2;
      postorder.push_back(id);
      stack.pop_back();
    }
  }

  rpo_.assign(postorder.rbegin(), postorder.rend());
  std::vector<std::uint32_t> po_index(cfg.size(), 0);
  for (std::uint32_t i = 0; i < postorder.size(); ++i)
    po_index[postorder[i]] = i;
  for (std::uint32_t i = 0; i < rpo_.size(); ++i) rpo_index_[rpo_[i]] = i;

  // Cooper/Harvey/Kennedy iterative dominators.
  idom_[cfg.entry()] = cfg.entry();
  auto intersect = [&](NodeId a, NodeId b) {
    while (a != b) {
      while (po_index[a] < po_index[b]) a = idom_[a];
      while (po_index[b] < po_index[a]) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const NodeId id : rpo_) {
      if (id == cfg.entry()) continue;
      NodeId new_idom = kInvalidNode;
      for (const NodeId p : cfg.node(id).preds) {
        if (idom_[p] == kInvalidNode) continue;  // pred not yet processed
        new_idom = new_idom == kInvalidNode ? p : intersect(p, new_idom);
      }
      if (new_idom != kInvalidNode && idom_[id] != new_idom) {
        idom_[id] = new_idom;
        changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(NodeId a, NodeId b) const {
  if (!reachable(a) || !reachable(b)) return false;
  NodeId cur = b;
  for (;;) {
    if (cur == a) return true;
    const NodeId up = idom_[cur];
    if (up == cur) return false;  // reached the entry
    cur = up;
  }
}

std::vector<NaturalLoop> compute_natural_loops(const Cfg& cfg) {
  const DominatorTree dom(cfg);

  // Collect back edges grouped by header.
  std::map<NodeId, std::vector<NodeId>> back_edges;  // header -> sources
  for (NodeId id = 0; id < cfg.size(); ++id) {
    if (!dom.reachable(id)) continue;
    for (const NodeId s : cfg.node(id).succs) {
      if (dom.dominates(s, id)) back_edges[s].push_back(id);
    }
  }

  std::vector<NaturalLoop> loops;
  for (const auto& [header, sources] : back_edges) {
    NaturalLoop loop;
    loop.header = header;
    std::vector<std::uint8_t> in_loop(cfg.size(), 0);
    in_loop[header] = 1;
    std::vector<NodeId> worklist;
    for (const NodeId src : sources) {
      if (!in_loop[src]) {
        in_loop[src] = 1;
        worklist.push_back(src);
      }
    }
    while (!worklist.empty()) {
      const NodeId n = worklist.back();
      worklist.pop_back();
      for (const NodeId p : cfg.node(n).preds) {
        if (!dom.reachable(p) || in_loop[p]) continue;
        in_loop[p] = 1;
        worklist.push_back(p);
      }
    }
    for (NodeId id = 0; id < cfg.size(); ++id) {
      if (!in_loop[id]) continue;
      loop.body.push_back(id);
      for (const NodeId s : cfg.node(id).succs) {
        if (!in_loop[s]) loop.exit_edges.emplace_back(id, s);
      }
    }
    loops.push_back(std::move(loop));
  }
  return loops;
}

}  // namespace psa::cfg
