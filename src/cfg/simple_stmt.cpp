#include "cfg/simple_stmt.hpp"

#include <sstream>

namespace psa::cfg {

std::string to_string(const SimpleStmt& stmt, const support::Interner& in) {
  std::ostringstream os;
  switch (stmt.op) {
    case SimpleOp::kPtrNull:
      os << in.spelling(stmt.x) << " = NULL";
      break;
    case SimpleOp::kPtrMalloc:
      os << in.spelling(stmt.x) << " = malloc";
      break;
    case SimpleOp::kPtrCopy:
      os << in.spelling(stmt.x) << " = " << in.spelling(stmt.y);
      break;
    case SimpleOp::kStoreNull:
      os << in.spelling(stmt.x) << "->" << in.spelling(stmt.sel) << " = NULL";
      break;
    case SimpleOp::kStore:
      os << in.spelling(stmt.x) << "->" << in.spelling(stmt.sel) << " = "
         << in.spelling(stmt.y);
      break;
    case SimpleOp::kLoad:
      os << in.spelling(stmt.x) << " = " << in.spelling(stmt.y) << "->"
         << in.spelling(stmt.sel);
      break;
    case SimpleOp::kFree:
      os << "free(" << in.spelling(stmt.x) << ")";
      break;
    case SimpleOp::kFieldRead:
      os << "<read " << in.spelling(stmt.x) << "->" << in.spelling(stmt.sel)
         << ">";
      break;
    case SimpleOp::kFieldWrite:
      os << "<write " << in.spelling(stmt.x) << "->" << in.spelling(stmt.sel)
         << ">";
      break;
    case SimpleOp::kScalar:
      os << "<scalar>";
      break;
    case SimpleOp::kBranch:
      os << "<branch>";
      break;
    case SimpleOp::kAssumeNull:
      os << "assume(" << in.spelling(stmt.x) << " == NULL)";
      break;
    case SimpleOp::kAssumeNotNull:
      os << "assume(" << in.spelling(stmt.x) << " != NULL)";
      break;
    case SimpleOp::kTouchClear:
      os << "<touch-clear loop " << stmt.loop_id << ">";
      break;
    case SimpleOp::kNop:
      os << "<nop>";
      break;
    case SimpleOp::kHavoc:
      if (stmt.x.valid()) {
        os << "havoc(" << in.spelling(stmt.x) << ")";
      } else {
        os << "havoc(*)";
      }
      break;
    case SimpleOp::kCall: {
      if (stmt.x.valid()) os << in.spelling(stmt.x) << " = ";
      os << "call " << in.spelling(stmt.callee) << "(";
      for (std::size_t i = 0; i < stmt.args.size(); ++i) {
        if (i != 0) os << ", ";
        os << in.spelling(stmt.args[i]);
      }
      os << ")";
      break;
    }
  }
  return os.str();
}

}  // namespace psa::cfg
