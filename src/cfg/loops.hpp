// Dominator tree and natural-loop computation over the statement-level CFG.
//
// The CFG builder already records loop scopes structurally; this pass
// recomputes loops from first principles (iterative dominators + back-edge
// natural loops) so tests can cross-check the two, and so client analyses
// (the parallelism detector) can reason about loops without trusting the
// builder's bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/cfg.hpp"

namespace psa::cfg {

class DominatorTree {
 public:
  explicit DominatorTree(const Cfg& cfg);

  /// Immediate dominator of `id` (entry's idom is itself). Unreachable nodes
  /// report kInvalidNode.
  [[nodiscard]] NodeId idom(NodeId id) const { return idom_[id]; }

  [[nodiscard]] bool dominates(NodeId a, NodeId b) const;
  [[nodiscard]] bool reachable(NodeId id) const {
    return idom_[id] != kInvalidNode;
  }

  /// Reverse-postorder of the reachable nodes.
  [[nodiscard]] const std::vector<NodeId>& rpo() const noexcept { return rpo_; }

 private:
  std::vector<NodeId> idom_;
  std::vector<NodeId> rpo_;
  std::vector<std::uint32_t> rpo_index_;
};

/// A natural loop: the target of a back edge plus every node that can reach
/// the back edge's source without passing through the header.
struct NaturalLoop {
  NodeId header = kInvalidNode;
  std::vector<NodeId> body;  // sorted; includes the header
  std::vector<std::pair<NodeId, NodeId>> exit_edges;  // (inside, outside)
};

/// Compute all natural loops; loops with the same header are merged.
[[nodiscard]] std::vector<NaturalLoop> compute_natural_loops(const Cfg& cfg);

}  // namespace psa::cfg
