// Hashing utilities shared across the library.
//
// RSG canonicalization and RSRSG fixpoint detection hash whole graphs; the
// helpers here give us order-sensitive and order-insensitive combiners with
// decent avalanche behaviour (64-bit splitmix finalizer).
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>

namespace psa::support {

/// splitmix64 finalizer — cheap, well-distributed 64-bit mixer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive combiner: h' = mix(h xor mix(v)).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t value) noexcept {
  return mix64(seed ^ mix64(value));
}

/// Order-insensitive combiner for multiset hashing (commutative +).
[[nodiscard]] constexpr std::uint64_t hash_accumulate_unordered(
    std::uint64_t seed, std::uint64_t value) noexcept {
  return seed + mix64(value);
}

/// Hash any integral or enum value through mix64.
template <typename T>
[[nodiscard]] constexpr std::uint64_t hash_value(T v) noexcept {
  if constexpr (std::is_enum_v<T>) {
    return mix64(static_cast<std::uint64_t>(
        static_cast<std::underlying_type_t<T>>(v)));
  } else {
    static_assert(std::is_integral_v<T>);
    return mix64(static_cast<std::uint64_t>(v));
  }
}

/// Hash a range of hashable elements, order-sensitively.
template <typename Range, typename Fn>
[[nodiscard]] std::uint64_t hash_range(const Range& r, Fn&& element_hash,
                                       std::uint64_t seed = 0x51ab5afeULL) {
  std::uint64_t h = seed;
  for (const auto& e : r) h = hash_combine(h, element_hash(e));
  return h;
}

}  // namespace psa::support
