#include "support/interner.hpp"

#include <cassert>

namespace psa::support {

Interner::Interner() {
  strings_.emplace_back("<invalid>");  // id 0 sentinel
}

Symbol Interner::intern(std::string_view s) {
  if (auto it = index_.find(s); it != index_.end()) return Symbol(it->second);
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view(strings_.back()), id);
  return Symbol(id);
}

Symbol Interner::lookup(std::string_view s) const {
  if (auto it = index_.find(s); it != index_.end()) return Symbol(it->second);
  return Symbol();
}

std::string_view Interner::spelling(Symbol sym) const {
  if (sym.id() >= strings_.size()) return strings_[0];
  return strings_[sym.id()];
}

}  // namespace psa::support
