// Byte accounting for the RSG/RSRSG storage pools.
//
// Table 1 of the paper reports the *space* the compiler needed per analysis
// level. 2001-era MB numbers are not portable, so we reproduce the metric
// itself: every RSG node, link and graph registers its footprint here and the
// benchmark harness reports live/peak bytes (plus object counts) per run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace psa::support {

/// Snapshot of the accounting counters.
struct MemorySnapshot {
  std::uint64_t live_bytes = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t total_allocated_bytes = 0;
  std::uint64_t nodes_created = 0;
  std::uint64_t graphs_created = 0;
};

/// Process-wide accounting (atomic: the engine may run per-RSG transfers on a
/// thread pool). `reset()` between benchmark runs.
class MemoryStats {
 public:
  static MemoryStats& instance();

  void add(std::size_t bytes) noexcept;
  void remove(std::size_t bytes) noexcept;
  void note_node_created() noexcept { nodes_created_.fetch_add(1, std::memory_order_relaxed); }
  void note_graph_created() noexcept { graphs_created_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] MemorySnapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> live_bytes_{0};
  std::atomic<std::uint64_t> peak_bytes_{0};
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::uint64_t> nodes_created_{0};
  std::atomic<std::uint64_t> graphs_created_{0};
};

/// RAII registration of a fixed-size footprint.
class TrackedFootprint {
 public:
  TrackedFootprint() noexcept = default;
  explicit TrackedFootprint(std::size_t bytes) noexcept;
  TrackedFootprint(const TrackedFootprint& other) noexcept;
  TrackedFootprint& operator=(const TrackedFootprint& other) noexcept;
  TrackedFootprint(TrackedFootprint&& other) noexcept;
  TrackedFootprint& operator=(TrackedFootprint&& other) noexcept;
  ~TrackedFootprint();

  /// Re-register with a new size (e.g. after a graph mutation).
  void resize(std::size_t bytes) noexcept;

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

 private:
  std::size_t bytes_ = 0;
};

}  // namespace psa::support
