// Byte accounting for the RSG/RSRSG storage pools.
//
// Table 1 of the paper reports the *space* the compiler needed per analysis
// level. 2001-era MB numbers are not portable, so we reproduce the metric
// itself: every RSG node, link and graph registers its footprint here and the
// benchmark harness reports live/peak bytes (plus object counts) per run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace psa::support {

/// Snapshot of the accounting counters.
struct MemorySnapshot {
  std::uint64_t live_bytes = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t total_allocated_bytes = 0;
  std::uint64_t nodes_created = 0;
  std::uint64_t graphs_created = 0;
};

/// Process-wide accounting (atomic: the engine may run per-RSG transfers on a
/// thread pool). `reset()` between benchmark runs.
///
/// The counters are process-global, which makes per-run attribution wrong as
/// soon as runs share a process: the engine used to reset() at entry, so an
/// in-process batch zeroing live_bytes while earlier units' payload graphs
/// were still alive would underflow the gauge when those graphs died. Use a
/// MemoryRegion instead: a region snapshots a baseline at open, tracks its
/// own peak from there, and reports clamped deltas — concurrent regions and
/// surviving allocations from before the region never bleed in.
class MemoryStats {
 public:
  static MemoryStats& instance();

  void add(std::size_t bytes) noexcept;
  void remove(std::size_t bytes) noexcept;
  void note_node_created() noexcept { nodes_created_.fetch_add(1, std::memory_order_relaxed); }
  void note_graph_created() noexcept { graphs_created_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] MemorySnapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  friend class MemoryRegion;
  /// Concurrently open regions (engine run + any caller-side region).
  static constexpr std::size_t kMaxRegions = 8;
  struct RegionSlot {
    std::atomic<bool> active{false};
    std::atomic<std::uint64_t> peak{0};  // max live_bytes_ while active
  };

  std::atomic<std::uint64_t> live_bytes_{0};
  std::atomic<std::uint64_t> peak_bytes_{0};
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::uint64_t> nodes_created_{0};
  std::atomic<std::uint64_t> graphs_created_{0};
  std::atomic<std::size_t> active_regions_{0};
  RegionSlot regions_[kMaxRegions];
};

/// Scoped attribution window over the global accounting. delta() yields a
/// MemorySnapshot relative to the region's baseline:
///   * live_bytes — growth since open, clamped at 0 (allocations from before
///     the region may die inside it);
///   * peak_bytes — the region's own high-water mark above its baseline;
///   * total/nodes/graphs — amounts added during the region.
/// At most MemoryStats::kMaxRegions regions can be open at once; further
/// regions degrade gracefully (peak falls back to the clamped live delta,
/// still monotonic and underflow-free).
class MemoryRegion {
 public:
  MemoryRegion() noexcept;
  ~MemoryRegion();

  MemoryRegion(const MemoryRegion&) = delete;
  MemoryRegion& operator=(const MemoryRegion&) = delete;

  [[nodiscard]] MemorySnapshot delta() const noexcept;

 private:
  MemorySnapshot baseline_;
  std::size_t slot_ = SIZE_MAX;  // SIZE_MAX = no slot (degraded mode)
};

/// RAII registration of a fixed-size footprint.
class TrackedFootprint {
 public:
  TrackedFootprint() noexcept = default;
  explicit TrackedFootprint(std::size_t bytes) noexcept;
  TrackedFootprint(const TrackedFootprint& other) noexcept;
  TrackedFootprint& operator=(const TrackedFootprint& other) noexcept;
  TrackedFootprint(TrackedFootprint&& other) noexcept;
  TrackedFootprint& operator=(TrackedFootprint&& other) noexcept;
  ~TrackedFootprint();

  /// Re-register with a new size (e.g. after a graph mutation).
  void resize(std::size_t bytes) noexcept;

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

 private:
  std::size_t bytes_ = 0;
};

}  // namespace psa::support
