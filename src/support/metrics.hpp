// The observability layer: monotonic operation counters and phase timers.
//
// The paper's evaluation is a cost story — which statements trigger
// expensive COMPRESS/JOIN/PRUNE/materialization work, how node populations
// grow per level, where the progressive ladder pays off. This registry makes
// that cost first-class: the RSG kernel, the fixpoint engine and the
// governor count every operation here, and the analysis layer
// (analysis/profile.hpp) turns snapshots into `--profile` tables and
// versioned JSONL records. docs/OBSERVABILITY.md maps every counter to its
// paper concept.
//
// Design constraints, in order:
//   1. Cheap when on: one relaxed atomic add per counted *operation* (an
//      operation is a graph transform, orders of magnitude heavier than the
//      increment). Hot loops accumulate locally and flush once per call.
//   2. Free when off: compiling with -DPSA_METRICS=0 expands every PSA_COUNT
//      site to an unevaluated no-op (arguments are only sizeof-inspected, so
//      metrics-only locals stay "used" without emitting code) and routes the
//      conceptual sink through the zero-size NoopMetricsSink.
//   3. ODR-safe across mixed builds: class layouts never depend on
//      PSA_METRICS — only the function-style macros switch. A TU compiled
//      with metrics off can link against a library compiled with them on.
//
// Counters are process-global and monotonic (they only ever grow — tested in
// tests/support/metrics_test.cpp). Interval attribution uses MetricsRegion:
// snapshot at scope entry, delta() at exit. Deltas of the *operation*
// counters are deterministic for a fixed input and options (the engine's
// thread fan-out merges in input order); the *_ns timer counters are wall or
// CPU time and never deterministic — is_timer() lets consumers split them.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

#ifndef PSA_METRICS
#define PSA_METRICS 1
#endif

namespace psa::support {

/// Every counter the analyzer maintains. Operation counters first, then the
/// phase timers (nanosecond-valued; see is_timer). Keep counter_name() and
/// docs/OBSERVABILITY.md in sync when editing.
enum class Counter : std::uint16_t {
  // COMPRESS (§3.1) — summarization sweeps and the nodes they eliminate.
  kCompressCalls,
  kCompressMerges,  // nodes removed by merging into a summary class
  kCoarsenCalls,    // widening-grade COMPRESS (TYPE/SPATH0 skeleton)
  kSummarizeTopCalls,

  // JOIN (§4.3) — candidate pairings considered by the RSRSG reduction.
  kJoinAttempts,
  kJoinAccepts,
  kJoinRejectedAlias,   // ALIAS relations differ (cheap pre-filter)
  kJoinRejectedCompat,  // ALIAS-equal but COMPATIBLE fails
  kForceJoins,          // widening joins (ignore COMPATIBLE)

  // PRUNE (§4.2) — iterations of the prune fixpoint and what it deleted.
  kPruneCalls,
  kPruneIterations,
  kPruneLinksRemoved,  // share-attribute + cycle-link contradictions
  kPruneNodesRemoved,  // reference-pattern violations (N_PRUNE)
  kPruneInfeasible,    // whole graph variants discarded as contradictory

  // DIVIDE (§4.1) and materialization.
  kDivideCalls,
  kDivideVariants,
  kMaterializeCalls,
  kMaterializeVariants,

  // Fixpoint engine.
  kWorklistVisits,
  kWorklistRevisits,     // visits beyond the first per CFG node
  kTransferCacheHits,    // input graph already transferred at this node
  kTransferCacheMisses,  // fresh input graph (a real transfer)
  kWidenings,            // RSRSG widen() trips at Options::widen_threshold

  // Resource governor (docs/RESILIENCE.md ladder).
  kGovernorEscalations,
  kGovernorCollapses,
  kGovernorReapplies,
  kGovernorDrains,

  // Salvage-mode frontend (docs/RESILIENCE.md).
  kHavocSites,     // kHavoc statements lowered into analyzed CFGs
  kSkippedDecls,   // declarations stubbed out by parser/sema recovery
  kSalvagedUnits,  // prepared units that degraded but still analyzed

  // Interprocedural summary analysis (docs/ALGORITHMS.md).
  kSummaryComputed,       // function summaries computed bottom-up
  kSummaryApplied,        // kCall transfers that applied a callee summary
  kSummaryFixpointIters,  // SCC summary-fixpoint iterations (Kleene rounds)
  kCallHavocFallback,     // kCall transfers that fell back to sound havoc

  // Content-addressed result cache (docs/SERVICE.md).
  kCacheHits,       // lookups served from a validated cache entry
  kCacheMisses,     // lookups that fell through to a real analysis
  kCacheStores,     // entries written (atomic tmp-rename)
  kCacheEvictions,  // entries removed: corrupt, version-skewed, or stray
  kCacheSelfHeals,  // corrupt entries evicted and transparently recomputed

  // Service daemon + client (docs/SERVICE.md).
  kServiceRequests,        // requests a daemon accepted for processing
  kServiceBusyRejections,  // requests shed with an explicit busy reply
  kServiceRetries,         // client retries after busy / connection failure
  kStreamFrames,           // PSARPC2 frames streamed by daemon handlers
  kReconnects,             // client reconnects after a mid-stream tear
  kResumedUnits,           // finished units retained across reconnects

  // Bounded-cache sweep (docs/SERVICE.md eviction policy).
  kCacheSweepRuns,       // sweeps that actually scanned (lock acquired)
  kCacheSweepEvictions,  // valid entries evicted by the size/age policy
  kCacheSweepBytes,      // bytes reclaimed by policy evictions

  // Function-granular incremental tier (docs/CACHING.md).
  kFuncCacheHits,    // per-function result entries served from the cache
  kFuncCacheMisses,  // per-function probes that fell through to a fixpoint
  kFuncCacheStores,  // per-function entries written (results + summaries)
  kSummaryReuse,     // callee summaries loaded from cache, not recomputed

  // Durable-I/O layer (docs/RESILIENCE.md, "The I/O fault space").
  kIoWrites,          // durable ops issued (atomic writes, appends, renames)
  kIoFsyncs,          // fsync calls (file data and directory entries)
  kIoFaultsInjected,  // PSA_IO_FAULT injections that fired
  kIoDegradations,    // io failures absorbed as sound degradations

  // Phase timers, nanoseconds (wall = steady clock, cpu = process CPU).
  // Everything from kPhaseParseWallNs on is a timer; see is_timer().
  kPhaseParseWallNs,
  kPhaseParseCpuNs,
  kPhaseCfgWallNs,
  kPhaseCfgCpuNs,
  kPhaseIpaWallNs,  // call graph + bottom-up summary computation
  kPhaseIpaCpuNs,
  kPhaseFixpointL1WallNs,
  kPhaseFixpointL1CpuNs,
  kPhaseFixpointL2WallNs,
  kPhaseFixpointL2CpuNs,
  kPhaseFixpointL3WallNs,
  kPhaseFixpointL3CpuNs,
  kPhaseCheckerWallNs,
  kPhaseCheckerCpuNs,
  kPhaseSerializeWallNs,
  kPhaseSerializeCpuNs,
  kPhaseCacheLookupWallNs,
  kPhaseCacheLookupCpuNs,
  kPhaseRequestWallNs,  // service daemon: whole-request latency
  kPhaseRequestCpuNs,

  kCount,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case identifier (the JSONL key). Unique per counter.
[[nodiscard]] std::string_view counter_name(Counter c) noexcept;

/// True for the *_ns phase timers: time-valued, never deterministic. The
/// determinism contract (and the batch report) covers only non-timer
/// counters.
[[nodiscard]] constexpr bool is_timer(Counter c) noexcept {
  return c >= Counter::kPhaseParseWallNs && c < Counter::kCount;
}

/// Plain-value snapshot of every counter; the unit of aggregation,
/// serialization and region deltas.
struct MetricsSnapshot {
  std::array<std::uint64_t, kCounterCount> values{};

  [[nodiscard]] std::uint64_t operator[](Counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t& at(Counter c) noexcept {
    return values[static_cast<std::size_t>(c)];
  }

  MetricsSnapshot& operator+=(const MetricsSnapshot& other) noexcept {
    for (std::size_t i = 0; i < kCounterCount; ++i)
      values[i] += other.values[i];
    return *this;
  }
  /// Per-counter difference, clamped at zero (counters are monotonic; the
  /// clamp only matters against snapshots from unrelated baselines).
  [[nodiscard]] MetricsSnapshot since(
      const MetricsSnapshot& baseline) const noexcept {
    MetricsSnapshot d;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      d.values[i] =
          values[i] >= baseline.values[i] ? values[i] - baseline.values[i] : 0;
    }
    return d;
  }
  /// Equality over the deterministic (non-timer) counters only.
  [[nodiscard]] bool same_operations(
      const MetricsSnapshot& other) const noexcept {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      if (is_timer(static_cast<Counter>(i))) continue;
      if (values[i] != other.values[i]) return false;
    }
    return true;
  }
};

/// The process-global registry. All mutation is relaxed-atomic: counters are
/// independent monotonic tallies, no ordering is implied between them.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance() noexcept {
    static MetricsRegistry registry;
    return registry;
  }

  void add(Counter c, std::uint64_t n) noexcept {
    counters_[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }

  [[nodiscard]] MetricsSnapshot snapshot() const noexcept {
    MetricsSnapshot s;
    for (std::size_t i = 0; i < kCounterCount; ++i)
      s.values[i] = counters_[i].load(std::memory_order_relaxed);
    return s;
  }

 private:
  MetricsRegistry() = default;
  std::array<std::atomic<std::uint64_t>, kCounterCount> counters_{};
};

/// The compile-out sink: when PSA_METRICS=0, every counting site conceptually
/// targets this. Zero-size and stateless, so the optimizer erases it — the
/// metrics-off build test asserts std::is_empty_v<NoopMetricsSink> and that
/// no registry value moves.
struct NoopMetricsSink {
  static constexpr void add(Counter, std::uint64_t) noexcept {}
};

/// Interval attribution: counter deltas between construction and delta().
/// Nests freely (a region is just a baseline snapshot). With metrics off,
/// every delta is all-zero.
class MetricsRegion {
 public:
  MetricsRegion() : baseline_(MetricsRegistry::instance().snapshot()) {}

  [[nodiscard]] MetricsSnapshot delta() const noexcept {
    return MetricsRegistry::instance().snapshot().since(baseline_);
  }

 private:
  MetricsSnapshot baseline_;
};

/// Nanoseconds of CPU time consumed by the whole process.
[[nodiscard]] std::uint64_t process_cpu_ns() noexcept;

/// RAII phase timer: adds elapsed wall + process-CPU nanoseconds to the two
/// given timer counters at scope exit. Instantiate through PSA_PHASE_TIMER
/// so metrics-off builds pay nothing.
class PhaseTimer {
 public:
  PhaseTimer(Counter wall, Counter cpu) noexcept;
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Counter wall_;
  Counter cpu_;
  std::uint64_t wall_start_ns_;
  std::uint64_t cpu_start_ns_;
};

}  // namespace psa::support

// Counting-site macros. Only these switch on PSA_METRICS — class layouts
// above are identical in both modes, so mixed-setting TUs link safely.
#if PSA_METRICS
#define PSA_COUNT(counter) \
  (::psa::support::MetricsRegistry::instance().add((counter), 1))
#define PSA_COUNT_N(counter, n) \
  (::psa::support::MetricsRegistry::instance().add((counter), (n)))
#define PSA_PHASE_TIMER(var, wall, cpu) \
  const ::psa::support::PhaseTimer var((wall), (cpu))
#else
// Arguments appear only inside sizeof, so they are never evaluated but
// metrics-only locals still count as used under -Werror=unused.
#define PSA_COUNT(counter) ((void)sizeof(((void)(counter), 0)))
#define PSA_COUNT_N(counter, n) \
  ((void)sizeof(((void)(counter), (void)(n), 0)))
#define PSA_PHASE_TIMER(var, wall, cpu) \
  ((void)sizeof(((void)(wall), (void)(cpu), 0)))
#endif
