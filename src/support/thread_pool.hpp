// A small fixed-size thread pool.
//
// The abstract-interpretation transfer of one statement maps every RSG of the
// incoming RSRSG independently (see DESIGN.md §7); ThreadPool::parallel_for
// distributes those per-RSG transfers. Results are written to per-index slots
// so the subsequent JOIN runs in deterministic input order — a parallel run
// produces bit-identical RSRSGs to a serial run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace psa::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Run body(i) for i in [0, n), blocking until all iterations finish.
  /// Iterations must be independent. The first exception thrown by a body —
  /// on any thread — is captured, the remaining iterations are skipped (same
  /// mechanism as `stop` below), and once every iteration has either run or
  /// been skipped the exception is rethrown on the calling thread. At most
  /// one exception propagates per call; later ones are dropped.
  ///
  /// When `stop` is non-empty it is polled before every iteration; once it
  /// returns true the remaining iterations are skipped (their bodies never
  /// run). The call still blocks until every iteration is either executed or
  /// skipped, so no task outlives the call whatever the outcome — the
  /// cooperative cancellation the analysis engine's deadline/cancel budget
  /// needs (see analysis/governor.hpp). The caller is responsible for
  /// noticing the stop and discarding/redoing the skipped work.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    const std::function<bool()>& stop = {});

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace psa::support
