#include "support/diagnostics.hpp"

#include <sstream>

namespace psa::support {

std::string_view severity_name(Severity sev) {
  switch (sev) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
    case Severity::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

std::string to_string(const Diagnostic& d) {
  std::ostringstream os;
  os << d.loc.line << ':' << d.loc.column << ": " << severity_name(d.severity)
     << ": " << d.message;
  return os.str();
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc, std::string message) {
  if (sev == Severity::kError) ++error_count_;
  if (sev == Severity::kUnsupported) ++unsupported_count_;
  diagnostics_.push_back(Diagnostic{sev, loc, std::move(message)});
}

void DiagnosticEngine::demote_errors_from(std::size_t first) {
  for (std::size_t i = first; i < diagnostics_.size(); ++i) {
    if (diagnostics_[i].severity != Severity::kError) continue;
    diagnostics_[i].severity = Severity::kUnsupported;
    --error_count_;
    ++unsupported_count_;
  }
}

std::string DiagnosticEngine::to_string() const {
  std::ostringstream os;
  for (const auto& d : diagnostics_) os << support::to_string(d) << '\n';
  return os.str();
}

}  // namespace psa::support
