#include "support/diagnostics.hpp"

#include <sstream>

namespace psa::support {

namespace {
std::string_view severity_name(Severity sev) {
  switch (sev) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}
}  // namespace

void DiagnosticEngine::report(Severity sev, SourceLoc loc, std::string message) {
  if (sev == Severity::kError) ++error_count_;
  diagnostics_.push_back(Diagnostic{sev, loc, std::move(message)});
}

std::string DiagnosticEngine::to_string() const {
  std::ostringstream os;
  for (const auto& d : diagnostics_) {
    os << d.loc.line << ':' << d.loc.column << ": " << severity_name(d.severity)
       << ": " << d.message << '\n';
  }
  return os.str();
}

}  // namespace psa::support
