#include "support/io.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>

#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define PSA_IO_POSIX 1
#else
#define PSA_IO_POSIX 0
#endif

namespace psa::support::io {

namespace fs = std::filesystem;

namespace {

/// The process-tree-global op counter. A MAP_SHARED | MAP_ANONYMOUS page is
/// inherited by every child fork()ed after creation, so the supervisor and
/// its workers draw from one numbering — the property the fault campaign's
/// deterministic op stream rests on. ensure_initialized() forces creation in
/// the parent before the first fork.
std::atomic<std::uint64_t>* op_counter() {
#if PSA_IO_POSIX
  static std::atomic<std::uint64_t>* counter = [] {
    void* mem =
        ::mmap(nullptr, sizeof(std::atomic<std::uint64_t>),
               PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) {
      // Degraded (no shared page): numbering is still correct within one
      // process, which is all the unit tests need.
      static std::atomic<std::uint64_t> local{0};
      return &local;
    }
    return new (mem) std::atomic<std::uint64_t>{0};
  }();
  return counter;
#else
  static std::atomic<std::uint64_t> local{0};
  return &local;
#endif
}

std::uint64_t next_op() {
  return op_counter()->fetch_add(1, std::memory_order_relaxed) + 1;
}

struct FaultSpec {
  bool armed = false;
  bool by_path = false;       // @<substr> form: every matching op fails
  std::uint64_t op = 0;       // numeric form: exactly this op fails
  std::string substr;
  FaultKind kind = FaultKind::kNone;
};

bool parse_kind(std::string_view s, FaultKind& out) {
  if (s == "enospc") out = FaultKind::kEnospc;
  else if (s == "eio") out = FaultKind::kEio;
  else if (s == "shortwrite") out = FaultKind::kShortWrite;
  else if (s == "tornrename") out = FaultKind::kTornRename;
  else if (s == "crash") out = FaultKind::kCrash;
  else return false;
  return true;
}

/// Parse PSA_IO_FAULT fresh on every op: the env var is the single source of
/// truth, so tests can re-arm between scenarios without process restarts. A
/// malformed spec arms nothing (same posture as PSA_FAULT_AT).
FaultSpec current_fault_spec() {
  FaultSpec spec;
  const char* env = std::getenv("PSA_IO_FAULT");
  if (env == nullptr || *env == '\0') return spec;
  const std::string_view raw(env);
  const std::size_t colon = raw.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return spec;
  if (!parse_kind(raw.substr(colon + 1), spec.kind)) return spec;
  const std::string_view sel = raw.substr(0, colon);
  if (sel.front() == '@') {
    if (sel.size() < 2) return spec;
    spec.by_path = true;
    spec.substr = std::string(sel.substr(1));
  } else {
    std::uint64_t value = 0;
    for (const char c : sel) {
      if (c < '0' || c > '9') return spec;
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (value == 0) return spec;
    spec.op = value;
  }
  spec.armed = true;
  return spec;
}

FaultKind fault_for(std::uint64_t op, const std::string& path) {
  const FaultSpec spec = current_fault_spec();
  if (!spec.armed) return FaultKind::kNone;
  if (spec.by_path) {
    return path.find(spec.substr) != std::string::npos ? spec.kind
                                                       : FaultKind::kNone;
  }
  return op == spec.op ? spec.kind : FaultKind::kNone;
}

/// Record one op in the PSA_IO_TRACE stream. Raw O_APPEND open-write-close,
/// never numbered, never faulted, never fsynced: the trace observes the op
/// stream without perturbing it.
void trace_op(std::uint64_t op, const char* what, const std::string& path,
              std::size_t bytes, const IoResult& result, FaultKind fault) {
  const char* file = std::getenv("PSA_IO_TRACE");
  if (file == nullptr || *file == '\0') return;
  std::string line = "op " + std::to_string(op) + ' ' + what + ' ' + path +
                     ' ' + std::to_string(bytes) + ' ' +
                     (result.ok ? "ok" : "error") +
                     (fault != FaultKind::kNone ? " faulted" : "") + '\n';
#if PSA_IO_POSIX
  const int fd = ::open(file, O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return;
  (void)!::write(fd, line.data(), line.size());
  ::close(fd);
#else
  std::ofstream out(file, std::ios::app | std::ios::binary);
  out << line;
#endif
}

IoResult fail(std::string message) {
  IoResult r;
  r.ok = false;
  r.error = std::move(message);
  return r;
}

/// Die like a power cut: the completed op is durable, everything buffered
/// anywhere else in the process is lost. _Exit skips atexit/flush on purpose.
[[noreturn]] void crash_now() { std::_Exit(kCrashExitCode); }

#if PSA_IO_POSIX

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ::ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync the directory holding `path`, making a completed rename durable.
/// Best effort: some filesystems refuse directory fsync, and the rename
/// itself already happened.
void sync_parent_dir(const std::string& path) {
  const std::string dir = fs::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                        O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;
  PSA_COUNT(Counter::kIoFsyncs);
  (void)::fsync(fd);
  ::close(fd);
}

IoResult atomic_write_impl(const std::string& tmp,
                           const std::string& final_path,
                           std::string_view bytes, FaultKind fault) {
  if (fault == FaultKind::kEnospc) {
    return fail("injected ENOSPC: no bytes written to " + tmp);
  }
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return fail("open " + tmp + ": " + std::strerror(errno));
  }
  const std::size_t to_write =
      fault == FaultKind::kShortWrite ? bytes.size() / 2 : bytes.size();
  if (!write_all(fd, bytes.data(), to_write)) {
    const int err = errno;
    ::close(fd);
    // The torn tmp stays behind: that is exactly the straggler the callers'
    // recovery sweeps exist for, and deleting it here would hide the state a
    // real ENOSPC leaves.
    return fail("write " + tmp + ": " + std::strerror(err));
  }
  if (fault == FaultKind::kShortWrite) {
    ::close(fd);
    return fail("injected short write: " + std::to_string(to_write) + "/" +
                std::to_string(bytes.size()) + " bytes to " + tmp);
  }
  PSA_COUNT(Counter::kIoFsyncs);
  const bool synced = ::fsync(fd) == 0;
  const int sync_err = errno;
  ::close(fd);
  if (!synced || fault == FaultKind::kEio) {
    // The bytes may sit in the page cache but are not known durable — never
    // publish them. Unlinking the tmp keeps an undurable file from
    // masquerading as a completed write after the next crash.
    ::unlink(tmp.c_str());
    return fail(fault == FaultKind::kEio
                    ? "injected EIO: fsync failed for " + tmp
                    : "fsync " + tmp + ": " + std::strerror(sync_err));
  }
  if (fault == FaultKind::kTornRename) {
    // Power cut in the gap between fsync and rename: the durable tmp exists,
    // the final path never appears.
    return fail("injected torn rename: " + tmp + " not renamed to " +
                final_path);
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return fail("rename " + tmp + " -> " + final_path + ": " +
                std::strerror(err));
  }
  sync_parent_dir(final_path);
  return {};
}

IoResult checked_append_impl(const std::string& path, std::string_view record,
                             FaultKind fault) {
  if (fault == FaultKind::kEnospc) {
    return fail("injected ENOSPC: record not appended to " + path);
  }
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return fail("open " + path + ": " + std::strerror(errno));
  }
  const std::size_t to_write =
      fault == FaultKind::kShortWrite ? record.size() / 2 : record.size();
  if (!write_all(fd, record.data(), to_write)) {
    const int err = errno;
    ::close(fd);
    return fail("append " + path + ": " + std::strerror(err));
  }
  if (fault == FaultKind::kShortWrite) {
    // A torn trailing line is left in the journal on purpose — consumers
    // (checkpoint replay, sweep journal) must tolerate and repair it.
    ::close(fd);
    return fail("injected short write: torn record in " + path);
  }
  PSA_COUNT(Counter::kIoFsyncs);
  const bool synced = ::fsync(fd) == 0;
  const int sync_err = errno;
  ::close(fd);
  if (!synced || fault == FaultKind::kEio) {
    return fail(fault == FaultKind::kEio
                    ? "injected EIO: record in " + path + " not known durable"
                    : "fsync " + path + ": " + std::strerror(sync_err));
  }
  return {};
}

IoResult checked_rename_impl(const std::string& from, const std::string& to,
                             FaultKind fault) {
  if (fault == FaultKind::kEnospc || fault == FaultKind::kEio) {
    return fail("injected rename failure: " + from + " -> " + to);
  }
  if (fault == FaultKind::kTornRename) {
    return fail("injected torn rename: " + from + " not renamed to " + to);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return fail("rename " + from + " -> " + to + ": " + std::strerror(errno));
  }
  sync_parent_dir(to);
  return {};
}

#else  // !PSA_IO_POSIX

// Portability fallback: correct rename-through-tmp semantics, no fsync
// durability (the platform gives us no portable handle-level sync). The
// fault kinds keep their observable behavior so tests stay meaningful.

IoResult atomic_write_impl(const std::string& tmp,
                           const std::string& final_path,
                           std::string_view bytes, FaultKind fault) {
  if (fault == FaultKind::kEnospc) {
    return fail("injected ENOSPC: no bytes written to " + tmp);
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return fail("open " + tmp);
    const std::size_t to_write =
        fault == FaultKind::kShortWrite ? bytes.size() / 2 : bytes.size();
    out.write(bytes.data(), static_cast<std::streamsize>(to_write));
    if (!out) return fail("write " + tmp);
  }
  if (fault == FaultKind::kShortWrite) {
    return fail("injected short write to " + tmp);
  }
  if (fault == FaultKind::kEio) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return fail("injected EIO: fsync failed for " + tmp);
  }
  if (fault == FaultKind::kTornRename) {
    return fail("injected torn rename: " + tmp + " not renamed to " +
                final_path);
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return fail("rename " + tmp + " -> " + final_path);
  }
  return {};
}

IoResult checked_append_impl(const std::string& path, std::string_view record,
                             FaultKind fault) {
  if (fault == FaultKind::kEnospc) {
    return fail("injected ENOSPC: record not appended to " + path);
  }
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return fail("open " + path);
  const std::size_t to_write =
      fault == FaultKind::kShortWrite ? record.size() / 2 : record.size();
  out.write(record.data(), static_cast<std::streamsize>(to_write));
  out.flush();
  if (!out) return fail("append " + path);
  if (fault == FaultKind::kShortWrite) {
    return fail("injected short write: torn record in " + path);
  }
  if (fault == FaultKind::kEio) {
    return fail("injected EIO: record in " + path + " not known durable");
  }
  return {};
}

IoResult checked_rename_impl(const std::string& from, const std::string& to,
                             FaultKind fault) {
  if (fault == FaultKind::kEnospc || fault == FaultKind::kEio) {
    return fail("injected rename failure: " + from + " -> " + to);
  }
  if (fault == FaultKind::kTornRename) {
    return fail("injected torn rename: " + from + " not renamed to " + to);
  }
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) return fail("rename " + from + " -> " + to);
  return {};
}

#endif  // PSA_IO_POSIX

}  // namespace

void ensure_initialized() { (void)op_counter(); }

std::uint64_t ops_issued() {
  return op_counter()->load(std::memory_order_relaxed);
}

IoResult atomic_write(const std::string& tmp, const std::string& final_path,
                      std::string_view bytes) {
  const std::uint64_t op = next_op();
  PSA_COUNT(Counter::kIoWrites);
  const FaultKind fault = fault_for(op, final_path);
  if (fault != FaultKind::kNone) PSA_COUNT(Counter::kIoFaultsInjected);
  const IoResult result = atomic_write_impl(
      tmp, final_path, bytes, fault == FaultKind::kCrash ? FaultKind::kNone
                                                         : fault);
  trace_op(op, "atomic_write", final_path, bytes.size(), result, fault);
  if (fault == FaultKind::kCrash) crash_now();
  return result;
}

IoResult checked_append(const std::string& path, std::string_view record) {
  const std::uint64_t op = next_op();
  PSA_COUNT(Counter::kIoWrites);
  const FaultKind fault = fault_for(op, path);
  if (fault != FaultKind::kNone) PSA_COUNT(Counter::kIoFaultsInjected);
  const IoResult result = checked_append_impl(
      path, record, fault == FaultKind::kCrash ? FaultKind::kNone : fault);
  trace_op(op, "append", path, record.size(), result, fault);
  if (fault == FaultKind::kCrash) crash_now();
  return result;
}

IoResult checked_rename(const std::string& from, const std::string& to) {
  const std::uint64_t op = next_op();
  PSA_COUNT(Counter::kIoWrites);
  const FaultKind fault = fault_for(op, to);
  if (fault != FaultKind::kNone) PSA_COUNT(Counter::kIoFaultsInjected);
  const IoResult result = checked_rename_impl(
      from, to, fault == FaultKind::kCrash ? FaultKind::kNone : fault);
  trace_op(op, "rename", to, 0, result, fault);
  if (fault == FaultKind::kCrash) crash_now();
  return result;
}

}  // namespace psa::support::io
