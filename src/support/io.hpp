// The durable-I/O layer: every write the system relies on after a crash —
// cache entries, checkpoint snapshots, journal records — goes through the
// three primitives here instead of raw std::ofstream.
//
//   atomic_write(tmp, final, bytes)   write tmp, fsync(fd), rename to final,
//                                     fsync the directory. Either the final
//                                     file holds exactly `bytes` or it was
//                                     never touched; a failure may leave the
//                                     tmp behind (callers' recovery sweeps
//                                     already handle stray tmps).
//   checked_append(path, record)      O_APPEND + full write + fsync. The
//                                     record either lands durably or the
//                                     caller learns it did not.
//   checked_rename(from, to)          rename + directory fsync.
//
// Errors are values, never exceptions: an IoResult that is false carries the
// diagnostic, and the caller decides how to degrade soundly (count it, note
// it, fall back). See docs/RESILIENCE.md, "The I/O fault space".
//
// Fault-space exploration. Each top-level primitive call consumes one
// process-global operation number; the counter lives in a MAP_SHARED mapping
// created before the supervisor forks, so workers and their parent share one
// numbering and a golden run's op stream is deterministic under --jobs=1.
// Two environment knobs drive the explorer (scripts/fault_campaign.sh):
//
//   PSA_IO_TRACE=<file>   append one line per op ("op <n> <kind> <path>
//                         <bytes> <ok|error...>") via raw, un-numbered,
//                         un-faulted appends — the trace never perturbs the
//                         stream it records.
//   PSA_IO_FAULT=<sel>:<kind>
//                         <sel> is an op number (fires exactly once, when
//                         the global counter reaches it) or @<substr> (fires
//                         on every op whose path contains <substr> — for
//                         targeted tests). <kind> is one of:
//                           enospc     the op fails before any byte lands
//                           eio        bytes land but the fsync fails; an
//                                      atomic_write must NOT publish
//                           shortwrite half the bytes land, then failure
//                                      (leaves a torn tmp / torn journal
//                                      line downstream must tolerate)
//                           tornrename everything durable but the rename
//                                      never happens (power cut in the gap)
//                           crash      the op completes, then the process
//                                      dies with _Exit(kCrashExitCode) —
//                                      power cut immediately after the op
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace psa::support::io {

/// Exit code of an injected `crash` fault: distinguishable from every
/// documented CLI exit (0-4) and from the OOM/uncaught-exception worker
/// sentinels (77/78), so harnesses can assert the death was the injected one.
inline constexpr int kCrashExitCode = 86;

enum class FaultKind : std::uint8_t {
  kNone,
  kEnospc,
  kEio,
  kShortWrite,
  kTornRename,
  kCrash,
};

/// Outcome of one durable op. Contextual prose in `error` when !ok.
struct IoResult {
  bool ok = true;
  std::string error;

  explicit operator bool() const noexcept { return ok; }
};

/// Create the fork-shared op counter now. Idempotent and cheap after the
/// first call; the supervisor/daemon/client entry points call it before any
/// fork so parent and children number ops in one shared stream.
void ensure_initialized();

/// Total durable ops issued by this process tree so far (reads the shared
/// counter). Test hook for computing op numbers relative to "now".
[[nodiscard]] std::uint64_t ops_issued();

/// Write `bytes` to `tmp`, fsync, rename onto `final_path`, fsync the parent
/// directory. On failure nothing is renamed; `tmp` may remain for the
/// caller's recovery sweep.
[[nodiscard]] IoResult atomic_write(const std::string& tmp,
                                    const std::string& final_path,
                                    std::string_view bytes);

/// Append `record` (caller includes any trailing newline) to `path`,
/// creating it if needed, and fsync. Returns failure when the record is not
/// known durable — it may still be partially or fully present in the file;
/// journal consumers already tolerate torn trailing lines.
[[nodiscard]] IoResult checked_append(const std::string& path,
                                      std::string_view record);

/// Rename `from` onto `to` and fsync the destination directory.
[[nodiscard]] IoResult checked_rename(const std::string& from,
                                      const std::string& to);

}  // namespace psa::support::io
