// SmallSet: a sorted-vector set for the tiny sets that dominate RSG node
// properties (selector sets, SPATHs, TOUCH sets, cycle-link pairs).
//
// These sets hold a handful of elements (bounded by the number of selectors
// or pvars in the analyzed program), are compared for equality constantly
// (C_NODES, C_SPATH, JOIN compatibility) and are unioned / intersected in
// MERGE_NODES. A sorted vector beats node-based containers on every one of
// those operations at this size and hashes in one pass.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "support/hash.hpp"

namespace psa::support {

template <typename T>
class SmallSet {
 public:
  using value_type = T;
  using const_iterator = typename std::vector<T>::const_iterator;

  SmallSet() = default;
  SmallSet(std::initializer_list<T> init) {
    items_.assign(init);
    normalize();
  }

  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] const_iterator begin() const noexcept { return items_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return items_.end(); }

  [[nodiscard]] bool contains(const T& v) const {
    return std::binary_search(items_.begin(), items_.end(), v);
  }

  /// Insert; returns true if the element was new.
  bool insert(const T& v) {
    auto it = std::lower_bound(items_.begin(), items_.end(), v);
    if (it != items_.end() && *it == v) return false;
    items_.insert(it, v);
    return true;
  }

  /// Erase; returns true if the element was present.
  bool erase(const T& v) {
    auto it = std::lower_bound(items_.begin(), items_.end(), v);
    if (it == items_.end() || !(*it == v)) return false;
    items_.erase(it);
    return true;
  }

  void clear() noexcept { items_.clear(); }

  /// Remove every element for which `pred` holds.
  template <typename Pred>
  void erase_if(Pred&& pred) {
    items_.erase(std::remove_if(items_.begin(), items_.end(),
                                std::forward<Pred>(pred)),
                 items_.end());
  }

  [[nodiscard]] friend SmallSet set_union(const SmallSet& a, const SmallSet& b) {
    SmallSet out;
    out.items_.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out.items_));
    return out;
  }

  [[nodiscard]] friend SmallSet set_intersection(const SmallSet& a,
                                                 const SmallSet& b) {
    SmallSet out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out.items_));
    return out;
  }

  [[nodiscard]] friend SmallSet set_difference(const SmallSet& a,
                                               const SmallSet& b) {
    SmallSet out;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out.items_));
    return out;
  }

  [[nodiscard]] friend bool intersects(const SmallSet& a, const SmallSet& b) {
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
      if (*ia == *ib) return true;
      if (*ia < *ib) {
        ++ia;
      } else {
        ++ib;
      }
    }
    return false;
  }

  [[nodiscard]] bool is_subset_of(const SmallSet& other) const {
    return std::includes(other.begin(), other.end(), begin(), end());
  }

  friend bool operator==(const SmallSet& a, const SmallSet& b) = default;
  friend auto operator<=>(const SmallSet& a, const SmallSet& b) = default;

  /// One-pass order-sensitive hash (the set is canonically sorted).
  template <typename Fn>
  [[nodiscard]] std::uint64_t hash(Fn&& element_hash) const {
    return hash_range(items_, std::forward<Fn>(element_hash));
  }

 private:
  void normalize() {
    std::sort(items_.begin(), items_.end());
    items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  }

  std::vector<T> items_;
};

}  // namespace psa::support
