// String interning.
//
// Selectors, pvar names and type names are interned once by the frontend and
// afterwards handled as 32-bit `Symbol` ids everywhere — property sets,
// SPATHs and cycle-link pairs are then plain integer sets, which keeps the
// hot compatibility checks (C_NODES, C_SPATH, …) allocation-free.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace psa::support {

/// An interned string id. Value 0 is reserved for the invalid symbol.
class Symbol {
 public:
  constexpr Symbol() noexcept = default;
  constexpr explicit Symbol(std::uint32_t id) noexcept : id_(id) {}

  [[nodiscard]] constexpr std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return id_ != 0; }

  friend constexpr bool operator==(Symbol a, Symbol b) noexcept = default;
  friend constexpr auto operator<=>(Symbol a, Symbol b) noexcept = default;

 private:
  std::uint32_t id_ = 0;
};

/// Bidirectional string <-> Symbol table. Not thread-safe; each frontend
/// instance owns one and the analysis only reads it.
class Interner {
 public:
  Interner();

  /// Intern `s`, returning the existing symbol if already present.
  Symbol intern(std::string_view s);

  /// Look up without interning; returns the invalid symbol when absent.
  [[nodiscard]] Symbol lookup(std::string_view s) const;

  /// Spell a symbol. The invalid symbol spells as "<invalid>".
  [[nodiscard]] std::string_view spelling(Symbol sym) const;

  [[nodiscard]] std::size_t size() const noexcept { return strings_.size() - 1; }

 private:
  // Deque gives stable element addresses, so index_ keys can safely view
  // the stored strings even as new symbols are interned.
  std::deque<std::string> strings_;  // index = symbol id; [0] is a sentinel
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace psa::support

template <>
struct std::hash<psa::support::Symbol> {
  std::size_t operator()(psa::support::Symbol s) const noexcept {
    return std::hash<std::uint32_t>{}(s.id());
  }
};
