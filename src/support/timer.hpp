// Wall-clock timing for the Table-1 harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace psa::support {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace psa::support
