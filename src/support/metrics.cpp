#include "support/metrics.hpp"

#include <chrono>
#include <ctime>

namespace psa::support {

std::string_view counter_name(Counter c) noexcept {
  switch (c) {
    case Counter::kCompressCalls: return "compress_calls";
    case Counter::kCompressMerges: return "compress_merges";
    case Counter::kCoarsenCalls: return "coarsen_calls";
    case Counter::kSummarizeTopCalls: return "summarize_top_calls";
    case Counter::kJoinAttempts: return "join_attempts";
    case Counter::kJoinAccepts: return "join_accepts";
    case Counter::kJoinRejectedAlias: return "join_rejected_alias";
    case Counter::kJoinRejectedCompat: return "join_rejected_compat";
    case Counter::kForceJoins: return "force_joins";
    case Counter::kPruneCalls: return "prune_calls";
    case Counter::kPruneIterations: return "prune_iterations";
    case Counter::kPruneLinksRemoved: return "prune_links_removed";
    case Counter::kPruneNodesRemoved: return "prune_nodes_removed";
    case Counter::kPruneInfeasible: return "prune_infeasible";
    case Counter::kDivideCalls: return "divide_calls";
    case Counter::kDivideVariants: return "divide_variants";
    case Counter::kMaterializeCalls: return "materialize_calls";
    case Counter::kMaterializeVariants: return "materialize_variants";
    case Counter::kWorklistVisits: return "worklist_visits";
    case Counter::kWorklistRevisits: return "worklist_revisits";
    case Counter::kTransferCacheHits: return "transfer_cache_hits";
    case Counter::kTransferCacheMisses: return "transfer_cache_misses";
    case Counter::kWidenings: return "widenings";
    case Counter::kGovernorEscalations: return "governor_escalations";
    case Counter::kGovernorCollapses: return "governor_collapses";
    case Counter::kGovernorReapplies: return "governor_reapplies";
    case Counter::kGovernorDrains: return "governor_drains";
    case Counter::kHavocSites: return "havoc_sites";
    case Counter::kSkippedDecls: return "skipped_decls";
    case Counter::kSalvagedUnits: return "salvaged_units";
    case Counter::kSummaryComputed: return "summary_computed";
    case Counter::kSummaryApplied: return "summary_applied";
    case Counter::kSummaryFixpointIters: return "summary_fixpoint_iters";
    case Counter::kCallHavocFallback: return "call_havoc_fallback";
    case Counter::kCacheHits: return "cache_hits";
    case Counter::kCacheMisses: return "cache_misses";
    case Counter::kCacheStores: return "cache_stores";
    case Counter::kCacheEvictions: return "cache_evictions";
    case Counter::kCacheSelfHeals: return "cache_self_heals";
    case Counter::kServiceRequests: return "service_requests";
    case Counter::kServiceBusyRejections: return "service_busy_rejections";
    case Counter::kServiceRetries: return "service_retries";
    case Counter::kStreamFrames: return "stream_frames";
    case Counter::kReconnects: return "reconnects";
    case Counter::kResumedUnits: return "resumed_units";
    case Counter::kCacheSweepRuns: return "cache_sweep_runs";
    case Counter::kCacheSweepEvictions: return "cache_sweep_evictions";
    case Counter::kCacheSweepBytes: return "cache_sweep_bytes";
    case Counter::kFuncCacheHits: return "func_cache_hits";
    case Counter::kFuncCacheMisses: return "func_cache_misses";
    case Counter::kFuncCacheStores: return "func_cache_stores";
    case Counter::kSummaryReuse: return "summary_reuse";
    case Counter::kIoWrites: return "io_writes";
    case Counter::kIoFsyncs: return "io_fsyncs";
    case Counter::kIoFaultsInjected: return "io_faults_injected";
    case Counter::kIoDegradations: return "io_degradations";
    case Counter::kPhaseParseWallNs: return "phase_parse_wall_ns";
    case Counter::kPhaseParseCpuNs: return "phase_parse_cpu_ns";
    case Counter::kPhaseCfgWallNs: return "phase_cfg_wall_ns";
    case Counter::kPhaseCfgCpuNs: return "phase_cfg_cpu_ns";
    case Counter::kPhaseIpaWallNs: return "phase_ipa_wall_ns";
    case Counter::kPhaseIpaCpuNs: return "phase_ipa_cpu_ns";
    case Counter::kPhaseFixpointL1WallNs: return "phase_fixpoint_l1_wall_ns";
    case Counter::kPhaseFixpointL1CpuNs: return "phase_fixpoint_l1_cpu_ns";
    case Counter::kPhaseFixpointL2WallNs: return "phase_fixpoint_l2_wall_ns";
    case Counter::kPhaseFixpointL2CpuNs: return "phase_fixpoint_l2_cpu_ns";
    case Counter::kPhaseFixpointL3WallNs: return "phase_fixpoint_l3_wall_ns";
    case Counter::kPhaseFixpointL3CpuNs: return "phase_fixpoint_l3_cpu_ns";
    case Counter::kPhaseCheckerWallNs: return "phase_checker_wall_ns";
    case Counter::kPhaseCheckerCpuNs: return "phase_checker_cpu_ns";
    case Counter::kPhaseSerializeWallNs: return "phase_serialize_wall_ns";
    case Counter::kPhaseSerializeCpuNs: return "phase_serialize_cpu_ns";
    case Counter::kPhaseCacheLookupWallNs: return "phase_cache_lookup_wall_ns";
    case Counter::kPhaseCacheLookupCpuNs: return "phase_cache_lookup_cpu_ns";
    case Counter::kPhaseRequestWallNs: return "phase_request_wall_ns";
    case Counter::kPhaseRequestCpuNs: return "phase_request_cpu_ns";
    case Counter::kCount: break;
  }
  return "unknown";
}

std::uint64_t process_cpu_ns() noexcept {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  // Portable fallback; clock() wraps, but deltas inside one phase are fine.
  return static_cast<std::uint64_t>(std::clock()) *
         (1'000'000'000ull / CLOCKS_PER_SEC);
}

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

PhaseTimer::PhaseTimer(Counter wall, Counter cpu) noexcept
    : wall_(wall),
      cpu_(cpu),
      wall_start_ns_(steady_now_ns()),
      cpu_start_ns_(process_cpu_ns()) {}

PhaseTimer::~PhaseTimer() {
  auto& registry = MetricsRegistry::instance();
  const std::uint64_t wall_now = steady_now_ns();
  const std::uint64_t cpu_now = process_cpu_ns();
  registry.add(wall_, wall_now >= wall_start_ns_ ? wall_now - wall_start_ns_
                                                 : 0);
  registry.add(cpu_, cpu_now >= cpu_start_ns_ ? cpu_now - cpu_start_ns_ : 0);
}

}  // namespace psa::support
