// Source locations and diagnostics for the mini-C frontend.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace psa::support {

/// 1-based line/column position in a source buffer.
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const noexcept { return line != 0; }
  friend bool operator==(SourceLoc, SourceLoc) = default;
};

enum class Severity : std::uint8_t { kNote, kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
};

/// Collects diagnostics; the driver decides whether to print or assert.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) {
    report(Severity::kError, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::kWarning, loc, std::move(message));
  }

  [[nodiscard]] bool has_errors() const noexcept { return error_count_ != 0; }
  [[nodiscard]] std::size_t error_count() const noexcept { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const noexcept {
    return diagnostics_;
  }

  /// Render all diagnostics as "line:col: severity: message" lines.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
};

}  // namespace psa::support
