// Source locations and diagnostics for the mini-C frontend.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace psa::support {

/// 1-based line/column position in a source buffer.
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const noexcept { return line != 0; }
  friend bool operator==(SourceLoc, SourceLoc) = default;
};

enum class Severity : std::uint8_t {
  kNote,
  kWarning,
  kError,
  /// A construct outside the analyzable subset, demoted from kError by the
  /// salvage-mode frontend: the statement lowers to a sound havoc (or the
  /// declaration to a SkippedDecl stub) instead of poisoning the unit.
  /// Never counts toward has_errors().
  kUnsupported,
};

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;
};

/// "line:col: severity: message" (no trailing newline).
[[nodiscard]] std::string to_string(const Diagnostic& d);

/// Collects diagnostics; the driver decides whether to print or assert.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) {
    report(Severity::kError, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::kWarning, loc, std::move(message));
  }
  /// Report an out-of-subset construct. Strict mode (the default) keeps the
  /// historical behavior: a hard kError. Salvage mode records kUnsupported,
  /// which does not trip has_errors() — the caller lowers the construct to a
  /// havoc instead of aborting the unit.
  void unsupported(SourceLoc loc, std::string message) {
    report(salvage_ ? Severity::kUnsupported : Severity::kError, loc,
           std::move(message));
  }

  void set_salvage(bool on) noexcept { salvage_ = on; }
  [[nodiscard]] bool salvage() const noexcept { return salvage_; }

  [[nodiscard]] bool has_errors() const noexcept { return error_count_ != 0; }
  [[nodiscard]] std::size_t error_count() const noexcept { return error_count_; }
  [[nodiscard]] std::size_t unsupported_count() const noexcept {
    return unsupported_count_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return diagnostics_.size();
  }
  [[nodiscard]] const std::vector<Diagnostic>& all() const noexcept {
    return diagnostics_;
  }

  /// Demote every kError recorded at index >= first to kUnsupported. The
  /// parser's salvage recovery uses this after stubbing out an unparseable
  /// declaration: its syntax errors become attached notes of the SkippedDecl
  /// rather than unit-poisoning errors.
  void demote_errors_from(std::size_t first);

  /// Render all diagnostics as "line:col: severity: message" lines.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
  std::size_t unsupported_count_ = 0;
  bool salvage_ = false;
};

}  // namespace psa::support
