#include "support/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace psa::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              const std::function<bool()>& stop) {
  if (n == 0) return;
  if (n == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (stop && stop()) return;
      body(i);
    }
    return;
  }

  // Work-stealing by atomic index: workers grab the next undone iteration.
  // All state lives in one shared block so tasks that the queue drains late
  // (after this call returned) touch only valid memory.
  struct SharedState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> stopped{false};
    std::size_t total;
    std::function<void(std::size_t)> body;
    std::function<bool()> stop;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    /// First exception thrown by a body; guarded by error_mutex. The barrier
    /// still releases every iteration, then the caller rethrows it.
    std::mutex error_mutex;
    std::exception_ptr error;
  };
  auto state = std::make_shared<SharedState>();
  state->total = n;
  state->body = body;
  state->stop = stop;

  auto run_chunk = [state] {
    std::size_t processed = 0;
    for (;;) {
      const std::size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->total) break;
      // A skipped iteration still counts toward `done` below: the barrier
      // always releases and no task outlives the call.
      if (!state->stopped.load(std::memory_order_relaxed) && state->stop &&
          state->stop()) {
        state->stopped.store(true, std::memory_order_relaxed);
      }
      if (!state->stopped.load(std::memory_order_relaxed)) {
        try {
          state->body(i);
        } catch (...) {
          {
            std::lock_guard lock(state->error_mutex);
            if (!state->error) state->error = std::current_exception();
          }
          state->stopped.store(true, std::memory_order_relaxed);
        }
      }
      ++processed;
    }
    if (processed != 0 &&
        state->done.fetch_add(processed, std::memory_order_acq_rel) +
                processed ==
            state->total) {
      std::lock_guard lock(state->done_mutex);
      state->done_cv.notify_all();
    }
  };

  const std::size_t helpers = std::min(workers_.size(), n) - 1;
  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) tasks_.push(run_chunk);
  }
  cv_.notify_all();

  run_chunk();  // the calling thread participates

  {
    std::unique_lock lock(state->done_mutex);
    state->done_cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == n;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace psa::support
