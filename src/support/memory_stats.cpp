#include "support/memory_stats.hpp"

namespace psa::support {

MemoryStats& MemoryStats::instance() {
  static MemoryStats stats;
  return stats;
}

void MemoryStats::add(std::size_t bytes) noexcept {
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  const auto live =
      live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Lock-free peak update.
  auto peak = peak_bytes_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_bytes_.compare_exchange_weak(peak, live,
                                            std::memory_order_relaxed)) {
  }
  // Region high-water marks. The common case (no open region) is one relaxed
  // load; with regions open, one load per slot plus a CAS only on new peaks.
  if (active_regions_.load(std::memory_order_relaxed) == 0) return;
  for (RegionSlot& slot : regions_) {
    if (!slot.active.load(std::memory_order_relaxed)) continue;
    auto region_peak = slot.peak.load(std::memory_order_relaxed);
    while (live > region_peak &&
           !slot.peak.compare_exchange_weak(region_peak, live,
                                            std::memory_order_relaxed)) {
    }
  }
}

void MemoryStats::remove(std::size_t bytes) noexcept {
  live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

MemorySnapshot MemoryStats::snapshot() const noexcept {
  MemorySnapshot s;
  s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  s.total_allocated_bytes = total_bytes_.load(std::memory_order_relaxed);
  s.nodes_created = nodes_created_.load(std::memory_order_relaxed);
  s.graphs_created = graphs_created_.load(std::memory_order_relaxed);
  return s;
}

void MemoryStats::reset() noexcept {
  live_bytes_.store(0, std::memory_order_relaxed);
  peak_bytes_.store(0, std::memory_order_relaxed);
  total_bytes_.store(0, std::memory_order_relaxed);
  nodes_created_.store(0, std::memory_order_relaxed);
  graphs_created_.store(0, std::memory_order_relaxed);
}

MemoryRegion::MemoryRegion() noexcept {
  MemoryStats& stats = MemoryStats::instance();
  baseline_ = stats.snapshot();
  for (std::size_t i = 0; i < MemoryStats::kMaxRegions; ++i) {
    bool expected = false;
    if (stats.regions_[i].active.compare_exchange_strong(
            expected, true, std::memory_order_relaxed)) {
      // Seed the slot's peak with the current live level *before* announcing
      // the region, so delta() never reports below the baseline.
      stats.regions_[i].peak.store(baseline_.live_bytes,
                                   std::memory_order_relaxed);
      slot_ = i;
      stats.active_regions_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  // All slots taken: degraded mode, peak tracking falls back to live delta.
}

MemoryRegion::~MemoryRegion() {
  if (slot_ == SIZE_MAX) return;
  MemoryStats& stats = MemoryStats::instance();
  stats.active_regions_.fetch_sub(1, std::memory_order_relaxed);
  stats.regions_[slot_].active.store(false, std::memory_order_relaxed);
}

MemorySnapshot MemoryRegion::delta() const noexcept {
  MemoryStats& stats = MemoryStats::instance();
  const MemorySnapshot now = stats.snapshot();
  const auto clamped = [](std::uint64_t a, std::uint64_t b) {
    return a >= b ? a - b : 0;
  };
  MemorySnapshot d;
  d.live_bytes = clamped(now.live_bytes, baseline_.live_bytes);
  const std::uint64_t region_peak =
      slot_ == SIZE_MAX
          ? now.live_bytes
          : stats.regions_[slot_].peak.load(std::memory_order_relaxed);
  d.peak_bytes = clamped(region_peak, baseline_.live_bytes);
  d.total_allocated_bytes =
      clamped(now.total_allocated_bytes, baseline_.total_allocated_bytes);
  d.nodes_created = clamped(now.nodes_created, baseline_.nodes_created);
  d.graphs_created = clamped(now.graphs_created, baseline_.graphs_created);
  return d;
}

TrackedFootprint::TrackedFootprint(std::size_t bytes) noexcept : bytes_(bytes) {
  if (bytes_ != 0) MemoryStats::instance().add(bytes_);
}

TrackedFootprint::TrackedFootprint(const TrackedFootprint& other) noexcept
    : bytes_(other.bytes_) {
  if (bytes_ != 0) MemoryStats::instance().add(bytes_);
}

TrackedFootprint& TrackedFootprint::operator=(
    const TrackedFootprint& other) noexcept {
  resize(other.bytes_);
  return *this;
}

TrackedFootprint::TrackedFootprint(TrackedFootprint&& other) noexcept
    : bytes_(other.bytes_) {
  other.bytes_ = 0;
}

TrackedFootprint& TrackedFootprint::operator=(TrackedFootprint&& other) noexcept {
  if (this != &other) {
    if (bytes_ != 0) MemoryStats::instance().remove(bytes_);
    bytes_ = other.bytes_;
    other.bytes_ = 0;
  }
  return *this;
}

TrackedFootprint::~TrackedFootprint() {
  if (bytes_ != 0) MemoryStats::instance().remove(bytes_);
}

void TrackedFootprint::resize(std::size_t bytes) noexcept {
  if (bytes == bytes_) return;
  auto& stats = MemoryStats::instance();
  if (bytes > bytes_) {
    stats.add(bytes - bytes_);
  } else {
    stats.remove(bytes_ - bytes);
  }
  bytes_ = bytes;
}

}  // namespace psa::support
