#include "support/memory_stats.hpp"

namespace psa::support {

MemoryStats& MemoryStats::instance() {
  static MemoryStats stats;
  return stats;
}

void MemoryStats::add(std::size_t bytes) noexcept {
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  const auto live =
      live_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Lock-free peak update.
  auto peak = peak_bytes_.load(std::memory_order_relaxed);
  while (live > peak &&
         !peak_bytes_.compare_exchange_weak(peak, live,
                                            std::memory_order_relaxed)) {
  }
}

void MemoryStats::remove(std::size_t bytes) noexcept {
  live_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

MemorySnapshot MemoryStats::snapshot() const noexcept {
  MemorySnapshot s;
  s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  s.total_allocated_bytes = total_bytes_.load(std::memory_order_relaxed);
  s.nodes_created = nodes_created_.load(std::memory_order_relaxed);
  s.graphs_created = graphs_created_.load(std::memory_order_relaxed);
  return s;
}

void MemoryStats::reset() noexcept {
  live_bytes_.store(0, std::memory_order_relaxed);
  peak_bytes_.store(0, std::memory_order_relaxed);
  total_bytes_.store(0, std::memory_order_relaxed);
  nodes_created_.store(0, std::memory_order_relaxed);
  graphs_created_.store(0, std::memory_order_relaxed);
}

TrackedFootprint::TrackedFootprint(std::size_t bytes) noexcept : bytes_(bytes) {
  if (bytes_ != 0) MemoryStats::instance().add(bytes_);
}

TrackedFootprint::TrackedFootprint(const TrackedFootprint& other) noexcept
    : bytes_(other.bytes_) {
  if (bytes_ != 0) MemoryStats::instance().add(bytes_);
}

TrackedFootprint& TrackedFootprint::operator=(
    const TrackedFootprint& other) noexcept {
  resize(other.bytes_);
  return *this;
}

TrackedFootprint::TrackedFootprint(TrackedFootprint&& other) noexcept
    : bytes_(other.bytes_) {
  other.bytes_ = 0;
}

TrackedFootprint& TrackedFootprint::operator=(TrackedFootprint&& other) noexcept {
  if (this != &other) {
    if (bytes_ != 0) MemoryStats::instance().remove(bytes_);
    bytes_ = other.bytes_;
    other.bytes_ = 0;
  }
  return *this;
}

TrackedFootprint::~TrackedFootprint() {
  if (bytes_ != 0) MemoryStats::instance().remove(bytes_);
}

void TrackedFootprint::resize(std::size_t bytes) noexcept {
  if (bytes == bytes_) return;
  auto& stats = MemoryStats::instance();
  if (bytes > bytes_) {
    stats.add(bytes - bytes_);
  } else {
    stats.remove(bytes_ - bytes);
  }
  bytes_ = bytes;
}

}  // namespace psa::support
