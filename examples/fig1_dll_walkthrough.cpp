// Figure 1 walkthrough: watch the abstract interpretation of
// `x->nxt = NULL` transform the doubly-linked-list RSG of Fig. 1 (a),
// phase by phase — division, pruning, materialization, link removal.
//
//   $ ./fig1_dll_walkthrough
//
// Uses the public rsg:: operations directly on a hand-built graph (exactly
// the graph of the paper's figure), printing each intermediate RSG.
#include <iostream>

#include "client/dot.hpp"
#include "rsg/ops.hpp"
#include "support/interner.hpp"

int main() {
  using namespace psa;
  using rsg::Cardinality;
  using rsg::NodeProps;
  using rsg::NodeRef;
  using rsg::Rsg;

  support::Interner interner;
  const auto x = interner.intern("x");
  const auto nxt = interner.intern("nxt");
  const auto prv = interner.intern("prv");

  // --- Fig. 1 (a): x -> n1, summary middles n2, last n3 ------------------
  Rsg g;
  NodeProps one;
  one.cardinality = Cardinality::kOne;
  NodeProps many;
  many.cardinality = Cardinality::kMany;

  const NodeRef n1 = g.add_node(one);
  const NodeRef n2 = g.add_node(many);
  const NodeRef n3 = g.add_node(one);
  g.bind_pvar(x, n1);
  g.add_link(n1, nxt, n2);
  g.add_link(n1, nxt, n3);
  g.add_link(n2, nxt, n2);
  g.add_link(n2, nxt, n3);
  g.add_link(n2, prv, n1);
  g.add_link(n2, prv, n2);
  g.add_link(n3, prv, n1);
  g.add_link(n3, prv, n2);

  auto& p1 = g.props(n1);
  p1.selout.insert(nxt);
  p1.selin.insert(prv);
  p1.cyclelinks.insert(rsg::SelPair{nxt, prv});
  auto& p2 = g.props(n2);
  p2.selin.insert(nxt);
  p2.selout.insert(nxt);
  p2.selin.insert(prv);
  p2.selout.insert(prv);
  p2.cyclelinks.insert(rsg::SelPair{nxt, prv});
  p2.cyclelinks.insert(rsg::SelPair{prv, nxt});
  p2.shared = true;
  auto& p3 = g.props(n3);
  p3.selin.insert(nxt);
  p3.selout.insert(prv);
  p3.cyclelinks.insert(rsg::SelPair{prv, nxt});
  p3.shared = true;

  std::cout << "=== Fig. 1 (a): the input RSG (a DLL of 2 or more elements)\n"
            << g.dump(interner) << '\n';

  // --- Fig. 1 (b)+(c): DIVIDE on (x, nxt), each variant pruned -----------
  const auto variants = rsg::divide(g, x, nxt);
  std::cout << "=== After DIVIDE + PRUNE: " << variants.size()
            << " variant(s)\n";
  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::cout << "--- rsg''_" << i + 1 << " ---\n"
              << variants[i].dump(interner) << '\n';
  }

  // --- Fig. 1 (d): materialize n4 out of the summary ---------------------
  for (const Rsg& variant : variants) {
    const NodeRef vx = variant.pvar_target(x);
    const auto targets = variant.sel_targets(vx, nxt);
    if (targets.size() != 1) continue;
    if (variant.props(targets[0]).cardinality != Cardinality::kMany) continue;

    std::cout << "=== Materialization (Fig. 1 (d)) in the summary variant\n";
    for (const auto& mat : rsg::materialize(variant, vx, nxt)) {
      std::cout << "--- n4 = n" << mat.one_node << " ---\n"
                << mat.graph.dump(interner) << '\n';

      // --- Fig. 1 (e): remove the focused link --------------------------
      Rsg final_graph = mat.graph;
      final_graph.remove_link(vx, nxt, mat.one_node);
      final_graph.props(vx).selout.erase(nxt);
      auto& pm = final_graph.props(mat.one_node);
      pm.selin.erase(nxt);
      pm.cyclelinks.erase_if(
          [&](rsg::SelPair cl) { return cl.back == nxt || cl.out == prv; });
      final_graph.props(vx).cyclelinks.erase_if(
          [&](rsg::SelPair cl) { return cl.out == nxt; });
      if (rsg::prune(final_graph)) {
        std::cout << "=== After removing x->nxt (Fig. 1 (e))\n"
                  << final_graph.dump(interner) << '\n';
        std::cout << "DOT:\n"
                  << client::to_dot(final_graph, interner, "fig1_e") << '\n';
      } else {
        std::cout << "(variant infeasible after removal)\n";
      }
    }
  }
  return 0;
}
