// psa_cli — the command-line driver: analyze C files from disk.
//
//   $ ./psa_cli FILE.c [FILE.c ...]
//                      [--function=NAME] [--level=1|2|3] [--progressive]
//                      [--per-statement] [--dot=OUT.dot] [--annotate]
//                      [--check] [--sarif=OUT.sarif]
//                      [--no-widen] [--threads=N] [--memory-budget=BYTES]
//                      [--deadline-ms=MS] [--max-visits=N] [--hard-fail]
//
// Prints the analysis report (status, cost, exit-state shape facts, loop
// parallelism) and, when the resource governor had to degrade, its summary;
// --dot writes the exit RSRSG as graphviz; --progressive runs the
// L1 -> L2 -> L3 driver using "no structure possibly cyclic" as the accuracy
// criterion. --hard-fail restores the legacy abort-on-budget behavior.
// --check runs the memory-safety checkers (docs/CHECKERS.md) over the
// fixpoint and prints their findings; --sarif additionally writes them as a
// SARIF 2.1.0 log (implies --check).
//
// Batch isolation: each file is analyzed independently; a file the frontend
// rejects is reported and skipped. The exit code is nonzero only when every
// input failed.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/progressive.hpp"
#include "checker/checker.hpp"
#include "checker/sarif.hpp"
#include "client/dot.hpp"
#include "client/parallelism.hpp"
#include "client/queries.hpp"
#include "client/report.hpp"

namespace {

using namespace psa;

struct CliOptions {
  std::vector<std::string> files;
  std::string function = "main";
  int level = 1;
  bool progressive = false;
  bool per_statement = false;
  bool annotate = false;
  bool check = false;
  std::string sarif_path;
  std::string dot_path;
  analysis::Options engine;
};

bool parse_args(int argc, char** argv, CliOptions& out) try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](std::string_view prefix) -> std::string {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--function=", 0) == 0) {
      out.function = value_of("--function=");
    } else if (arg.rfind("--level=", 0) == 0) {
      out.level = std::stoi(value_of("--level="));
      if (out.level < 1 || out.level > 3) return false;
    } else if (arg == "--progressive") {
      out.progressive = true;
    } else if (arg == "--per-statement") {
      out.per_statement = true;
    } else if (arg == "--annotate") {
      out.annotate = true;
    } else if (arg == "--check") {
      out.check = true;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      out.sarif_path = value_of("--sarif=");
      out.check = true;
    } else if (arg.rfind("--dot=", 0) == 0) {
      out.dot_path = value_of("--dot=");
    } else if (arg == "--no-widen") {
      out.engine.widen_threshold = 0;
    } else if (arg.rfind("--threads=", 0) == 0) {
      out.engine.threads = std::stoul(value_of("--threads="));
    } else if (arg.rfind("--memory-budget=", 0) == 0) {
      out.engine.memory_budget_bytes =
          std::stoull(value_of("--memory-budget="));
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      out.engine.deadline_ms = std::stoull(value_of("--deadline-ms="));
    } else if (arg.rfind("--max-visits=", 0) == 0) {
      out.engine.max_node_visits = std::stoull(value_of("--max-visits="));
    } else if (arg == "--hard-fail") {
      out.engine.budget_policy = analysis::BudgetPolicy::kHardFail;
    } else if (!arg.empty() && arg[0] != '-') {
      out.files.push_back(arg);
    } else {
      return false;
    }
  }
  return !out.files.empty();
} catch (const std::exception&) {
  return false;  // malformed numeric value (stoi/stoull)
}

int usage() {
  std::cerr << "usage: psa_cli FILE.c [FILE.c ...] [--function=NAME]\n"
               "               [--level=1|2|3] [--progressive]\n"
               "               [--per-statement] [--annotate] [--dot=OUT.dot]\n"
               "               [--check] [--sarif=OUT.sarif]\n"
               "               [--no-widen] [--threads=N]\n"
               "               [--memory-budget=BYTES] [--deadline-ms=MS]\n"
               "               [--max-visits=N] [--hard-fail]\n";
  return 2;
}

/// Analyze one file end to end. Returns false on failure (unreadable file or
/// frontend rejection) — the caller keeps going with the other inputs.
bool run_file(const std::string& file, const CliOptions& cli) {
  std::ifstream in(file);
  if (!in) {
    std::cerr << "cannot open '" << file << "'\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  try {
    const analysis::ProgramAnalysis program =
        analysis::prepare(source, cli.function);

    analysis::AnalysisResult result;
    if (cli.progressive) {
      const std::vector<analysis::ShapeCriterion> criteria = {
          {"no-possibly-cyclic-structure",
           [](const analysis::ProgramAnalysis& p,
              const analysis::AnalysisResult& r) {
             for (const auto sym : p.cfg.pointer_vars()) {
               const std::string name{p.interner().spelling(sym)};
               if (client::classify_structure(p, r.at_exit(p.cfg), name) ==
                   client::StructureKind::kCyclic) {
                 return false;
               }
             }
             return true;
           }},
      };
      analysis::Options engine = cli.engine;
      const auto out = analysis::run_progressive(program, criteria, engine);
      for (const auto& attempt : out.attempts) {
        std::cout << rsg::to_string(attempt.level) << ": "
                  << analysis::to_string(attempt.result.status);
        if (!attempt.failed_criteria.empty()) {
          std::cout << " (failed:";
          for (const auto& c : attempt.failed_criteria) std::cout << ' ' << c;
          std::cout << ')';
        }
        if (!attempt.stop_reason.empty()) {
          std::cout << " [stop: " << attempt.stop_reason << ']';
        }
        std::cout << '\n';
      }
      if (out.resource_exhausted) {
        std::cout << "stopped: " << out.stop_reason << '\n';
      }
      result = out.best().result;
      std::cout << "final level: " << rsg::to_string(out.best().level)
                << "\n\n";
    } else {
      analysis::Options engine = cli.engine;
      engine.level = static_cast<rsg::AnalysisLevel>(cli.level);
      result = analysis::analyze_program(program, engine);
    }

    client::ReportOptions report;
    report.per_statement = cli.per_statement;
    std::cout << client::format_analysis_report(program, result, report);

    if (cli.annotate) {
      std::cout << "\nannotated source:\n"
                << client::annotate_source(
                       source, client::detect_parallel_loops(program, result));
    }

    if (!cli.dot_path.empty()) {
      std::ofstream dot(cli.dot_path);
      dot << client::to_dot(result.at_exit(program.cfg), program.interner());
      std::cout << "\nexit RSRSG written to " << cli.dot_path << '\n';
    }

    if (cli.check) {
      const auto findings = checker::run_checkers(program, result);
      std::cout << "\nmemory-safety findings (" << findings.size() << "):\n"
                << checker::format_findings(findings, program);
      if (!cli.sarif_path.empty()) {
        checker::SarifOptions sarif;
        sarif.artifact_uri = file;
        std::ofstream out(cli.sarif_path);
        out << checker::to_sarif(findings, sarif);
        std::cout << "SARIF log written to " << cli.sarif_path << '\n';
      }
    }
  } catch (const analysis::FrontendError& e) {
    std::cerr << file << ": frontend error (skipped):\n" << e.what();
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_args(argc, argv, cli)) return usage();

  std::size_t succeeded = 0;
  for (std::size_t i = 0; i < cli.files.size(); ++i) {
    if (cli.files.size() > 1) {
      if (i != 0) std::cout << '\n';
      std::cout << "=== " << cli.files[i] << " ===\n";
    }
    if (run_file(cli.files[i], cli)) ++succeeded;
  }
  return succeeded == 0 ? 1 : 0;
}
