// psa_cli — the command-line driver: analyze a C file from disk.
//
//   $ ./psa_cli FILE.c [--function=NAME] [--level=1|2|3] [--progressive]
//                      [--per-statement] [--dot=OUT.dot] [--annotate]
//                      [--no-widen] [--threads=N] [--memory-budget=BYTES]
//
// Prints the analysis report (status, cost, exit-state shape facts, loop
// parallelism); --dot writes the exit RSRSG as graphviz; --progressive runs
// the L1 -> L2 -> L3 driver using "no structure possibly cyclic" as the
// accuracy criterion.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/progressive.hpp"
#include "client/dot.hpp"
#include "client/parallelism.hpp"
#include "client/queries.hpp"
#include "client/report.hpp"

namespace {

using namespace psa;

struct CliOptions {
  std::string file;
  std::string function = "main";
  int level = 1;
  bool progressive = false;
  bool per_statement = false;
  bool annotate = false;
  std::string dot_path;
  analysis::Options engine;
};

bool parse_args(int argc, char** argv, CliOptions& out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](std::string_view prefix) -> std::string {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--function=", 0) == 0) {
      out.function = value_of("--function=");
    } else if (arg.rfind("--level=", 0) == 0) {
      out.level = std::stoi(value_of("--level="));
      if (out.level < 1 || out.level > 3) return false;
    } else if (arg == "--progressive") {
      out.progressive = true;
    } else if (arg == "--per-statement") {
      out.per_statement = true;
    } else if (arg == "--annotate") {
      out.annotate = true;
    } else if (arg.rfind("--dot=", 0) == 0) {
      out.dot_path = value_of("--dot=");
    } else if (arg == "--no-widen") {
      out.engine.widen_threshold = 0;
    } else if (arg.rfind("--threads=", 0) == 0) {
      out.engine.threads = std::stoul(value_of("--threads="));
    } else if (arg.rfind("--memory-budget=", 0) == 0) {
      out.engine.memory_budget_bytes =
          std::stoull(value_of("--memory-budget="));
    } else if (!arg.empty() && arg[0] != '-') {
      out.file = arg;
    } else {
      return false;
    }
  }
  return !out.file.empty();
}

int usage() {
  std::cerr << "usage: psa_cli FILE.c [--function=NAME] [--level=1|2|3]\n"
               "               [--progressive] [--per-statement] [--annotate]\n"
               "               [--dot=OUT.dot] [--no-widen] [--threads=N]\n"
               "               [--memory-budget=BYTES]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_args(argc, argv, cli)) return usage();

  std::ifstream in(cli.file);
  if (!in) {
    std::cerr << "cannot open '" << cli.file << "'\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  try {
    const analysis::ProgramAnalysis program =
        analysis::prepare(source, cli.function);

    analysis::AnalysisResult result;
    if (cli.progressive) {
      const std::vector<analysis::ShapeCriterion> criteria = {
          {"no-possibly-cyclic-structure",
           [](const analysis::ProgramAnalysis& p,
              const analysis::AnalysisResult& r) {
             for (const auto sym : p.cfg.pointer_vars()) {
               const std::string name{p.interner().spelling(sym)};
               if (client::classify_structure(p, r.at_exit(p.cfg), name) ==
                   client::StructureKind::kCyclic) {
                 return false;
               }
             }
             return true;
           }},
      };
      const auto out =
          analysis::run_progressive(program, criteria, cli.engine);
      for (const auto& attempt : out.attempts) {
        std::cout << rsg::to_string(attempt.level) << ": "
                  << analysis::to_string(attempt.result.status);
        if (!attempt.failed_criteria.empty()) {
          std::cout << " (failed:";
          for (const auto& c : attempt.failed_criteria) std::cout << ' ' << c;
          std::cout << ')';
        }
        std::cout << '\n';
      }
      result = out.attempts.back().result;
      std::cout << "final level: " << rsg::to_string(out.final_level())
                << "\n\n";
    } else {
      cli.engine.level = static_cast<rsg::AnalysisLevel>(cli.level);
      result = analysis::analyze_program(program, cli.engine);
    }

    client::ReportOptions report;
    report.per_statement = cli.per_statement;
    std::cout << client::format_analysis_report(program, result, report);

    if (cli.annotate) {
      std::cout << "\nannotated source:\n"
                << client::annotate_source(
                       source, client::detect_parallel_loops(program, result));
    }

    if (!cli.dot_path.empty()) {
      std::ofstream dot(cli.dot_path);
      dot << client::to_dot(result.at_exit(program.cfg), program.interner());
      std::cout << "\nexit RSRSG written to " << cli.dot_path << '\n';
    }
  } catch (const analysis::FrontendError& e) {
    std::cerr << "frontend error:\n" << e.what();
    return 1;
  }
  return 0;
}
