// psa_cli — the command-line driver: analyze C files from disk.
//
//   $ ./psa_cli FILE.c [FILE.c ...]
//                      [--function=NAME] [--level=1|2|3] [--progressive]
//                      [--per-statement] [--dot=OUT.dot] [--annotate]
//                      [--check] [--sarif=OUT.sarif]
//                      [--profile] [--metrics-out=FILE.jsonl]
//                      [--no-widen] [--threads=N] [--memory-budget=BYTES]
//                      [--no-summaries] [--summary-iters=N]
//                      [--deadline-ms=MS] [--max-visits=N] [--hard-fail]
//                      [--isolate[=on|off]] [--jobs=N] [--timeout-ms=MS]
//                      [--checkpoint=DIR] [--resume] [--corpus]
//                      [--corpus-dirty] [--strict-frontend]
//                      [--cache-dir=DIR] [--cache-max-bytes=N]
//                      [--cache-max-age=SECONDS]
//                      [--serve=SOCK] [--connect=SOCK]
//                      [--fault-campaign=DIR] [--campaign-kinds=K1,K2,...]
//                      [--campaign-max-ops=N] [--campaign-full-corpus]
//                      [--help]
//
// Two modes share one exit-code contract (see below):
//
// DETAILED mode (default): each file is analyzed in-process and gets the
// full report (status, cost, exit-state shape facts, loop parallelism,
// governor summary); --dot writes the exit RSRSG as graphviz; --progressive
// runs the L1 -> L2 -> L3 driver; --check prints the memory-safety findings
// (docs/CHECKERS.md) and --sarif writes them as SARIF 2.1.0.
//
// BATCH mode (any of --isolate / --jobs / --timeout-ms / --checkpoint /
// --resume / --corpus): the crash-isolated supervisor (docs/RESILIENCE.md)
// runs every unit in a sandboxed worker process — a crash, hang or memory
// blow-up costs one unit, never the batch. --timeout-ms arms the per-unit
// watchdog, --jobs runs workers concurrently, --checkpoint journals
// progress so a killed batch is resumable with --resume, --corpus analyzes
// the bundled corpus programs, and --sarif merges the findings of every
// completed unit into one SARIF log. Batch workers run the SALVAGE
// frontend by default (docs/RESILIENCE.md): a unit mixing analyzable
// functions with unsupported C completes as a *partial* unit — skipped
// declarations are stubbed, unsupported statements lower to sound havoc,
// findings whose every witness crosses havocked state are downgraded to
// "possible (degraded frontend)" — instead of failing with a frontend
// error. --strict-frontend restores the fail-fast behavior (any
// unsupported construct rejects the unit); --corpus-dirty analyzes the
// bundled dirty corpus (salvage acceptance fixtures). The batch report on
// stdout is
// deterministic: resuming an interrupted run reproduces the uninterrupted
// report byte for byte. --isolate=off keeps the same reporting but runs
// in-process (only exceptions are contained). Detailed-mode flags that need
// a live analysis (--progressive, --per-statement, --annotate, --dot) are
// rejected in batch mode.
//
// SERVICE mode (docs/SERVICE.md): --serve=SOCK runs the persistent analysis
// daemon on a unix socket with the content-addressed result cache
// (--cache-dir) resident; SIGTERM drains it gracefully (exit 0). --connect
// =SOCK streams a batch from a running daemon (PSARPC2): unit results arrive
// one frame at a time, a torn stream is resumed over a fresh connection
// re-requesting only the unfinished units, and past the retry budget the
// remainder falls back to local analysis — the report is byte-identical
// either way. --cache-dir also works without a daemon: batch workers look
// up each unit's content-addressed key and skip the fixpoint on a hit, so a
// warm re-run re-analyzes only edited units. --cache-max-bytes /
// --cache-max-age bound the cache: after the batch (or, for the daemon,
// after each request) entries unused past the age limit expire and the
// oldest are evicted until the directory fits the byte cap (crash-safe,
// concurrent-sweeper-safe; docs/SERVICE.md). Daemon knobs via environment:
// PSA_SERVE_INFLIGHT (handler cap), PSA_SERVE_QUEUE (waiting connections),
// PSA_SERVE_HEARTBEAT_MS (stream liveness), PSA_SERVE_REQUEST_DEADLINE_MS.
//
// OBSERVABILITY (both modes, docs/OBSERVABILITY.md): --profile prints the
// phase-timer / operation-counter / gauge summary (stdout in detailed mode;
// stderr in batch mode, where stdout is the deterministic report);
// --metrics-out writes one psa.metrics.v1 JSONL record per analyzed unit
// plus a final aggregate record that equals the element-wise sum of the
// unit records.
//
// Exit codes (asserted by tests/driver/cli_integration_test.cpp):
//   0  every unit analyzed, no findings
//   1  every unit analyzed, memory-safety findings reported
//   2  bad usage
//   3  some units failed (crash / timeout / oom / exit / frontend error)
//   4  every unit failed
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/profile.hpp"
#include "analysis/progressive.hpp"
#include "checker/checker.hpp"
#include "checker/sarif.hpp"
#include "client/dot.hpp"
#include "client/parallelism.hpp"
#include "client/queries.hpp"
#include "client/report.hpp"
#include "driver/campaign.hpp"
#include "driver/supervisor.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "support/metrics.hpp"

namespace {

using namespace psa;

struct CliOptions {
  std::vector<std::string> files;
  std::string function = "main";
  int level = 1;
  bool progressive = false;
  bool per_statement = false;
  bool annotate = false;
  bool check = false;
  bool help = false;
  bool list_counters = false;
  bool profile = false;
  std::string metrics_path;
  std::string sarif_path;
  std::string dot_path;
  analysis::Options engine;

  // Batch mode.
  bool batch = false;
  bool isolate = true;
  std::size_t jobs = 1;
  std::uint64_t timeout_ms = 0;
  std::string checkpoint_dir;
  bool resume = false;
  bool corpus = false;
  bool corpus_dirty = false;
  bool strict_frontend = false;

  // Fault-campaign mode (docs/RESILIENCE.md, "The I/O fault space").
  std::string campaign_dir;
  std::vector<std::string> campaign_kinds;
  std::uint64_t campaign_max_ops = 0;
  bool campaign_full_corpus = false;

  // Service mode (docs/SERVICE.md).
  std::string cache_dir;
  std::uint64_t cache_max_bytes = 0;
  std::uint64_t cache_max_age_s = 0;
  std::string serve_socket;
  std::string connect_socket;
};

bool parse_args(int argc, char** argv, CliOptions& out) try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](std::string_view prefix) -> std::string {
      return arg.substr(prefix.size());
    };
    if (arg.rfind("--function=", 0) == 0) {
      out.function = value_of("--function=");
    } else if (arg.rfind("--level=", 0) == 0) {
      out.level = std::stoi(value_of("--level="));
      if (out.level < 1 || out.level > 3) return false;
    } else if (arg == "--progressive") {
      out.progressive = true;
    } else if (arg == "--per-statement") {
      out.per_statement = true;
    } else if (arg == "--annotate") {
      out.annotate = true;
    } else if (arg == "--check") {
      out.check = true;
    } else if (arg == "--help") {
      out.help = true;
      return true;  // short-circuits: other arguments are not validated
    } else if (arg == "--list-counters") {
      out.list_counters = true;
      return true;  // short-circuits like --help: needs no input files
    } else if (arg == "--profile") {
      out.profile = true;
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      out.metrics_path = value_of("--metrics-out=");
      if (out.metrics_path.empty()) return false;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      out.sarif_path = value_of("--sarif=");
      out.check = true;
    } else if (arg.rfind("--dot=", 0) == 0) {
      out.dot_path = value_of("--dot=");
    } else if (arg == "--no-widen") {
      out.engine.widen_threshold = 0;
    } else if (arg == "--no-summaries") {
      out.engine.enable_summaries = false;
    } else if (arg.rfind("--summary-iters=", 0) == 0) {
      out.engine.max_summary_iters = std::stoull(value_of("--summary-iters="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      out.engine.threads = std::stoul(value_of("--threads="));
    } else if (arg.rfind("--memory-budget=", 0) == 0) {
      out.engine.memory_budget_bytes =
          std::stoull(value_of("--memory-budget="));
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      out.engine.deadline_ms = std::stoull(value_of("--deadline-ms="));
    } else if (arg.rfind("--max-visits=", 0) == 0) {
      out.engine.max_node_visits = std::stoull(value_of("--max-visits="));
    } else if (arg == "--hard-fail") {
      out.engine.budget_policy = analysis::BudgetPolicy::kHardFail;
    } else if (arg == "--isolate" || arg == "--isolate=on") {
      out.batch = true;
      out.isolate = true;
    } else if (arg == "--isolate=off") {
      out.batch = true;
      out.isolate = false;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      out.batch = true;
      out.jobs = std::stoul(value_of("--jobs="));
      if (out.jobs == 0) return false;
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      out.batch = true;
      out.timeout_ms = std::stoull(value_of("--timeout-ms="));
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      out.batch = true;
      out.checkpoint_dir = value_of("--checkpoint=");
    } else if (arg == "--resume") {
      out.batch = true;
      out.resume = true;
    } else if (arg == "--corpus") {
      out.batch = true;
      out.corpus = true;
    } else if (arg == "--corpus-dirty") {
      out.batch = true;
      out.corpus_dirty = true;
    } else if (arg == "--strict-frontend") {
      out.batch = true;
      out.strict_frontend = true;
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      out.batch = true;
      out.cache_dir = value_of("--cache-dir=");
      if (out.cache_dir.empty()) return false;
    } else if (arg.rfind("--cache-max-bytes=", 0) == 0) {
      out.batch = true;
      out.cache_max_bytes = std::stoull(value_of("--cache-max-bytes="));
      if (out.cache_max_bytes == 0) return false;
    } else if (arg.rfind("--cache-max-age=", 0) == 0) {
      out.batch = true;
      out.cache_max_age_s = std::stoull(value_of("--cache-max-age="));
      if (out.cache_max_age_s == 0) return false;
    } else if (arg.rfind("--fault-campaign=", 0) == 0) {
      out.campaign_dir = value_of("--fault-campaign=");
      if (out.campaign_dir.empty()) return false;
    } else if (arg.rfind("--campaign-kinds=", 0) == 0) {
      out.campaign_kinds.clear();
      std::istringstream kinds(value_of("--campaign-kinds="));
      std::string kind;
      while (std::getline(kinds, kind, ',')) {
        if (!kind.empty()) out.campaign_kinds.push_back(kind);
      }
      if (out.campaign_kinds.empty()) return false;
    } else if (arg.rfind("--campaign-max-ops=", 0) == 0) {
      out.campaign_max_ops = std::stoull(value_of("--campaign-max-ops="));
      if (out.campaign_max_ops == 0) return false;
    } else if (arg == "--campaign-full-corpus") {
      out.campaign_full_corpus = true;
    } else if (arg.rfind("--serve=", 0) == 0) {
      out.serve_socket = value_of("--serve=");
      if (out.serve_socket.empty()) return false;
    } else if (arg.rfind("--connect=", 0) == 0) {
      out.batch = true;
      out.connect_socket = value_of("--connect=");
      if (out.connect_socket.empty()) return false;
    } else if (!arg.empty() && arg[0] != '-') {
      out.files.push_back(arg);
    } else {
      return false;
    }
  }
  if (!out.campaign_dir.empty()) {
    // Campaign mode is exclusive: it generates its own corpus and re-execs
    // this binary per scenario, so it takes no files and no other mode.
    return out.files.empty() && !out.batch && out.serve_socket.empty();
  }
  if (!out.campaign_kinds.empty() || out.campaign_max_ops > 0 ||
      out.campaign_full_corpus) {
    return false;  // --campaign-* knobs require --fault-campaign
  }
  if (!out.serve_socket.empty()) {
    // Serve mode is exclusive: the daemon takes work over the socket, not
    // from the command line.
    return out.files.empty() && !out.corpus && !out.corpus_dirty &&
           out.connect_socket.empty();
  }
  if (out.batch) {
    // Batch reports come from serialized payloads; flags that need the live
    // in-memory analysis are detailed-mode only.
    if (out.progressive || out.per_statement || out.annotate ||
        !out.dot_path.empty()) {
      return false;
    }
    if (out.resume && out.checkpoint_dir.empty()) return false;
    return !out.files.empty() || out.corpus || out.corpus_dirty;
  }
  return !out.files.empty();
} catch (const std::exception&) {
  return false;  // malformed numeric value (stoi/stoull)
}

// The canonical flag reference. README.md embeds this text verbatim in a
// fenced code block and tests/driver/cli_integration_test.cpp diffs the two
// — update both together.
constexpr const char* kHelpText =
    "usage: psa_cli FILE.c [FILE.c ...] [--function=NAME]\n"
    "               [--level=1|2|3] [--progressive]\n"
    "               [--per-statement] [--annotate] [--dot=OUT.dot]\n"
    "               [--check] [--sarif=OUT.sarif]\n"
    "               [--profile] [--metrics-out=FILE.jsonl]\n"
    "               [--no-widen] [--threads=N]\n"
    "               [--no-summaries] [--summary-iters=N]\n"
    "               [--memory-budget=BYTES] [--deadline-ms=MS]\n"
    "               [--max-visits=N] [--hard-fail]\n"
    "       batch:  [--isolate[=on|off]] [--jobs=N] [--timeout-ms=MS]\n"
    "               [--checkpoint=DIR] [--resume] [--corpus]\n"
    "               [--corpus-dirty] [--strict-frontend]\n"
    "               [--cache-dir=DIR] [--cache-max-bytes=N]\n"
    "               [--cache-max-age=SECONDS]\n"
    "       serve:  [--serve=SOCK] [--connect=SOCK] [--cache-dir=DIR]\n"
    "               [--cache-max-bytes=N] [--cache-max-age=SECONDS]\n"
    "       fault:  [--fault-campaign=DIR] [--campaign-kinds=K1,K2,...]\n"
    "               [--campaign-max-ops=N] [--campaign-full-corpus]\n"
    "       --help  print this reference and exit\n"
    "       --list-counters  print every metrics counter name and exit\n"
    "exit codes: 0 ok, 1 findings, 2 bad usage, 3 some units failed,\n"
    "            4 all units failed (partial units count as analyzed)\n";

int usage() {
  std::cerr << kHelpText;
  return driver::kExitBadUsage;
}

/// Analyze one file end to end in detailed mode. Returns the number of
/// findings via `findings_out`; false on failure (unreadable file or
/// frontend rejection) — the caller keeps going with the other inputs.
bool run_file(const std::string& file, const CliOptions& cli,
              std::size_t& findings_out,
              std::vector<analysis::UnitMetrics>& metrics_out) {
  std::ifstream in(file);
  if (!in) {
    std::cerr << "cannot open '" << file << "'\n";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string source = buffer.str();

  try {
    // Whole-file delta: parse + CFG + fixpoint + checkers. Closed right
    // before the metric record is built.
    const support::MetricsRegion unit_region;
    const analysis::ProgramAnalysis program =
        analysis::prepare(source, cli.function);

    analysis::AnalysisResult result;
    std::string level_str;
    if (cli.progressive) {
      const std::vector<analysis::ShapeCriterion> criteria = {
          {"no-possibly-cyclic-structure",
           [](const analysis::ProgramAnalysis& p,
              const analysis::AnalysisResult& r) {
             for (const auto sym : p.cfg.pointer_vars()) {
               const std::string name{p.interner().spelling(sym)};
               if (client::classify_structure(p, r.at_exit(p.cfg), name) ==
                   client::StructureKind::kCyclic) {
                 return false;
               }
             }
             return true;
           }},
      };
      analysis::Options engine = cli.engine;
      const auto out = analysis::run_progressive(program, criteria, engine);
      for (const auto& attempt : out.attempts) {
        std::cout << rsg::to_string(attempt.level) << ": "
                  << analysis::to_string(attempt.result.status);
        if (!attempt.failed_criteria.empty()) {
          std::cout << " (failed:";
          for (const auto& c : attempt.failed_criteria) std::cout << ' ' << c;
          std::cout << ')';
        }
        if (!attempt.stop_reason.empty()) {
          std::cout << " [stop: " << attempt.stop_reason << ']';
        }
        std::cout << '\n';
      }
      if (out.resource_exhausted) {
        std::cout << "stopped: " << out.stop_reason << '\n';
      }
      result = out.best().result;
      level_str = std::string(rsg::to_string(out.best().level));
      std::cout << "final level: " << rsg::to_string(out.best().level)
                << "\n\n";
    } else {
      analysis::Options engine = cli.engine;
      engine.level = static_cast<rsg::AnalysisLevel>(cli.level);
      level_str = std::string(rsg::to_string(engine.level));
      result = analysis::analyze_program(program, engine);
    }

    client::ReportOptions report;
    report.per_statement = cli.per_statement;
    std::cout << client::format_analysis_report(program, result, report);

    if (cli.annotate) {
      std::cout << "\nannotated source:\n"
                << client::annotate_source(
                       source, client::detect_parallel_loops(program, result));
    }

    if (!cli.dot_path.empty()) {
      std::ofstream dot(cli.dot_path);
      dot << client::to_dot(result.at_exit(program.cfg), program.interner());
      std::cout << "\nexit RSRSG written to " << cli.dot_path << '\n';
    }

    if (cli.check) {
      const auto findings = checker::run_checkers(program, result);
      findings_out += findings.size();
      std::cout << "\nmemory-safety findings (" << findings.size() << "):\n"
                << checker::format_findings(findings, program);
      if (!cli.sarif_path.empty()) {
        checker::SarifOptions sarif;
        sarif.artifact_uri = file;
        std::ofstream out(cli.sarif_path);
        out << checker::to_sarif(findings, sarif);
        std::cout << "SARIF log written to " << cli.sarif_path << '\n';
      }
    }

    if (cli.profile || !cli.metrics_path.empty()) {
      analysis::UnitMetrics m = analysis::collect_unit_metrics(
          file, cli.function, level_str, result);
      // Widen from the fixpoint-only result.ops to the whole-file delta so
      // the parse/cfg/checker phase timers are attributed to this unit.
      m.ops = unit_region.delta();
      if (cli.profile) std::cout << '\n' << analysis::format_profile(m);
      metrics_out.push_back(std::move(m));
    }
  } catch (const analysis::FrontendError& e) {
    std::cerr << file << ": frontend error (skipped):\n" << e.what();
    return false;
  }
  return true;
}

int run_batch_mode(const CliOptions& cli) {
  std::vector<driver::AnalysisUnit> units;
  for (const std::string& file : cli.files) {
    driver::AnalysisUnit unit;
    unit.name = file;
    unit.function = cli.function;
    unit.source_path = file;
    units.push_back(std::move(unit));
  }
  if (cli.corpus) {
    for (driver::AnalysisUnit& unit : driver::corpus_units()) {
      unit.function = "main";  // corpus programs are whole `main` bodies
      units.push_back(std::move(unit));
    }
  }
  if (cli.corpus_dirty) {
    for (driver::AnalysisUnit& unit : driver::corpus_dirty_units()) {
      unit.function = "main";
      units.push_back(std::move(unit));
    }
  }

  driver::BatchOptions batch;
  batch.isolate = cli.isolate;
  batch.jobs = cli.jobs;
  batch.checkpoint_dir = cli.checkpoint_dir;
  batch.resume = cli.resume;
  batch.cache_dir = cli.cache_dir;
  batch.cache_max_bytes = cli.cache_max_bytes;
  batch.cache_max_age_ms = cli.cache_max_age_s * 1000;
  batch.unit_timeout_ms = cli.timeout_ms;
  batch.check = cli.check;
  batch.strict_frontend = cli.strict_frontend;
  batch.engine = cli.engine;
  batch.engine.level = static_cast<rsg::AnalysisLevel>(cli.level);
  // Progress goes to stderr so stdout stays the deterministic batch report
  // (the resume acceptance test compares it byte for byte).
  batch.log = [](const std::string& line) { std::cerr << line << '\n'; };

  driver::BatchResult result;
  try {
    if (!cli.connect_socket.empty()) {
      // Via the daemon, with the availability contract of
      // service/client.hpp: retries with backoff, then an in-process
      // fallback with the exact same options — a dead daemon never fails
      // the build, and the report is byte-identical either way.
      service::ClientOptions connect;
      connect.socket_path = cli.connect_socket;
      connect.log = [](const std::string& line) {
        std::cerr << line << '\n';
      };
      service::RequestOutcome outcome =
          service::run_request(units, batch, connect);
      result = std::move(outcome.result);
    } else {
      result = driver::run_batch(units, batch);
    }
  } catch (const std::exception& e) {
    std::cerr << "batch setup failed: " << e.what() << '\n';
    return driver::kExitBadUsage;
  }

  std::cout << driver::format_batch_report(result);

  if (!cli.sarif_path.empty()) {
    std::ofstream out(cli.sarif_path);
    out << checker::to_sarif_batch(driver::batch_findings(result));
    std::cerr << "SARIF log written to " << cli.sarif_path << '\n';
  }

  if (cli.profile || !cli.metrics_path.empty()) {
    const std::string level_str(
        rsg::to_string(static_cast<rsg::AnalysisLevel>(cli.level)));
    std::vector<analysis::UnitMetrics> metrics;
    for (const driver::UnitReport& ur : result.units) {
      // Failed units (crash / timeout / frontend error) carry no analysis
      // result to gauge; the batch report already accounts for them.
      if (!ur.payload || !ur.payload->frontend_ok) continue;
      analysis::UnitMetrics m = analysis::collect_unit_metrics(
          ur.unit.name, ur.unit.function, level_str, ur.payload->result);
      // The worker-side whole-unit delta (frontend + fixpoint + checkers),
      // shipped inside the payload — valid across forked and in-process
      // workers alike.
      m.ops = ur.payload->metrics;
      metrics.push_back(std::move(m));
    }
    const analysis::UnitMetrics aggregate =
        analysis::aggregate_metrics(metrics);
    if (!cli.metrics_path.empty()) {
      std::ofstream out(cli.metrics_path);
      for (const analysis::UnitMetrics& m : metrics) {
        out << analysis::to_metrics_json(m, "unit");
      }
      out << analysis::to_metrics_json(aggregate, "aggregate");
      std::cerr << "metrics written to " << cli.metrics_path << '\n';
    }
    // stderr: stdout must stay the byte-deterministic batch report.
    if (cli.profile) std::cerr << analysis::format_profile(aggregate);
  }

  return driver::batch_exit_code(result);
}

int run_serve_mode(const CliOptions& cli) {
  service::DaemonOptions daemon;
  daemon.socket_path = cli.serve_socket;
  daemon.cache_dir = cli.cache_dir;
  daemon.cache_max_bytes = cli.cache_max_bytes;
  daemon.cache_max_age_ms = cli.cache_max_age_s * 1000;
  daemon.jobs = cli.jobs;
  if (const char* env = std::getenv("PSA_SERVE_INFLIGHT")) {
    try {
      daemon.max_inflight = std::max<std::size_t>(1, std::stoul(env));
    } catch (const std::exception&) {
      std::cerr << "serve: ignoring malformed PSA_SERVE_INFLIGHT\n";
    }
  }
  if (const char* env = std::getenv("PSA_SERVE_QUEUE")) {
    try {
      daemon.max_queued = std::stoul(env);
    } catch (const std::exception&) {
      std::cerr << "serve: ignoring malformed PSA_SERVE_QUEUE\n";
    }
  }
  if (const char* env = std::getenv("PSA_SERVE_HEARTBEAT_MS")) {
    try {
      daemon.heartbeat_ms = std::stoull(env);
    } catch (const std::exception&) {
      std::cerr << "serve: ignoring malformed PSA_SERVE_HEARTBEAT_MS\n";
    }
  }
  if (const char* env = std::getenv("PSA_SERVE_REQUEST_DEADLINE_MS")) {
    try {
      daemon.request_deadline_ms = std::stoull(env);
    } catch (const std::exception&) {
      std::cerr << "serve: ignoring malformed PSA_SERVE_REQUEST_DEADLINE_MS\n";
    }
  }
  daemon.log = [](const std::string& line) { std::cerr << line << '\n'; };
  return service::run_daemon(daemon);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_args(argc, argv, cli)) return usage();
  if (cli.help) {
    std::cout << kHelpText;
    return driver::kExitOk;
  }
  if (cli.list_counters) {
    // One stable name per line: the machine-readable counter vocabulary.
    // scripts/doc_drift.sh diffs this against docs/OBSERVABILITY.md.
    for (std::size_t i = 0; i < support::kCounterCount; ++i) {
      std::cout << support::counter_name(static_cast<support::Counter>(i))
                << '\n';
    }
    return driver::kExitOk;
  }

  if (!cli.campaign_dir.empty()) {
    // Deterministic fault-space sweep (docs/RESILIENCE.md): re-exec this
    // binary once per (durable op, fault kind) and check the soundness
    // invariants machine-checkably.
    driver::CampaignOptions campaign;
    campaign.exe = argv[0];
    campaign.workdir = cli.campaign_dir;
    if (!cli.campaign_kinds.empty()) campaign.kinds = cli.campaign_kinds;
    campaign.max_ops = cli.campaign_max_ops;
    campaign.full_corpus = cli.campaign_full_corpus;
    return driver::run_fault_campaign(campaign);
  }
  if (!cli.serve_socket.empty()) return run_serve_mode(cli);
  if (cli.batch) return run_batch_mode(cli);

  std::size_t succeeded = 0;
  std::size_t findings = 0;
  std::vector<analysis::UnitMetrics> metrics;
  for (std::size_t i = 0; i < cli.files.size(); ++i) {
    if (cli.files.size() > 1) {
      if (i != 0) std::cout << '\n';
      std::cout << "=== " << cli.files[i] << " ===\n";
    }
    if (run_file(cli.files[i], cli, findings, metrics)) ++succeeded;
  }
  if (!cli.metrics_path.empty()) {
    std::ofstream out(cli.metrics_path);
    for (const analysis::UnitMetrics& m : metrics) {
      out << analysis::to_metrics_json(m, "unit");
    }
    out << analysis::to_metrics_json(analysis::aggregate_metrics(metrics),
                                     "aggregate");
    std::cout << "metrics written to " << cli.metrics_path << '\n';
  }
  if (succeeded == 0) return driver::kExitAllUnitsFailed;
  if (succeeded < cli.files.size()) return driver::kExitSomeUnitsFailed;
  if (findings > 0) return driver::kExitFindings;
  return driver::kExitOk;
}
