// Progressive analysis of Barnes-Hut (§5 / §5.1 of the paper).
//
//   $ ./barnes_hut_progressive
//
// Drives analysis::run_progressive on the reduced Barnes-Hut with the two
// §5.1 accuracy criteria (bodies unshared through `bd`, octree cells
// unshared through the stack's `node` selector), then demonstrates a forced
// escalation with the C_SPATH1 witness criterion on a list code.
#include <iostream>

#include "analysis/progressive.hpp"
#include "client/queries.hpp"
#include "corpus/corpus.hpp"

namespace {

using namespace psa;

void print_outcome(const analysis::ProgressiveResult& out) {
  for (const auto& attempt : out.attempts) {
    std::cout << "  " << rsg::to_string(attempt.level) << ": "
              << analysis::to_string(attempt.result.status) << " in "
              << attempt.result.seconds << " s";
    if (attempt.failed_criteria.empty()) {
      std::cout << ", all criteria satisfied\n";
    } else {
      std::cout << ", failed:";
      for (const auto& name : attempt.failed_criteria) std::cout << ' ' << name;
      std::cout << '\n';
    }
  }
  std::cout << "  => "
            << (out.satisfied ? "accurate at " : "not satisfied; stopped at ")
            << rsg::to_string(out.final_level()) << "\n\n";
}

}  // namespace

int main() {
  // --- The Barnes-Hut criteria of §5.1 ------------------------------------
  std::cout << "Progressive analysis of barnes_hut_small (pure paper "
               "semantics):\n";
  {
    const auto program =
        analysis::prepare(corpus::find_program("barnes_hut_small")->source);
    const std::vector<analysis::ShapeCriterion> criteria = {
        {"bodies-unshared-via-bd",
         [](const analysis::ProgramAnalysis& p,
            const analysis::AnalysisResult& r) {
           return !client::may_be_shared_via(p, r.at_exit(p.cfg), "body",
                                             "bd");
         }},
        {"cells-unshared-via-stack",
         [](const analysis::ProgramAnalysis& p,
            const analysis::AnalysisResult& r) {
           return !client::may_be_shared_via(p, r.at_exit(p.cfg), "cell",
                                             "node");
         }},
    };
    analysis::Options base;
    base.widen_threshold = 0;
    print_outcome(analysis::run_progressive(program, criteria, base));
  }

  // --- A criterion that forces the L1 -> L2 escalation ---------------------
  std::cout << "Progressive analysis of sll with the C_SPATH1 witness\n"
               "criterion (is list->nxt distinct from list->nxt->nxt?):\n";
  {
    const auto program =
        analysis::prepare(corpus::find_program("sll")->source);
    const std::vector<analysis::ShapeCriterion> criteria = {
        {"second-element-distinct",
         [](const analysis::ProgramAnalysis& p,
            const analysis::AnalysisResult& r) {
           return !client::paths_may_alias(p, r.at_exit(p.cfg), "list->nxt",
                                           "list->nxt->nxt");
         }},
    };
    print_outcome(analysis::run_progressive(program, criteria));
  }

  // --- The full Barnes-Hut under the widened engine ------------------------
  std::cout << "Progressive analysis of the full barnes_hut (widened "
               "engine):\n";
  {
    const auto program =
        analysis::prepare(corpus::find_program("barnes_hut")->source);
    const std::vector<analysis::ShapeCriterion> criteria = {
        {"cells-unshared-via-child",
         [](const analysis::ProgramAnalysis& p,
            const analysis::AnalysisResult& r) {
           return !client::may_be_shared_via(p, r.at_exit(p.cfg), "cell",
                                             "child");
         }},
    };
    print_outcome(analysis::run_progressive(program, criteria));
  }
  return 0;
}
