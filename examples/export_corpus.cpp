// Export the embedded corpus as .c files on disk, ready for psa_cli.
//
//   $ ./export_corpus [DIR]     (default: ./corpus_sources)
//   $ ./psa_cli corpus_sources/barnes_hut.c --progressive
#include <filesystem>
#include <fstream>
#include <iostream>

#include "corpus/corpus.hpp"

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : "corpus_sources";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::cerr << "cannot create '" << dir.string() << "': " << ec.message()
              << '\n';
    return 1;
  }
  for (const auto& program : psa::corpus::all_programs()) {
    const std::filesystem::path path = dir / (std::string(program.name) + ".c");
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path.string() << '\n';
      return 1;
    }
    out << "/* " << program.description << " */\n" << program.source;
    std::cout << path.string() << '\n';
  }
  return 0;
}
