// Quickstart: analyze a small list-building C fragment and inspect the
// resulting RSRSG.
//
//   $ ./quickstart
//
// Walks the full pipeline: parse -> sema -> lowering/CFG -> fixpoint at L1,
// then prints the RSRSG at the function exit and a few shape queries.
#include <cstdio>
#include <iostream>

#include "analysis/analyzer.hpp"
#include "client/dot.hpp"
#include "client/queries.hpp"
#include "corpus/corpus.hpp"

int main() {
  using namespace psa;

  const corpus::CorpusProgram& program = *corpus::find_program("sll");
  std::cout << "analyzing corpus program '" << program.name << "' ("
            << program.description << ")\n\n";

  try {
    // 1. Frontend: parse, type-check, lower to the six simple statements.
    const analysis::ProgramAnalysis prepared = analysis::prepare(program.source);
    std::cout << "lowered CFG: " << prepared.cfg.size() << " statements, "
              << prepared.cfg.pointer_vars().size() << " pvars, "
              << prepared.cfg.loop_scopes().size() << " loops\n";

    // 2. Fixpoint at level L1.
    analysis::Options options;
    options.level = rsg::AnalysisLevel::kL1;
    const analysis::AnalysisResult result =
        analysis::analyze_program(prepared, options);

    std::cout << "analysis " << analysis::to_string(result.status) << " in "
              << result.seconds << " s, " << result.node_visits
              << " statement visits, peak " << result.peak_bytes()
              << " bytes of RSG storage\n\n";

    // 3. The RSRSG at the end of main().
    const analysis::Rsrsg& at_exit = result.at_exit(prepared.cfg);
    std::cout << "RSRSG at exit:\n"
              << at_exit.dump(prepared.interner()) << '\n';

    // 4. Shape queries.
    std::cout << "list is classified as: "
              << client::to_string(
                     client::classify_structure(prepared, at_exit, "list"))
              << '\n';
    std::cout << "may some node be referenced twice via nxt? "
              << (client::may_be_shared_via(prepared, at_exit, "node", "nxt")
                      ? "yes"
                      : "no")
              << '\n';

    // 5. Export as graphviz for inspection.
    std::cout << "\nDOT of the exit RSRSG (render with `dot -Tpng`):\n"
              << client::to_dot(at_exit, prepared.interner());
  } catch (const analysis::FrontendError& e) {
    std::cerr << "frontend rejected the program:\n" << e.what();
    return 1;
  }
  return 0;
}
