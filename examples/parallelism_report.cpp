// Loop-parallelism report: the client pass the paper motivates (§1, §5.1).
//
//   $ ./parallelism_report [corpus-program ...]
//
// For each program, runs the shape analysis at L3 and prints which loops
// access independent data regions and could run in parallel, with the
// conflicting access when they cannot.
#include <iostream>
#include <vector>

#include "client/parallelism.hpp"
#include "corpus/corpus.hpp"

int main(int argc, char** argv) {
  using namespace psa;

  std::vector<const corpus::CorpusProgram*> selected;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      const corpus::CorpusProgram* p = corpus::find_program(argv[i]);
      if (p == nullptr) {
        std::cerr << "unknown corpus program '" << argv[i] << "'\n";
        return 1;
      }
      selected.push_back(p);
    }
  } else {
    for (const char* name :
         {"sll", "dll", "binary_tree", "sparse_matvec", "barnes_hut_small"}) {
      selected.push_back(corpus::find_program(name));
    }
  }

  for (const corpus::CorpusProgram* p : selected) {
    std::cout << "=== " << p->name << " — " << p->description << '\n';
    try {
      const auto program = analysis::prepare(p->source);
      analysis::Options options;
      options.level = rsg::AnalysisLevel::kL3;
      const auto result = analysis::analyze_program(program, options);
      if (!result.converged()) {
        std::cout << "analysis " << analysis::to_string(result.status)
                  << "; report skipped\n\n";
        continue;
      }
      const auto loops = client::detect_parallel_loops(program, result);
      std::cout << client::format_report(loops) << '\n';
    } catch (const analysis::FrontendError& e) {
      std::cerr << "frontend error:\n" << e.what();
      return 1;
    }
  }
  return 0;
}
