// Corpus report: run the progressive shape analysis over every corpus
// program at every level and print a Table-1-style summary.
//
//   $ ./corpus_report [program-name ...]
//
// Columns: analysis status, wall time, peak RSG bytes, statement visits, the
// size of the RSRSG at the function exit, and what the resource governor had
// to do (blank when nothing tripped).
//
// Batch isolation: a program the frontend rejects is reported and skipped —
// one pathological input never kills the run. The exit code is nonzero only
// when every selected program failed.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "client/queries.hpp"
#include "corpus/corpus.hpp"

int main(int argc, char** argv) {
  using namespace psa;

  std::vector<const corpus::CorpusProgram*> selected;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      const corpus::CorpusProgram* p = corpus::find_program(argv[i]);
      if (p == nullptr) {
        std::cerr << "unknown corpus program '" << argv[i] << "'\n";
        return 1;
      }
      selected.push_back(p);
    }
  } else {
    for (const corpus::CorpusProgram& p : corpus::all_programs())
      selected.push_back(&p);
  }

  const std::vector<corpus::PreparedProgram> prepared_batch =
      corpus::prepare_programs(selected);

  std::printf("%-16s %-3s %-11s %10s %14s %8s %12s  %s\n", "program", "lvl",
              "status", "time(s)", "peak bytes", "visits", "exit graphs",
              "degradation");
  std::size_t succeeded = 0;
  for (const corpus::PreparedProgram& prepared : prepared_batch) {
    if (!prepared.ok()) {
      std::cerr << prepared.program->name << ": frontend error (skipped):\n"
                << prepared.error;
      continue;
    }
    ++succeeded;
    for (const rsg::AnalysisLevel level :
         {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
          rsg::AnalysisLevel::kL3}) {
      analysis::Options options;
      options.level = level;
      const analysis::AnalysisResult result =
          analysis::analyze_program(*prepared.analysis, options);
      const client::SetStats exit_stats =
          client::stats(result.at_exit(prepared.analysis->cfg));
      std::printf("%-16s %-3s %-11s %10.3f %14llu %8llu %12zu  %s\n",
                  std::string(prepared.program->name).c_str(),
                  std::string(rsg::to_string(level)).c_str(),
                  std::string(analysis::to_string(result.status)).c_str(),
                  result.seconds,
                  static_cast<unsigned long long>(result.peak_bytes()),
                  static_cast<unsigned long long>(result.node_visits),
                  exit_stats.graphs,
                  result.degraded() ? result.degradation.summary().c_str()
                                    : "");
    }
  }
  return succeeded == 0 ? 1 : 0;
}
