// checker_report — memory-safety findings over the whole corpus.
//
//   $ ./checker_report [--level=1|2|3] [--buggy-only] [--verbose]
//
// Runs the analysis and the checker suite (docs/CHECKERS.md) on every clean
// corpus program and every deliberately-buggy variant, and prints one
// summary line per program: finding counts per rule, checker runtime, and —
// for the buggy variants — whether the seeded defect was caught at its
// injection line. --verbose additionally prints the full findings.
#include <chrono>
#include <iomanip>
#include <iostream>
#include <string>

#include "checker/checker.hpp"
#include "corpus/corpus.hpp"

namespace {

using namespace psa;

struct RunStats {
  std::vector<checker::Finding> findings;
  double analysis_seconds = 0.0;
  double checker_seconds = 0.0;
};

RunStats run_one(const analysis::ProgramAnalysis& program,
                 rsg::AnalysisLevel level) {
  analysis::Options options;
  options.level = level;
  options.types = &program.unit.types;
  RunStats stats;
  const auto result = analysis::analyze_program(program, options);
  stats.analysis_seconds = result.seconds;
  const auto start = std::chrono::steady_clock::now();
  stats.findings = checker::run_checkers(program, result);
  stats.checker_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

void print_summary(std::string_view name, const RunStats& stats) {
  using checker::CheckKind;
  const auto& f = stats.findings;
  std::cout << std::left << std::setw(22) << name << " null-deref="
            << checker::count_findings(f, CheckKind::kNullDeref)
            << " uaf=" << checker::count_findings(f, CheckKind::kUseAfterFree)
            << " double-free="
            << checker::count_findings(f, CheckKind::kDoubleFree)
            << " leak=" << checker::count_findings(f, CheckKind::kLeak)
            << " exit-leak="
            << checker::count_findings(f, CheckKind::kLeakAtExit)
            << "  (analysis " << std::fixed << std::setprecision(3)
            << stats.analysis_seconds << "s, check " << stats.checker_seconds
            << "s)";
}

}  // namespace

int main(int argc, char** argv) {
  int level = 3;
  bool buggy_only = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--level=", 0) == 0) {
      level = std::stoi(arg.substr(8));
      if (level < 1 || level > 3) return 2;
    } else if (arg == "--buggy-only") {
      buggy_only = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::cerr << "usage: checker_report [--level=1|2|3] [--buggy-only] "
                   "[--verbose]\n";
      return 2;
    }
  }
  const auto analysis_level = static_cast<rsg::AnalysisLevel>(level);

  if (!buggy_only) {
    std::cout << "=== clean corpus (L" << level << ") ===\n";
    for (const auto& prepared : corpus::prepare_all()) {
      if (!prepared.ok()) {
        std::cout << prepared.program->name << ": frontend error\n";
        continue;
      }
      const RunStats stats = run_one(*prepared.analysis, analysis_level);
      print_summary(prepared.program->name, stats);
      std::cout << '\n';
      if (verbose)
        std::cout << checker::format_findings(stats.findings,
                                              *prepared.analysis);
    }
    std::cout << '\n';
  }

  std::cout << "=== buggy variants (L" << level << ") ===\n";
  bool all_caught = true;
  for (const corpus::BuggyProgram& bug : corpus::buggy_programs()) {
    const auto program = analysis::prepare(bug.source);
    const RunStats stats = run_one(program, analysis_level);
    bool caught = false;
    for (const checker::Finding& f : stats.findings) {
      if (checker::rule_id(f.kind) == bug.expected_rule &&
          f.loc.line == bug.defect_line) {
        caught = true;
        break;
      }
    }
    all_caught &= caught;
    print_summary(bug.name, stats);
    std::cout << "  seeded " << bug.expected_rule << "@" << bug.defect_line
              << (caught ? " CAUGHT" : " MISSED") << '\n';
    if (verbose)
      std::cout << checker::format_findings(stats.findings, program);
  }
  return all_caught ? 0 : 1;
}
