// Warm-cache batch re-run cost (docs/SERVICE.md): the content-addressed
// result cache turns an unchanged re-analysis into a disk lookup. Three
// canonical rows over a slice of the clean corpus:
//
//   corpus/cold        first batch — every unit analyzed, entries stored
//   corpus/warm        identical re-run — every unit served from the cache
//   corpus/warm-edit1  one unit edited — only that unit re-analyzes
//
// The hit/miss counters of each row land in its "ops" object, so the JSON
// doubles as the acceptance proof: warm shows hits == units, misses == 0;
// warm-edit1 shows exactly one miss. The google-benchmark pass re-times the
// cold/warm pair per iteration for statistical depth.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/supervisor.hpp"
#include "support/metrics.hpp"

namespace {

using namespace psa;
namespace fs = std::filesystem;

std::vector<driver::AnalysisUnit> bench_units(bool quick) {
  std::vector<driver::AnalysisUnit> units;
  for (const corpus::CorpusProgram& p : corpus::all_programs()) {
    if (p.in_table1) continue;  // keep the batch in seconds, not minutes
    driver::AnalysisUnit unit;
    unit.name = std::string(p.name) + ".c";
    unit.source = std::string(p.source);
    units.push_back(std::move(unit));
    if (quick && units.size() >= 2) break;
  }
  return units;
}

driver::BatchOptions cached_options(const std::string& cache_dir) {
  driver::BatchOptions options;
  options.isolate = false;  // keep the counters in this process's registry
  options.check = true;
  options.cache_dir = cache_dir;
  options.engine.level = rsg::AnalysisLevel::kL2;
  return options;
}

/// Run one batch, return (seconds, cache-counter delta).
std::pair<double, support::MetricsSnapshot> timed_batch(
    const std::vector<driver::AnalysisUnit>& units,
    const driver::BatchOptions& options) {
  support::MetricsRegion region;
  const auto start = std::chrono::steady_clock::now();
  const driver::BatchResult result = driver::run_batch(units, options);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (result.failed_count() != 0) {
    std::fprintf(stderr, "cache_warm: %zu units failed\n",
                 result.failed_count());
  }
  return {elapsed.count(), region.delta()};
}

void BM_ColdVsWarm(benchmark::State& state, bool warm) {
  const auto units = bench_units(/*quick=*/true);
  const std::string dir =
      (fs::temp_directory_path() / "psa-bench-cache-gb").string();
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      fs::remove_all(dir);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(
        driver::run_batch(units, cached_options(dir)));
  }
  fs::remove_all(dir);
}

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("cache_warm", argc, argv);

  const auto units = bench_units(report.quick());
  const std::string dir =
      (fs::temp_directory_path() / "psa-bench-cache").string();
  fs::remove_all(dir);
  const driver::BatchOptions options = cached_options(dir);

  const auto add_row = [&](std::string config, double seconds,
                           const support::MetricsSnapshot& ops) {
    // add_sample carries only config+seconds; attach the counter delta so
    // the JSON records the hit/miss proof. BenchRun rows built through the
    // report keep their ops object.
    psa::bench::BenchRun run;
    run.config = std::move(config);
    run.seconds = seconds;
    run.ops = ops;
    report.add_run(std::move(run));
  };

  const auto [cold_s, cold_ops] = timed_batch(units, options);
  add_row("corpus/cold", cold_s, cold_ops);

  const auto [warm_s, warm_ops] = timed_batch(units, options);
  add_row("corpus/warm", warm_s, warm_ops);

  // Edit one unit in place: only it may re-analyze.
  std::vector<driver::AnalysisUnit> edited = units;
  edited[0].source = "\n" + edited[0].source;  // line shift = content change
  const auto [edit_s, edit_ops] = timed_batch(edited, options);
  add_row("corpus/warm-edit1", edit_s, edit_ops);

  fs::remove_all(dir);

  std::fprintf(
      stderr,
      "cache_warm: cold %.3fs, warm %.3fs (%.1fx), edit1 %.3fs; "
      "warm hits %llu misses %llu\n",
      cold_s, warm_s, warm_s > 0 ? cold_s / warm_s : 0.0, edit_s,
      static_cast<unsigned long long>(
          warm_ops[support::Counter::kCacheHits]),
      static_cast<unsigned long long>(
          warm_ops[support::Counter::kCacheMisses]));

  if (report.quick()) return 0;

  benchmark::RegisterBenchmark("batch/cold", BM_ColdVsWarm, false)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("batch/warm", BM_ColdVsWarm, true)
      ->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
