// The implementation's own parallelism (DESIGN.md §7): per-RSG transfers of
// one statement fan out over a thread pool, with results merged in input
// order (bit-identical to serial). This benchmark measures the thread
// scaling of whole analyses and prints a summary table.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace psa;

void BM_Threads(benchmark::State& state, const char* name,
                std::size_t threads) {
  const auto program = analysis::prepare(corpus::find_program(name)->source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.threads = threads;
  analysis::AnalysisResult result;
  for (auto _ : state) {
    result = analysis::analyze_program(program, options);
  }
  bench::report_run(state, program, result);
}

void print_table(bench::BenchReport& report) {
  std::printf("\nThread scaling of the per-RSG transfer fan-out (L2)\n");
  std::printf("%-16s %-8s %10s %8s  %s\n", "code", "threads", "time", "visits",
              "status");
  const std::vector<const char*> codes =
      report.quick() ? std::vector<const char*>{"sparse_matvec"}
                     : std::vector<const char*>{"sparse_matvec", "barnes_hut"};
  for (const char* name : codes) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      const auto program =
          analysis::prepare(corpus::find_program(name)->source);
      analysis::Options options;
      options.level = rsg::AnalysisLevel::kL2;
      options.threads = threads;
      const auto result = analysis::analyze_program(program, options);
      report.add(std::string(name) + "/threads" + std::to_string(threads),
                 program, result);
      std::printf("%-16s %-8zu %10s %8llu  %s\n", name, threads,
                  bench::format_time(result.seconds).c_str(),
                  static_cast<unsigned long long>(result.node_visits),
                  std::string(analysis::to_string(result.status)).c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("parallel_transfer", argc, argv);
  print_table(report);
  if (report.quick()) return 0;
  for (const char* name : {"sparse_matvec", "barnes_hut_small"}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      const std::string bench_name = std::string("parallel_transfer/") + name +
                                     "/threads" + std::to_string(threads);
      benchmark::RegisterBenchmark(bench_name.c_str(), BM_Threads, name,
                                   threads)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
