// Figure 3 / §5.1 of the paper: the Barnes-Hut RSRSG and the progressive
// precision ladder.
//
// The binary prints the shape-property table (SHSEL of the bodies through
// `bd`, sharing of the octree cells, loop parallelizability per step) for
// the reduced Barnes-Hut at each level under the pure paper semantics, and
// for the full Barnes-Hut under the widened engine; the same configurations
// then run as google-benchmark benchmarks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "client/parallelism.hpp"
#include "client/queries.hpp"

namespace {

using namespace psa;

analysis::Options options_for(bool widened, rsg::AnalysisLevel level) {
  analysis::Options options;
  options.level = level;
  options.widen_threshold = widened ? 48 : 0;
  return options;
}

void print_property_table(bench::BenchReport& report, const char* name,
                          bool widened) {
  const auto program = analysis::prepare(corpus::find_program(name)->source);
  std::printf("\n%s (%s semantics)\n", name,
              widened ? "widened" : "pure paper");
  std::printf("%-4s %10s %14s  %-18s %-18s %s\n", "lvl", "time", "peak bytes",
              "SHSEL(body,bd)", "SHSEL(cell,node)", "parallel loops");
  for (const auto level : {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
                           rsg::AnalysisLevel::kL3}) {
    const auto result =
        analysis::analyze_program(program, options_for(widened, level));
    report.add(std::string(name) + (widened ? "/widened/" : "/pure/") +
                   std::string(rsg::to_string(level)),
               program, result);
    const auto& at_exit = result.at_exit(program.cfg);
    const auto loops = client::detect_parallel_loops(program, result);
    int parallel = 0;
    for (const auto& lp : loops) parallel += lp.parallelizable ? 1 : 0;
    std::printf("%-4s %10s %14llu  %-18s %-18s %d/%zu\n",
                std::string(rsg::to_string(level)).c_str(),
                bench::format_time(result.seconds).c_str(),
                static_cast<unsigned long long>(result.peak_bytes()),
                client::may_be_shared_via(program, at_exit, "body", "bd")
                    ? "true"
                    : "false",
                client::may_be_shared_via(program, at_exit, "cell", "node")
                    ? "true"
                    : "false",
                parallel, loops.size());
  }
}

void BM_Fig3(benchmark::State& state, const char* name, bool widened,
             rsg::AnalysisLevel level) {
  const auto program = analysis::prepare(corpus::find_program(name)->source);
  const auto options = options_for(widened, level);
  analysis::AnalysisResult result;
  for (auto _ : state) {
    result = analysis::analyze_program(program, options);
  }
  bench::report_run(state, program, result);
}

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("fig3_barnes_hut", argc, argv);
  // Quick mode keeps the reduced Barnes-Hut only; the full code is the
  // paper's minutes-long workload.
  print_property_table(report, "barnes_hut_small", /*widened=*/false);
  if (!report.quick()) {
    print_property_table(report, "barnes_hut", /*widened=*/true);
  }
  std::printf("\n");
  if (report.quick()) return 0;

  for (const auto level : {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
                           rsg::AnalysisLevel::kL3}) {
    const std::string small_name =
        std::string("fig3/barnes_hut_small/") + std::string(rsg::to_string(level));
    benchmark::RegisterBenchmark(small_name.c_str(), BM_Fig3,
                                 "barnes_hut_small", false, level)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    const std::string full_name =
        std::string("fig3/barnes_hut/") + std::string(rsg::to_string(level));
    benchmark::RegisterBenchmark(full_name.c_str(), BM_Fig3, "barnes_hut",
                                 true, level)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
