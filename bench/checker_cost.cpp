// Checker cost per corpus program: the memory-safety pass (docs/CHECKERS.md)
// runs after the fixpoint, so its cost rides on an already-paid analysis.
// This benchmark isolates the checker itself — the analysis runs once
// outside the timed region; each iteration re-runs run_checkers over the
// cached fixpoint. Counters record the finding counts so the JSON output
// (--benchmark_format=json) doubles as a per-program findings ledger.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "checker/checker.hpp"

namespace {

using namespace psa;

void BM_CheckerCost(benchmark::State& state, std::string_view source,
                    rsg::AnalysisLevel level) {
  const auto program = analysis::prepare(source);
  analysis::Options options;
  options.level = level;
  options.types = &program.unit.types;
  const auto result = analysis::analyze_program(program, options);

  std::vector<checker::Finding> findings;
  for (auto _ : state) {
    findings = checker::run_checkers(program, result);
    benchmark::DoNotOptimize(findings);
  }
  state.counters["analysis_seconds"] = result.seconds;
  state.counters["findings"] = static_cast<double>(findings.size());
  state.counters["null_deref"] = static_cast<double>(
      checker::count_findings(findings, checker::CheckKind::kNullDeref));
  state.counters["uaf"] = static_cast<double>(
      checker::count_findings(findings, checker::CheckKind::kUseAfterFree));
  state.counters["double_free"] = static_cast<double>(
      checker::count_findings(findings, checker::CheckKind::kDoubleFree));
  state.counters["leak"] = static_cast<double>(
      checker::count_findings(findings, checker::CheckKind::kLeak));
  state.counters["leak_at_exit"] = static_cast<double>(
      checker::count_findings(findings, checker::CheckKind::kLeakAtExit));
}

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("checker_cost", argc, argv);

  // Canonical JSON rows: analysis cost per program plus a hand-timed
  // checker pass (the checkers produce no AnalysisResult of their own).
  // Quick mode keeps the two cheapest clean programs.
  std::size_t emitted = 0;
  for (const corpus::CorpusProgram& p : corpus::all_programs()) {
    if (p.in_table1) continue;  // minutes-long setup; the gbench pass covers it
    if (report.quick() && emitted >= 2) break;
    const auto program = analysis::prepare(p.source);
    analysis::Options options;
    options.level = rsg::AnalysisLevel::kL2;
    options.types = &program.unit.types;
    const auto result = analysis::analyze_program(program, options);
    report.add(std::string(p.name) + "/L2/analysis", program, result);
    report.add_sample(std::string(p.name) + "/L2/checkers",
                      psa::bench::time_op(3, [&] {
                        benchmark::DoNotOptimize(
                            checker::run_checkers(program, result));
                      }));
    ++emitted;
  }
  if (report.quick()) return 0;

  // Clean corpus at L2 (the progressive driver's common landing level); the
  // four Table-1 codes run at L1 to keep the setup phase in seconds.
  for (const corpus::CorpusProgram& p : corpus::all_programs()) {
    const auto level =
        p.in_table1 ? rsg::AnalysisLevel::kL1 : rsg::AnalysisLevel::kL2;
    const std::string name = std::string("checker/") + std::string(p.name) +
                             "/" + std::string(rsg::to_string(level));
    benchmark::RegisterBenchmark(name.c_str(), BM_CheckerCost, p.source, level)
        ->Unit(benchmark::kMillisecond);
  }
  for (const corpus::BuggyProgram& p : corpus::buggy_programs()) {
    const std::string name =
        std::string("checker/") + std::string(p.name) + "/L2";
    benchmark::RegisterBenchmark(name.c_str(), BM_CheckerCost, p.source,
                                 rsg::AnalysisLevel::kL2)
        ->Unit(benchmark::kMillisecond);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
