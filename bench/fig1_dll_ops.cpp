// Figure 1 of the paper: the abstract interpretation of `x->nxt = NULL` on
// a doubly-linked list — micro-benchmarks for each phase of the pipeline
// (division, pruning, materialization) on the Fig. 1 (a) RSG, plus the
// end-to-end statement over the engine.
#include <benchmark/benchmark.h>

#include "analysis/analyzer.hpp"
#include "bench_util.hpp"
#include "rsg/ops.hpp"
#include "testing/rsg_builder.hpp"

namespace {

using namespace psa;
using psa::testing::Fig1Dll;

void BM_Fig1_Divide(benchmark::State& state) {
  Fig1Dll f;
  for (auto _ : state) {
    auto parts = rsg::divide(f.b.g, f.x, f.nxt);
    benchmark::DoNotOptimize(parts);
  }
}
BENCHMARK(BM_Fig1_Divide);

void BM_Fig1_Prune(benchmark::State& state) {
  // Pruning runs on the divided-but-unpruned variant: rebuild it each
  // iteration (pruning mutates).
  Fig1Dll f;
  for (auto _ : state) {
    state.PauseTiming();
    rsg::Rsg variant = f.b.g;
    // Choose the n1 -nxt-> n3 variant by hand (what DIVIDE would produce).
    variant.remove_link(f.n1, f.nxt, f.n2);
    variant.props(f.n1).selout.insert(f.nxt);
    state.ResumeTiming();
    const bool feasible = rsg::prune(variant);
    benchmark::DoNotOptimize(feasible);
  }
}
BENCHMARK(BM_Fig1_Prune);

void BM_Fig1_Materialize(benchmark::State& state) {
  Fig1Dll f;
  // The long variant (n1 -nxt-> n2 chosen) is where materialization works.
  auto parts = rsg::divide(f.b.g, f.x, f.nxt);
  const rsg::Rsg* long_variant = nullptr;
  for (const auto& p : parts) {
    if (p.node_count() == 3) long_variant = &p;
  }
  if (long_variant == nullptr) {
    state.SkipWithError("divide did not produce the 3-node variant");
    return;
  }
  for (auto _ : state) {
    auto mats = rsg::materialize(*long_variant,
                                 long_variant->pvar_target(f.x), f.nxt);
    benchmark::DoNotOptimize(mats);
  }
}
BENCHMARK(BM_Fig1_Materialize);

void BM_Fig1_Compress(benchmark::State& state) {
  Fig1Dll f;
  for (auto _ : state) {
    state.PauseTiming();
    rsg::Rsg copy = f.b.g;
    state.ResumeTiming();
    rsg::compress(copy, rsg::LevelPolicy{rsg::AnalysisLevel::kL2});
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Fig1_Compress);

// The complete sentence over the engine: build a DLL, execute
// x->nxt = NULL, reach the fixpoint.
constexpr std::string_view kFig1Source = R"(
    struct dnode { struct dnode *nxt; struct dnode *prv; int v; };
    void main() {
      struct dnode *list; struct dnode *tail; struct dnode *t;
      struct dnode *x;
      int i; int n;
      list = malloc(sizeof(struct dnode));
      list->nxt = NULL;
      list->prv = NULL;
      tail = list;
      i = 0; n = 10;
      while (i < n) {
        t = malloc(sizeof(struct dnode));
        t->nxt = NULL;
        t->prv = tail;
        tail->nxt = t;
        tail = t;
        i = i + 1;
      }
      t = NULL; tail = NULL;
      x = list;
      x->nxt = NULL;
    }
  )";

void BM_Fig1_EndToEndStatement(benchmark::State& state) {
  const auto program = analysis::prepare(kFig1Source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  analysis::AnalysisResult result;
  for (auto _ : state) {
    result = analysis::analyze_program(program, options);
  }
  bench::report_run(state, program, result);
}
BENCHMARK(BM_Fig1_EndToEndStatement)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("fig1_dll_ops", argc, argv);

  // Canonical JSON rows: hand-timed pipeline phases on the Fig. 1 (a) RSG
  // plus the end-to-end statement through the engine.
  {
    const int iters = report.quick() ? 10 : 100;
    Fig1Dll f;
    report.add_sample("divide", psa::bench::time_op(iters, [&] {
                        benchmark::DoNotOptimize(
                            rsg::divide(f.b.g, f.x, f.nxt));
                      }));
    report.add_sample("prune", psa::bench::time_op(iters, [&] {
                        rsg::Rsg variant = f.b.g;
                        variant.remove_link(f.n1, f.nxt, f.n2);
                        variant.props(f.n1).selout.insert(f.nxt);
                        benchmark::DoNotOptimize(rsg::prune(variant));
                      }));
    report.add_sample("compress", psa::bench::time_op(iters, [&] {
                        rsg::Rsg copy = f.b.g;
                        rsg::compress(
                            copy, rsg::LevelPolicy{rsg::AnalysisLevel::kL2});
                        benchmark::DoNotOptimize(copy);
                      }));
    const auto program = analysis::prepare(kFig1Source);
    analysis::Options options;
    options.level = rsg::AnalysisLevel::kL2;
    const auto result = analysis::analyze_program(program, options);
    report.add("end_to_end/L2", program, result);
  }
  if (report.quick()) return 0;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
