// Streaming service-path cost (docs/SERVICE.md): what a batch costs when it
// is streamed from the analysis daemon instead of analyzed in-process, and
// what a mid-stream daemon death costs on top. Three canonical rows, each a
// full client request against a real forked daemon on a temp socket:
//
//   daemon/cold    fresh cache — every unit analyzed in the handler, each
//                  result streamed as a unit_result frame
//   daemon/warm    identical re-request — the handler answers from the warm
//                  result cache, so the row times protocol + disk, not
//                  analysis
//   daemon/resume  the handler tears the stream mid-frame on the last unit
//                  (PSA_FAULT_AT=...:streamtear) — the client keeps the
//                  units already streamed, reconnects, and falls back
//                  locally for only the remainder
//
// The client-side counter deltas land in each row's "ops" object, so the
// JSON doubles as the acceptance proof: cold/warm stream without a single
// reconnect, resume shows reconnects >= 1 and resumed_units >= 1 while the
// report stays byte-identical. The google-benchmark pass re-times the warm
// stream per iteration for statistical depth.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "driver/supervisor.hpp"
#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PSA_BENCH_HAS_SOCKETS 1
#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "service/client.hpp"
#include "service/daemon.hpp"
#endif

namespace {

using namespace psa;
namespace fs = std::filesystem;

std::vector<driver::AnalysisUnit> bench_units(bool quick) {
  std::vector<driver::AnalysisUnit> units;
  for (const corpus::CorpusProgram& p : corpus::all_programs()) {
    if (p.in_table1) continue;  // keep the batch in seconds, not minutes
    driver::AnalysisUnit unit;
    unit.name = std::string(p.name) + ".c";
    unit.source = std::string(p.source);
    units.push_back(std::move(unit));
    if (quick && units.size() >= 2) break;
  }
  return units;
}

driver::BatchOptions request_options() {
  driver::BatchOptions options;
  options.isolate = false;  // fallback path: keep counters in this process
  options.check = true;
  options.engine.level = rsg::AnalysisLevel::kL2;
  return options;
}

#ifdef PSA_BENCH_HAS_SOCKETS

/// A real daemon in a forked child, drained with SIGTERM on stop(). The
/// fault spec (PSA_FAULT_AT syntax) is planted in the child's environment
/// only, so the bench process itself stays fault-free.
class DaemonHarness {
 public:
  bool start(const std::string& socket_path, const std::string& cache_dir,
             const std::string& fault_spec) {
    socket_path_ = socket_path;
    fs::remove(socket_path);
    pid_ = ::fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      if (fault_spec.empty()) {
        ::unsetenv("PSA_FAULT_AT");
      } else {
        ::setenv("PSA_FAULT_AT", fault_spec.c_str(), 1);
      }
      service::DaemonOptions options;
      options.socket_path = socket_path;
      options.cache_dir = cache_dir;
      options.heartbeat_ms = 200;
      std::_Exit(service::run_daemon(options));
    }
    for (int i = 0; i < 500; ++i) {
      if (fs::exists(socket_path_)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stop();
    return false;
  }

  void stop() {
    if (pid_ <= 0) return;
    ::kill(pid_, SIGTERM);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    fs::remove(socket_path_);
  }

  ~DaemonHarness() { stop(); }

 private:
  pid_t pid_ = -1;
  std::string socket_path_;
};

service::ClientOptions stream_client(const std::string& socket_path) {
  service::ClientOptions client;
  client.socket_path = socket_path;
  client.max_attempts = 2;  // one reconnect, then the local fallback
  client.backoff_base_ms = 1;
  client.backoff_cap_ms = 4;
  client.io_timeout_ms = 30'000;
  return client;
}

/// One streamed request, timed, with the client-side counter delta.
std::pair<double, support::MetricsSnapshot> timed_request(
    const std::vector<driver::AnalysisUnit>& units,
    const driver::BatchOptions& options, const service::ClientOptions& client,
    service::RequestOutcome* outcome_out = nullptr) {
  support::MetricsRegion region;
  const auto start = std::chrono::steady_clock::now();
  service::RequestOutcome outcome =
      service::run_request(units, options, client);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (outcome.result.failed_count() != 0) {
    std::fprintf(stderr, "service_stream: %zu units failed\n",
                 outcome.result.failed_count());
  }
  if (outcome_out != nullptr) *outcome_out = std::move(outcome);
  return {elapsed.count(), region.delta()};
}

#endif  // PSA_BENCH_HAS_SOCKETS

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("service_stream", argc, argv);
  const auto units = bench_units(report.quick());

#ifndef PSA_BENCH_HAS_SOCKETS
  // No unix-domain sockets: keep the report structurally valid (same rows,
  // same counter vocabulary) so bench_smoke's baseline diff still runs.
  std::fprintf(stderr,
               "service_stream: unix sockets unavailable, rows are zero\n");
  report.add_sample("daemon/cold", 0.0);
  report.add_sample("daemon/warm", 0.0);
  report.add_sample("daemon/resume", 0.0);
  (void)units;
  return 0;
#else
  const fs::path work = fs::temp_directory_path() / "psa-bench-stream";
  fs::remove_all(work);
  fs::create_directories(work);
  const std::string sock = (work / "psa.sock").string();
  const std::string cache = (work / "cache").string();
  const driver::BatchOptions options = request_options();
  const service::ClientOptions client = stream_client(sock);

  const auto add_row = [&](std::string config, double seconds,
                           const support::MetricsSnapshot& ops) {
    psa::bench::BenchRun run;
    run.config = std::move(config);
    run.seconds = seconds;
    run.ops = ops;
    report.add_run(std::move(run));
  };

  DaemonHarness daemon;
  if (!daemon.start(sock, cache, "")) {
    std::fprintf(stderr, "service_stream: daemon did not come up\n");
    return 1;
  }

  service::RequestOutcome cold_outcome;
  const auto [cold_s, cold_ops] =
      timed_request(units, options, client, &cold_outcome);
  add_row("daemon/cold", cold_s, cold_ops);

  service::RequestOutcome warm_outcome;
  const auto [warm_s, warm_ops] =
      timed_request(units, options, client, &warm_outcome);
  add_row("daemon/warm", warm_s, warm_ops);

  if (!cold_outcome.via_service || !warm_outcome.via_service) {
    std::fprintf(stderr, "service_stream: cold/warm rows fell back locally\n");
  }

  // The resume row gets its own daemon (streamtear on the last unit) and a
  // fresh cache, so the tear costs a real recomputation, not a cache hit.
  daemon.stop();
  const std::string resume_cache = (work / "cache-resume").string();
  DaemonHarness torn_daemon;
  if (!torn_daemon.start(sock, resume_cache,
                         units.back().name + ":streamtear")) {
    std::fprintf(stderr, "service_stream: torn daemon did not come up\n");
    return 1;
  }
  service::RequestOutcome resume_outcome;
  const auto [resume_s, resume_ops] =
      timed_request(units, options, client, &resume_outcome);
  add_row("daemon/resume", resume_s, resume_ops);
  torn_daemon.stop();

  std::fprintf(
      stderr,
      "service_stream: cold %.3fs, warm %.3fs (%.1fx), resume %.3fs; "
      "resume reconnects %d, resumed units %llu, streamed %zu/%zu\n",
      cold_s, warm_s, warm_s > 0 ? cold_s / warm_s : 0.0, resume_s,
      resume_outcome.reconnects,
      static_cast<unsigned long long>(
          resume_ops[support::Counter::kResumedUnits]),
      resume_outcome.streamed_units, units.size());

  if (report.quick()) {
    fs::remove_all(work);
    return 0;
  }

  // Statistical pass: re-time the warm stream against a persistent daemon.
  DaemonHarness bm_daemon;
  if (!bm_daemon.start(sock, cache, "")) {
    std::fprintf(stderr, "service_stream: bm daemon did not come up\n");
    return 1;
  }
  benchmark::RegisterBenchmark("stream/warm",
                               [&units, &options, &client](
                                   benchmark::State& state) {
                                 for (auto _ : state) {
                                   benchmark::DoNotOptimize(
                                       service::run_request(units, options,
                                                            client));
                                 }
                               })
      ->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bm_daemon.stop();
  fs::remove_all(work);
  return 0;
#endif
}
