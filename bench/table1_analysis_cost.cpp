// Table 1 of the paper: "Time and space required by the compiler to analyze
// several codes" — S.Mat-Vec, S.Mat-Mat, S.LU fact., Barnes-Hut at the
// progressive levels L1/L2/L3.
//
// The binary first prints a Table-1-shaped summary (time, peak RSG bytes,
// status per code and level), then runs the same configurations as
// google-benchmark benchmarks so the numbers land in machine-readable form.
//
// Absolute values are not comparable to the paper's Pentium III 500 MHz /
// 128 MB: what reproduces is the *shape* — costs grow with the level on the
// sparse codes, Sparse LU is the resource-exhaustion case at every level
// (the paper OOM'd at L2/L3; we stop it at a deterministic statement-visit
// budget), and Barnes-Hut needs the engine's widening, whose cost is nearly
// level-independent (the paper instead paid a 17-minute L1). See
// EXPERIMENTS.md for the side-by-side discussion.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace psa;

struct Cell {
  const char* program;
  rsg::AnalysisLevel level;
};

analysis::Options options_for(const char* name, rsg::AnalysisLevel level) {
  analysis::Options options;
  options.level = level;
  // Sparse LU is the paper's resource-exhaustion row: a deterministic
  // statement-visit budget stands in for their 128 MB ceiling.
  if (std::string_view(name) == "sparse_lu") options.max_node_visits = 20'000;
  return options;
}

void BM_Table1(benchmark::State& state, const char* name,
               rsg::AnalysisLevel level) {
  const auto program = analysis::prepare(corpus::find_program(name)->source);
  const auto options = options_for(name, level);
  analysis::AnalysisResult result;
  for (auto _ : state) {
    result = analysis::analyze_program(program, options);
  }
  bench::report_run(state, program, result);
}

void print_table(bench::BenchReport& report) {
  std::printf("\nTable 1 reproduction — compiler time and space per code and "
              "level\n");
  std::printf("%-14s %-4s %12s %14s %10s  %s\n", "code", "lvl", "time",
              "space(bytes)", "visits", "status");
  // Quick mode (bench_smoke) keeps only the sparse codes at L1: the full
  // grid pays the Barnes-Hut rows, which take minutes by design.
  const std::vector<const char*> codes =
      report.quick()
          ? std::vector<const char*>{"sparse_matvec", "sparse_matmat",
                                     "sparse_lu"}
          : std::vector<const char*>{"sparse_matvec", "sparse_matmat",
                                     "sparse_lu", "barnes_hut"};
  const std::vector<rsg::AnalysisLevel> levels =
      report.quick()
          ? std::vector<rsg::AnalysisLevel>{rsg::AnalysisLevel::kL1}
          : std::vector<rsg::AnalysisLevel>{rsg::AnalysisLevel::kL1,
                                            rsg::AnalysisLevel::kL2,
                                            rsg::AnalysisLevel::kL3};
  for (const char* name : codes) {
    const auto program = analysis::prepare(corpus::find_program(name)->source);
    for (const auto level : levels) {
      const auto result =
          analysis::analyze_program(program, options_for(name, level));
      report.add(std::string(name) + "/" + std::string(rsg::to_string(level)),
                 program, result);
      std::printf("%-14s %-4s %12s %14llu %10llu  %s\n", name,
                  std::string(rsg::to_string(level)).c_str(),
                  bench::format_time(result.seconds).c_str(),
                  static_cast<unsigned long long>(result.peak_bytes()),
                  static_cast<unsigned long long>(result.node_visits),
                  std::string(analysis::to_string(result.status)).c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("table1_analysis_cost", argc, argv);
  print_table(report);
  if (report.quick()) return 0;

  for (const auto& [name, level] : std::vector<Cell>{
           {"sparse_matvec", rsg::AnalysisLevel::kL1},
           {"sparse_matvec", rsg::AnalysisLevel::kL2},
           {"sparse_matvec", rsg::AnalysisLevel::kL3},
           {"sparse_matmat", rsg::AnalysisLevel::kL1},
           {"sparse_matmat", rsg::AnalysisLevel::kL2},
           {"sparse_matmat", rsg::AnalysisLevel::kL3},
           {"sparse_lu", rsg::AnalysisLevel::kL1},
           {"sparse_lu", rsg::AnalysisLevel::kL2},
           {"sparse_lu", rsg::AnalysisLevel::kL3},
           {"barnes_hut", rsg::AnalysisLevel::kL1},
           {"barnes_hut", rsg::AnalysisLevel::kL2},
           {"barnes_hut", rsg::AnalysisLevel::kL3},
       }) {
    const std::string bench_name = std::string("table1/") + name + "/" +
                                   std::string(rsg::to_string(level));
    benchmark::RegisterBenchmark(bench_name.c_str(), BM_Table1, name, level)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
