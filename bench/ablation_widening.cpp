// Ablation: the engine's widening (DESIGN.md §6b) — our main engineering
// addition over the paper, which bounded analysis cost with patience
// instead. Runs codes that converge under both regimes and compares cost
// and end-state precision (graph/node counts and sharing verdicts).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "client/queries.hpp"

namespace {

using namespace psa;

analysis::Options options_with_widening(std::size_t threshold) {
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.widen_threshold = threshold;
  options.max_node_visits = 300'000;
  return options;
}

void BM_Widening(benchmark::State& state, const char* name,
                 std::size_t threshold) {
  const auto program = analysis::prepare(corpus::find_program(name)->source);
  const auto options = options_with_widening(threshold);
  analysis::AnalysisResult result;
  for (auto _ : state) {
    result = analysis::analyze_program(program, options);
  }
  bench::report_run(state, program, result);
}

void print_table(bench::BenchReport& report) {
  std::printf("\nAblation — widening threshold (L2). 0 = pure paper "
              "semantics.\n");
  std::printf("%-18s %-6s %10s %14s %8s %12s  %s\n", "code", "thr", "time",
              "peak bytes", "visits", "exit graphs", "status");
  const std::vector<const char*> codes =
      report.quick()
          ? std::vector<const char*>{"sll", "binary_tree"}
          : std::vector<const char*>{"sll", "binary_tree",
                                     "barnes_hut_small", "barnes_hut"};
  for (const char* name : codes) {
    for (const std::size_t threshold : {std::size_t{0}, std::size_t{16},
                                        std::size_t{48}}) {
      // The full Barnes-Hut without widening exceeds any reasonable budget
      // (the paper's own 17-minute L1); bound it so the row terminates.
      auto options = options_with_widening(threshold);
      if (std::string_view(name) == "barnes_hut" && threshold == 0) {
        options.max_node_visits = 20'000;
      }
      const auto program =
          analysis::prepare(corpus::find_program(name)->source);
      const auto result = analysis::analyze_program(program, options);
      report.add(std::string(name) + "/thr" + std::to_string(threshold),
                 program, result);
      std::printf("%-18s %-6zu %10s %14llu %8llu %12zu  %s\n", name, threshold,
                  bench::format_time(result.seconds).c_str(),
                  static_cast<unsigned long long>(result.peak_bytes()),
                  static_cast<unsigned long long>(result.node_visits),
                  result.at_exit(program.cfg).size(),
                  std::string(analysis::to_string(result.status)).c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("ablation_widening", argc, argv);
  print_table(report);
  if (report.quick()) return 0;
  for (const char* name : {"sll", "binary_tree", "barnes_hut_small"}) {
    for (const std::size_t threshold : {std::size_t{0}, std::size_t{48}}) {
      const std::string bench_name = std::string("ablation_widening/") + name +
                                     "/thr" + std::to_string(threshold);
      benchmark::RegisterBenchmark(bench_name.c_str(), BM_Widening, name,
                                   threshold)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
