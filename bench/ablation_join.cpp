// Ablation: the RSG union (§4.3).
//
// The paper: "This union of RSGs greatly reduces the number of RSGs and
// leads to a practicable analysis." This binary runs corpus codes with the
// JOIN reduction enabled and disabled (duplicates-only deduplication) and
// reports the growth of the per-statement RSRSGs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace psa;

struct SetGrowth {
  std::size_t total_graphs = 0;
  std::size_t worst_set = 0;
};

SetGrowth measure(const analysis::AnalysisResult& result) {
  SetGrowth g;
  for (const auto& set : result.per_node) {
    g.total_graphs += set.size();
    g.worst_set = std::max(g.worst_set, set.size());
  }
  return g;
}

analysis::Options options_with_join(bool join) {
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.enable_join = join;
  options.widen_threshold = 0;  // measure the raw union effect
  options.max_node_visits = 100'000;
  return options;
}

void BM_Join(benchmark::State& state, const char* name, bool join) {
  const auto program = analysis::prepare(corpus::find_program(name)->source);
  const auto options = options_with_join(join);
  analysis::AnalysisResult result;
  for (auto _ : state) {
    result = analysis::analyze_program(program, options);
  }
  bench::report_run(state, program, result);
  const SetGrowth g = measure(result);
  state.counters["total_graphs"] = static_cast<double>(g.total_graphs);
  state.counters["worst_set"] = static_cast<double>(g.worst_set);
}

void print_table(bench::BenchReport& report) {
  std::printf("\nAblation — RSG union (JOIN) at L2, widening off\n");
  std::printf("%-14s %-5s %10s %13s %10s  %s\n", "code", "join", "time",
              "total graphs", "worst set", "status");
  const std::vector<const char*> codes =
      report.quick() ? std::vector<const char*>{"sll", "dll"}
                     : std::vector<const char*>{"sll", "dll", "list_reverse",
                                                "two_lists"};
  for (const char* name : codes) {
    for (const bool join : {true, false}) {
      const auto program =
          analysis::prepare(corpus::find_program(name)->source);
      const auto result =
          analysis::analyze_program(program, options_with_join(join));
      const SetGrowth g = measure(result);
      report.add(std::string(name) + (join ? "/join-on" : "/join-off"),
                 program, result);
      std::printf("%-14s %-5s %10s %13zu %10zu  %s\n", name,
                  join ? "on" : "off",
                  bench::format_time(result.seconds).c_str(), g.total_graphs,
                  g.worst_set,
                  std::string(analysis::to_string(result.status)).c_str());
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("ablation_join", argc, argv);
  print_table(report);
  if (report.quick()) return 0;
  for (const char* name : {"sll", "dll", "list_reverse"}) {
    for (const bool join : {true, false}) {
      const std::string bench_name =
          std::string("ablation_join/") + name + (join ? "/on" : "/off");
      benchmark::RegisterBenchmark(bench_name.c_str(), BM_Join, name, join)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
