// Shared helpers for the benchmark binaries.
//
// Every bench constructs a BenchReport, which (a) strips the shared
// `--quick` flag from argv before google-benchmark sees it, and (b) writes a
// canonical BENCH_<name>.json (schema psa.bench.v1) when the report goes out
// of scope — to $PSA_BENCH_DIR when set, else the working directory. The
// JSON is always written, quick or not: scripts/bench_smoke.sh runs every
// bench with --quick and validates the files; EXPERIMENTS.md regenerates
// its tables from the full-mode files. See docs/OBSERVABILITY.md.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/profile.hpp"
#include "corpus/corpus.hpp"

namespace psa::bench {

/// Run one (program, level) analysis and report the Table-1 metrics through
/// google-benchmark counters: wall time (the iteration time itself), peak
/// RSG bytes, statement visits, and final status (1 = converged).
inline void report_run(benchmark::State& state,
                       const analysis::ProgramAnalysis& program,
                       const analysis::AnalysisResult& result) {
  state.counters["peak_bytes"] = static_cast<double>(result.peak_bytes());
  state.counters["visits"] = static_cast<double>(result.node_visits);
  state.counters["converged"] = result.converged() ? 1.0 : 0.0;
  state.counters["exit_graphs"] =
      static_cast<double>(result.at_exit(program.cfg).size());
}

/// Format bytes like the paper's MB column.
inline std::string format_mb(std::uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", static_cast<double>(bytes) / 1e6);
  return buf;
}

/// Format seconds like the paper's M'SS'' column.
inline std::string format_time(double seconds) {
  char buf[32];
  if (seconds >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%d'%05.2f''",
                  static_cast<int>(seconds / 60.0),
                  seconds - 60.0 * static_cast<int>(seconds / 60.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

/// Mean seconds of `iterations` calls of `fn`, for micro-stage rows that
/// have no engine AnalysisResult to quote.
template <typename Fn>
double time_op(int iterations, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) fn();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / (iterations > 0 ? iterations : 1);
}

/// One row of the canonical bench JSON.
struct BenchRun {
  std::string config;
  double seconds = 0.0;
  bool converged = true;
  std::uint64_t visits = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t exit_graphs = 0;
  /// Operation counters of the run (AnalysisResult::ops for engine rows;
  /// all-zero for micro-stage samples and PSA_METRICS=0 builds).
  support::MetricsSnapshot ops;
};

/// Collects rows and writes BENCH_<name>.json on destruction.
class BenchReport {
 public:
  /// Strips `--quick` out of argv (google-benchmark rejects flags it does
  /// not know), leaving the rest for benchmark::Initialize.
  BenchReport(std::string name, int& argc, char** argv)
      : name_(std::move(name)) {
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--quick") {
        quick_ = true;
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
  }

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  ~BenchReport() { write(); }

  /// Reduced configurations, no google-benchmark pass (bench_smoke mode).
  [[nodiscard]] bool quick() const noexcept { return quick_; }

  /// Row from a full engine run.
  void add(std::string config, const analysis::ProgramAnalysis& program,
           const analysis::AnalysisResult& result) {
    BenchRun run;
    run.config = std::move(config);
    run.seconds = result.seconds;
    run.converged = result.converged();
    run.visits = result.node_visits;
    run.peak_bytes = result.peak_bytes();
    run.exit_graphs = result.at_exit(program.cfg).size();
    run.ops = result.ops;
    runs_.push_back(std::move(run));
  }

  /// Row from a hand-timed micro stage (no engine result).
  void add_sample(std::string config, double seconds) {
    BenchRun run;
    run.config = std::move(config);
    run.seconds = seconds;
    runs_.push_back(std::move(run));
  }

  /// Pre-built row (benches that time whole batches and attach their own
  /// counter deltas, e.g. cache_warm's hit/miss proof).
  void add_run(BenchRun run) { runs_.push_back(std::move(run)); }

 private:
  void write() const {
    std::string path;
    if (const char* dir = std::getenv("PSA_BENCH_DIR"); dir && *dir) {
      path = std::string(dir) + "/";
    }
    path += "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench report: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"schema\": \"psa.bench.v1\",\n  \"bench\": \""
        << analysis::json_escape(name_) << "\",\n  \"quick\": "
        << (quick_ ? "true" : "false") << ",\n  \"runs\": [";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      const BenchRun& r = runs_[i];
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "\"seconds\": %.9g, \"converged\": %s, \"visits\": %llu, "
                    "\"peak_bytes\": %llu, \"exit_graphs\": %llu",
                    r.seconds, r.converged ? "true" : "false",
                    static_cast<unsigned long long>(r.visits),
                    static_cast<unsigned long long>(r.peak_bytes),
                    static_cast<unsigned long long>(r.exit_graphs));
      out << (i == 0 ? "\n" : ",\n") << "    {\"config\": \""
          << analysis::json_escape(r.config) << "\", " << buf
          << ", \"ops\": {";
      for (std::size_t c = 0; c < support::kCounterCount; ++c) {
        if (c != 0) out << ", ";
        out << '"'
            << support::counter_name(static_cast<support::Counter>(c))
            << "\": " << r.ops.values[c];
      }
      out << "}}";
    }
    out << "\n  ]\n}\n";
    std::fprintf(stderr, "bench report written to %s\n", path.c_str());
  }

  std::string name_;
  bool quick_ = false;
  std::vector<BenchRun> runs_;
};

}  // namespace psa::bench
