// Shared helpers for the benchmark binaries.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "analysis/analyzer.hpp"
#include "corpus/corpus.hpp"

namespace psa::bench {

/// Run one (program, level) analysis and report the Table-1 metrics through
/// google-benchmark counters: wall time (the iteration time itself), peak
/// RSG bytes, statement visits, and final status (1 = converged).
inline void report_run(benchmark::State& state,
                       const analysis::ProgramAnalysis& program,
                       const analysis::AnalysisResult& result) {
  state.counters["peak_bytes"] = static_cast<double>(result.peak_bytes());
  state.counters["visits"] = static_cast<double>(result.node_visits);
  state.counters["converged"] = result.converged() ? 1.0 : 0.0;
  state.counters["exit_graphs"] =
      static_cast<double>(result.at_exit(program.cfg).size());
}

/// Format bytes like the paper's MB column.
inline std::string format_mb(std::uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", static_cast<double>(bytes) / 1e6);
  return buf;
}

/// Format seconds like the paper's M'SS'' column.
inline std::string format_time(double seconds) {
  char buf[32];
  if (seconds >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%d'%05.2f''",
                  static_cast<int>(seconds / 60.0),
                  seconds - 60.0 * static_cast<int>(seconds / 60.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

}  // namespace psa::bench
