// Ablation: the share-attribute pruning of §4.2.
//
// The paper: "the false value in share attributes leads to a more
// aggressive pruning which simplifies the RSRSGs and greatly contributes to
// avoid an explosion in the number of nodes." This binary runs the corpus
// codes with and without the share-based link pruning and reports time,
// peak bytes, and the total node count of the final per-statement states.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace psa;

std::size_t total_state_nodes(const analysis::AnalysisResult& result) {
  std::size_t nodes = 0;
  for (const auto& set : result.per_node) nodes += set.total_nodes();
  return nodes;
}

void BM_Pruning(benchmark::State& state, const char* name, bool share_pruning) {
  const auto program = analysis::prepare(corpus::find_program(name)->source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.share_pruning = share_pruning;
  analysis::AnalysisResult result;
  for (auto _ : state) {
    result = analysis::analyze_program(program, options);
  }
  bench::report_run(state, program, result);
  state.counters["state_nodes"] = static_cast<double>(total_state_nodes(result));
}

void print_table(bench::BenchReport& report) {
  std::printf("\nAblation — share-attribute pruning (L2)\n");
  std::printf("%-16s %-9s %10s %14s %12s %8s\n", "code", "pruning", "time",
              "peak bytes", "state nodes", "visits");
  const std::vector<const char*> codes =
      report.quick()
          ? std::vector<const char*>{"sll", "dll"}
          : std::vector<const char*>{"sll", "dll", "binary_tree",
                                     "sparse_matvec", "barnes_hut_small"};
  for (const char* name : codes) {
    for (const bool share : {true, false}) {
      const auto program =
          analysis::prepare(corpus::find_program(name)->source);
      analysis::Options options;
      options.level = rsg::AnalysisLevel::kL2;
      options.share_pruning = share;
      const auto result = analysis::analyze_program(program, options);
      report.add(std::string(name) + (share ? "/prune-on" : "/prune-off"),
                 program, result);
      std::printf("%-16s %-9s %10s %14llu %12zu %8llu\n", name,
                  share ? "on" : "off",
                  bench::format_time(result.seconds).c_str(),
                  static_cast<unsigned long long>(result.peak_bytes()),
                  total_state_nodes(result),
                  static_cast<unsigned long long>(result.node_visits));
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("ablation_pruning", argc, argv);
  print_table(report);
  if (report.quick()) return 0;
  for (const char* name : {"sll", "dll", "binary_tree", "barnes_hut_small"}) {
    for (const bool share : {true, false}) {
      const std::string bench_name = std::string("ablation_pruning/") + name +
                                     (share ? "/on" : "/off");
      benchmark::RegisterBenchmark(bench_name.c_str(), BM_Pruning, name, share)
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
