// Function-granular incremental re-analysis cost (docs/CACHING.md): in an
// N-function unit, a one-line edit must re-run exactly ONE fixpoint. The
// rows carry the proof in their "ops" objects:
//
//   chain/cold       first run — unit miss, N function-tier entries stored
//   chain/warm       unchanged re-run — unit-tier hit, function tier silent
//   chain/edit-leaf  one-line leaf edit — func_cache_hits == N-1,
//                    func_cache_misses == 1 (the edited leaf's summary)
//   chain/edit-free  summary-visible edit — the hash cascade re-runs the
//                    leaf AND every caller whose summary bytes changed
//
// The unit is a call chain main -> f1 -> ... -> f_{N-1}: the deepest
// possible cascade, so edit-leaf is the worst case for the invalidation
// oracle — any over-approximation in the keys would show up as extra
// misses right here. The binary exits non-zero if the contract fails, so
// scripts/bench_smoke.sh doubles as its enforcement.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/supervisor.hpp"
#include "support/metrics.hpp"

namespace {

using namespace psa;
namespace fs = std::filesystem;

// Helpers in leaf-first order; every body line is position-stable so the
// edits below never shift a sibling's source locations.
std::string chain_source(std::size_t functions, std::string_view leaf_line) {
  const std::size_t helpers = functions - 1;  // plus main
  std::string src = "struct node { struct node *next; int v; };\n";
  for (std::size_t i = helpers; i >= 1; --i) {
    src += "void f" + std::to_string(i) + "(struct node *a) {\n";
    if (i == helpers) {
      src += std::string(leaf_line);
    } else {
      src += "  f" + std::to_string(i + 1) + "(a);\n";
    }
    src += "  a->next = NULL;\n";
    src += "}\n";
  }
  src +=
      "void main() {\n"
      "  struct node *p;\n"
      "  p = malloc(sizeof(struct node));\n"
      "  f1(p);\n"
      "  p->next = NULL;\n"
      "}\n";
  return src;
}

driver::AnalysisUnit chain_unit(std::size_t functions,
                                std::string_view leaf_line) {
  driver::AnalysisUnit unit;
  unit.name = "chain.c";
  unit.source = chain_source(functions, leaf_line);
  return unit;
}

driver::BatchOptions cached_options(const std::string& cache_dir) {
  driver::BatchOptions options;
  options.isolate = false;  // keep the counters in this process's registry
  options.check = true;
  options.cache_dir = cache_dir;
  return options;
}

/// Run one batch, return (seconds, counter delta).
std::pair<double, support::MetricsSnapshot> timed_batch(
    const std::vector<driver::AnalysisUnit>& units,
    const driver::BatchOptions& options) {
  support::MetricsRegion region;
  const auto start = std::chrono::steady_clock::now();
  const driver::BatchResult result = driver::run_batch(units, options);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (result.failed_count() != 0) {
    std::fprintf(stderr, "incremental: %zu units failed\n",
                 result.failed_count());
  }
  return {elapsed.count(), region.delta()};
}

void BM_EditLeafRerun(benchmark::State& state, std::size_t functions) {
  const std::string dir =
      (fs::temp_directory_path() / "psa-bench-incremental-gb").string();
  fs::remove_all(dir);
  const driver::BatchOptions options = cached_options(dir);
  // Alternate between two leaf bodies so every iteration is a real edit.
  const std::vector<driver::AnalysisUnit> a = {
      chain_unit(functions, "  a->next = NULL;\n")};
  const std::vector<driver::AnalysisUnit> b = {
      chain_unit(functions, "  a->next = a;\n")};
  (void)driver::run_batch(a, options);  // prime
  bool flip = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver::run_batch(flip ? b : a, options));
    flip = !flip;
  }
  fs::remove_all(dir);
}

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("incremental", argc, argv);

  const std::size_t functions = report.quick() ? 8 : 24;
  const std::string dir =
      (fs::temp_directory_path() / "psa-bench-incremental").string();
  fs::remove_all(dir);
  const driver::BatchOptions options = cached_options(dir);

  const auto add_row = [&](std::string config, double seconds,
                           const support::MetricsSnapshot& ops) {
    psa::bench::BenchRun run;
    run.config = std::move(config);
    run.seconds = seconds;
    run.ops = ops;
    report.add_run(std::move(run));
  };

  const std::vector<driver::AnalysisUnit> original = {
      chain_unit(functions, "  a->next = NULL;\n")};
  const auto [cold_s, cold_ops] = timed_batch(original, options);
  add_row("chain/cold", cold_s, cold_ops);

  const auto [warm_s, warm_ops] = timed_batch(original, options);
  add_row("chain/warm", warm_s, warm_ops);

  // The headline: replace the leaf's single body line in place (same line
  // count, summary facts unchanged). Exactly one fixpoint may re-run.
  const std::vector<driver::AnalysisUnit> edited = {
      chain_unit(functions, "  a->next = a;\n")};
  const auto [edit_s, edit_ops] = timed_batch(edited, options);
  add_row("chain/edit-leaf", edit_s, edit_ops);

  // A summary-VISIBLE edit (free taints may_free): the cascade legitimately
  // re-runs the leaf and its callers — the contrast row for edit-leaf.
  const std::vector<driver::AnalysisUnit> freed = {
      chain_unit(functions, "  free(a);\n")};
  const auto [free_s, free_ops] = timed_batch(freed, options);
  add_row("chain/edit-free", free_s, free_ops);

  fs::remove_all(dir);

  const auto hits = edit_ops[support::Counter::kFuncCacheHits];
  const auto misses = edit_ops[support::Counter::kFuncCacheMisses];
  std::fprintf(
      stderr,
      "incremental: N=%zu cold %.3fs, warm %.3fs, edit-leaf %.3fs "
      "(func hits %llu misses %llu), edit-free %.3fs (misses %llu)\n",
      functions, cold_s, warm_s, edit_s,
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses), free_s,
      static_cast<unsigned long long>(
          free_ops[support::Counter::kFuncCacheMisses]));
#if PSA_METRICS
  // The acceptance contract, enforced where it is measured: a one-line
  // edit in an N-function unit re-runs exactly one fixpoint.
  if (hits != functions - 1 || misses != 1) {
    std::fprintf(stderr,
                 "incremental: CONTRACT VIOLATION — expected hits == %zu, "
                 "misses == 1\n",
                 functions - 1);
    return 1;
  }
#endif

  if (report.quick()) return 0;

  benchmark::RegisterBenchmark("edit-leaf/rerun", BM_EditLeafRerun, functions)
      ->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
