// Governor overhead: the degradation ladder must be free when nothing
// trips. Paired benchmarks run the Fig. 2 / Fig. 3 workloads with the
// governor effectively disarmed (no deadline, huge budgets, hard-fail
// policy — the pre-governor configuration) and armed (degrade policy,
// deadline and budgets set far above what the run needs, so every poll and
// bookkeeping path executes but no rung ever fires). The target is < 3%
// armed-vs-disarmed overhead.
//
// The custom main prints the standard google-benchmark output and then a
// JSON overhead summary alongside the bench_util.hpp counter format:
//   {"benchmark": "governor_overhead", "pairs": [
//     {"workload": "sll", "disarmed_s": ..., "armed_s": ..., "overhead": ...}
//   ]}
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "bench_util.hpp"
#include "corpus/corpus.hpp"

namespace {

using namespace psa;

// The Fig. 2 substrate (sll traversal pipeline), the Fig. 1 structure
// (dll), and the Fig. 3 workload (reduced Barnes-Hut).
const char* const kWorkloads[] = {"sll", "dll", "barnes_hut_small"};

analysis::ProgramAnalysis& prepared(const std::string& name) {
  static std::map<std::string, analysis::ProgramAnalysis> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache
             .emplace(name,
                      analysis::prepare(corpus::find_program(name)->source))
             .first;
  }
  return it->second;
}

analysis::Options disarmed_options() {
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.budget_policy = analysis::BudgetPolicy::kHardFail;
  return options;  // no deadline, default (never-tripping) budgets
}

analysis::Options armed_options() {
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.budget_policy = analysis::BudgetPolicy::kDegrade;
  // Generous enough that nothing ever trips: we measure the governor's
  // standby cost (polls, rung lookups, reapply fast paths), not degradation.
  options.deadline_ms = 10ull * 60ull * 1000ull;
  options.memory_budget_bytes = 8ull << 30;
  options.max_node_visits = 2'000'000'000ull;
  return options;
}

/// Mean seconds per analysis, measured outside google-benchmark for the
/// JSON summary (the BM_ wrappers below give the usual per-workload view).
double mean_seconds(const std::string& name, const analysis::Options& options,
                    int reps) {
  auto& program = prepared(name);
  double total = 0.0;
  for (int i = 0; i < reps; ++i) {
    const auto result = analysis::analyze_program(program, options);
    total += result.seconds;
  }
  return total / reps;
}

void BM_Governor_Disarmed(benchmark::State& state, const char* name) {
  auto& program = prepared(name);
  const auto options = disarmed_options();
  analysis::AnalysisResult result;
  for (auto _ : state) {
    result = analysis::analyze_program(program, options);
    benchmark::DoNotOptimize(result.status);
  }
  bench::report_run(state, program, result);
}

void BM_Governor_Armed(benchmark::State& state, const char* name) {
  auto& program = prepared(name);
  const auto options = armed_options();
  analysis::AnalysisResult result;
  for (auto _ : state) {
    result = analysis::analyze_program(program, options);
    benchmark::DoNotOptimize(result.status);
  }
  bench::report_run(state, program, result);
  state.counters["degraded"] = result.degraded() ? 1.0 : 0.0;  // expect 0
}

void register_benchmarks() {
  for (const char* name : kWorkloads) {
    benchmark::RegisterBenchmark(
        (std::string("BM_Governor_Disarmed/") + name).c_str(),
        [name](benchmark::State& s) { BM_Governor_Disarmed(s, name); });
    benchmark::RegisterBenchmark(
        (std::string("BM_Governor_Armed/") + name).c_str(),
        [name](benchmark::State& s) { BM_Governor_Armed(s, name); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("governor_overhead", argc, argv);
  if (!report.quick()) {
    register_benchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  // One representative run per workload and mode for the canonical JSON.
  const std::vector<const char*> workloads =
      report.quick() ? std::vector<const char*>{"sll", "dll"}
                     : std::vector<const char*>(std::begin(kWorkloads),
                                                std::end(kWorkloads));
  for (const char* name : workloads) {
    auto& program = prepared(name);
    report.add(std::string(name) + "/disarmed", program,
               analysis::analyze_program(program, disarmed_options()));
    report.add(std::string(name) + "/armed", program,
               analysis::analyze_program(program, armed_options()));
  }
  const int reps = report.quick() ? 2 : 5;

  // Paired overhead summary (JSON), warm-up rep discarded by the cache.
  std::printf("{\"benchmark\": \"governor_overhead\", \"pairs\": [");
  bool first = true;
  for (const char* name : workloads) {
    const double disarmed = mean_seconds(name, disarmed_options(), reps);
    const double armed = mean_seconds(name, armed_options(), reps);
    const double overhead = disarmed > 0.0 ? (armed - disarmed) / disarmed
                                           : 0.0;
    std::printf("%s\n  {\"workload\": \"%s\", \"disarmed_s\": %.6f, "
                "\"armed_s\": %.6f, \"overhead\": %.4f}",
                first ? "" : ",", name, disarmed, armed, overhead);
    first = false;
  }
  std::printf("\n]}\n");
  return 0;
}
