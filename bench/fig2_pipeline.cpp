// Figure 2 of the paper: the per-sentence symbolic-execution pipeline —
// division/pruning, abstract interpretation, compression, and the RSG union
// that reduces the sentence's RSRSG. One benchmark per stage, measured on
// representative graphs from a mid-analysis state of the sll corpus code.
#include <benchmark/benchmark.h>

#include "analysis/rsrsg.hpp"
#include "analysis/semantics.hpp"
#include "analysis/analyzer.hpp"
#include "bench_util.hpp"
#include "rsg/canon.hpp"
#include "rsg/ops.hpp"

namespace {

using namespace psa;

/// A mid-analysis snapshot: the RSRSG at the traversal loop's header of the
/// sll program (several member graphs, realistic property mix).
struct Snapshot {
  analysis::ProgramAnalysis program;
  analysis::AnalysisResult result;
  const analysis::Rsrsg* set = nullptr;
  cfg::NodeId load_stmt = 0;

  Snapshot() {
    program = analysis::prepare(corpus::find_program("sll")->source);
    result = analysis::analyze_program(program, {});
    // Find the traversal load p = p->nxt and use its input-side state.
    const auto p = program.symbol("p");
    for (cfg::NodeId id = 0; id < program.cfg.size(); ++id) {
      const auto& s = program.cfg.node(id).stmt;
      if (s.op == cfg::SimpleOp::kLoad && s.x == p && s.y == p) {
        load_stmt = id;
      }
    }
    set = &result.per_node[load_stmt];
  }
};

Snapshot& snapshot() {
  static Snapshot snap;
  return snap;
}

void BM_Fig2_DividePrune(benchmark::State& state) {
  Snapshot& snap = snapshot();
  const auto p = snap.program.symbol("p");
  const auto nxt = snap.program.symbol("nxt");
  for (auto _ : state) {
    for (const rsg::Rsg& g : snap.set->graphs()) {
      if (g.pvar_target(p) == rsg::kNoNode) continue;
      auto parts = rsg::divide(g, p, nxt);
      benchmark::DoNotOptimize(parts);
    }
  }
}
BENCHMARK(BM_Fig2_DividePrune);

void BM_Fig2_AbstractInterpretation(benchmark::State& state) {
  Snapshot& snap = snapshot();
  analysis::TransferContext ctx;
  ctx.policy = rsg::LevelPolicy{rsg::AnalysisLevel::kL2};
  ctx.cfg = &snap.program.cfg;
  ctx.induction = &snap.program.induction;
  const auto& node = snap.program.cfg.node(snap.load_stmt);
  for (auto _ : state) {
    for (const rsg::Rsg& g : snap.set->graphs()) {
      auto out = analysis::execute_statement(g, node, ctx);
      benchmark::DoNotOptimize(out);
    }
  }
}
BENCHMARK(BM_Fig2_AbstractInterpretation);

void BM_Fig2_Compress(benchmark::State& state) {
  Snapshot& snap = snapshot();
  for (auto _ : state) {
    for (const rsg::Rsg& g : snap.set->graphs()) {
      state.PauseTiming();
      rsg::Rsg copy = g;
      state.ResumeTiming();
      rsg::compress(copy, rsg::LevelPolicy{rsg::AnalysisLevel::kL2});
      benchmark::DoNotOptimize(copy);
    }
  }
}
BENCHMARK(BM_Fig2_Compress);

void BM_Fig2_Union(benchmark::State& state) {
  // Re-reduce the whole member list into a fresh RSRSG (the join step).
  Snapshot& snap = snapshot();
  const rsg::LevelPolicy policy{rsg::AnalysisLevel::kL2};
  for (auto _ : state) {
    analysis::Rsrsg reduced;
    for (const rsg::Rsg& g : snap.set->graphs()) {
      reduced.insert(g, policy);
    }
    benchmark::DoNotOptimize(reduced);
  }
}
BENCHMARK(BM_Fig2_Union);

void BM_Fig2_FingerprintEquality(benchmark::State& state) {
  // The fixpoint's stabilization check.
  Snapshot& snap = snapshot();
  for (auto _ : state) {
    for (const rsg::Rsg& g : snap.set->graphs()) {
      benchmark::DoNotOptimize(rsg::fingerprint(g));
    }
  }
}
BENCHMARK(BM_Fig2_FingerprintEquality);

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("fig2_pipeline", argc, argv);

  // Canonical JSON rows: the sll fixpoint behind the snapshot plus
  // hand-timed pipeline stages over its loop-header RSRSG.
  {
    Snapshot& snap = snapshot();
    report.add("sll/fixpoint", snap.program, snap.result);
    const int iters = report.quick() ? 5 : 50;
    const auto p = snap.program.symbol("p");
    const auto nxt = snap.program.symbol("nxt");
    report.add_sample("divide_prune", psa::bench::time_op(iters, [&] {
      for (const rsg::Rsg& g : snap.set->graphs()) {
        if (g.pvar_target(p) == rsg::kNoNode) continue;
        benchmark::DoNotOptimize(rsg::divide(g, p, nxt));
      }
    }));
    analysis::TransferContext ctx;
    ctx.policy = rsg::LevelPolicy{rsg::AnalysisLevel::kL2};
    ctx.cfg = &snap.program.cfg;
    ctx.induction = &snap.program.induction;
    const auto& node = snap.program.cfg.node(snap.load_stmt);
    report.add_sample("abstract_interpretation",
                      psa::bench::time_op(iters, [&] {
                        for (const rsg::Rsg& g : snap.set->graphs()) {
                          benchmark::DoNotOptimize(
                              analysis::execute_statement(g, node, ctx));
                        }
                      }));
    report.add_sample("union", psa::bench::time_op(iters, [&] {
      const rsg::LevelPolicy policy{rsg::AnalysisLevel::kL2};
      analysis::Rsrsg reduced;
      for (const rsg::Rsg& g : snap.set->graphs()) reduced.insert(g, policy);
      benchmark::DoNotOptimize(reduced);
    }));
    report.add_sample("fingerprint", psa::bench::time_op(iters, [&] {
      for (const rsg::Rsg& g : snap.set->graphs()) {
        benchmark::DoNotOptimize(rsg::fingerprint(g));
      }
    }));
  }
  if (report.quick()) return 0;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
