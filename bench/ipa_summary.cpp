// Interprocedural summary payoff: the multi-function corpus pipeline
// (list_pipeline — build/fold/free helpers around one list) analyzed with
// function summaries against the same unit forced onto the call-havoc
// fallback (--no-summaries). Two canonical rows:
//
//   list_pipeline/summarized   bottom-up summaries, every call site modeled
//   list_pipeline/havoc        summaries disabled — each call is a global
//                              havoc plus free-widening, the pre-IPA cost
//
// The counter deltas in "ops" double as the acceptance proof: the
// summarized row shows call_havoc_fallback == 0 with summary_applied
// covering every call site; the havoc row shows the inverse. The havoc row
// is *cheaper* per fixpoint pass but destroys precision — exit_graphs and
// the checker-facing taint tell that story, not wall time alone.
#include <benchmark/benchmark.h>

#include <string>

#include "analysis/analyzer.hpp"
#include "bench_util.hpp"
#include "corpus/corpus.hpp"

namespace {

using namespace psa;

analysis::ProgramAnalysis& pipeline() {
  static analysis::ProgramAnalysis program =
      analysis::prepare(corpus::find_program("list_pipeline")->source);
  return program;
}

analysis::Options summarized_options() {
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  return options;
}

analysis::Options havoc_options() {
  analysis::Options options = summarized_options();
  options.enable_summaries = false;
  return options;
}

void BM_Ipa_Summarized(benchmark::State& state) {
  auto& program = pipeline();
  const auto options = summarized_options();
  analysis::AnalysisResult result;
  for (auto _ : state) {
    result = analysis::analyze_program(program, options);
    benchmark::DoNotOptimize(result.status);
  }
  bench::report_run(state, program, result);
}
BENCHMARK(BM_Ipa_Summarized);

void BM_Ipa_ForcedHavoc(benchmark::State& state) {
  auto& program = pipeline();
  const auto options = havoc_options();
  analysis::AnalysisResult result;
  for (auto _ : state) {
    result = analysis::analyze_program(program, options);
    benchmark::DoNotOptimize(result.status);
  }
  bench::report_run(state, program, result);
}
BENCHMARK(BM_Ipa_ForcedHavoc);

}  // namespace

int main(int argc, char** argv) {
  psa::bench::BenchReport report("ipa_summary", argc, argv);
  if (!report.quick()) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  auto& program = pipeline();
  report.add("list_pipeline/summarized", program,
             analysis::analyze_program(program, summarized_options()));
  report.add("list_pipeline/havoc", program,
             analysis::analyze_program(program, havoc_options()));
  return 0;
}
