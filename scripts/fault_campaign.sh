#!/usr/bin/env sh
# Deterministic fault-space exploration of the durable-I/O layer
# (src/support/io, docs/RESILIENCE.md "The I/O fault space") against the
# shipped psa_cli binary:
#
#   1. the batch -> cache -> checkpoint -> resume pipeline, swept by
#      `psa_cli --fault-campaign`: one golden traced run, then one scenario
#      per (durable op, fault kind) pair over the full kind vocabulary
#      {enospc, eio, shortwrite, tornrename, crash}, asserting the four
#      soundness invariants machine-checkably (exit-code contract, explicit
#      degradation markers, no corrupt cache entry ever served, crash +
#      --resume reproduces the golden report byte-for-byte);
#   2. the daemon: a golden daemon-served client run is traced, then every
#      daemon-side durable op is faulted ({enospc, crash}, injected into the
#      daemon's environment only) — the invariant is that a daemon-side io
#      fault NEVER changes the client's answer: same exit code, report
#      byte-identical to the daemon-less golden run modulo an explicit
#      ", attempts N" retry marker (a crash-killed handler's unit is retried
#      by the daemon's supervisor and truthfully reports the attempt count;
#      the analysis content must still match byte-for-byte). Degraded
#      daemons serve uncached; dead daemons trigger reconnect or local
#      fallback.
#
#   $ scripts/fault_campaign.sh [BUILD_DIR]     # default: build
#
# This is the bounded sweep the CI fault-campaign job executes (a few
# minutes). The full-corpus sweep (--campaign-full-corpus, hours) is
# documented in EXPERIMENTS.md.
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/examples/psa_cli"

if [ ! -x "$CLI" ]; then
  echo "fault_campaign: $CLI not found or not executable; build first" >&2
  exit 1
fi

WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "fault_campaign: FAIL: $1" >&2
  [ -f "$WORK/daemon.err" ] && sed 's/^/  daemon: /' "$WORK/daemon.err" >&2
  exit 1
}

echo "== phase 1: batch pipeline (op x kind) sweep"
"$CLI" --fault-campaign="$WORK/campaign" ||
  fail "batch fault campaign reported violations (exit $?)"

echo "== phase 2: daemon-side faults never change the client's answer"
SOCK="$WORK/psa.sock"
CACHE="$WORK/cache"

cat >"$WORK/clean.c" <<'EOF'
struct node { struct node *next; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  p->next = NULL;
  free(p);
  p = NULL;
}
EOF
cat >"$WORK/leaky.c" <<'EOF'
struct node { struct node *next; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  p->next = NULL;
}
EOF
FILES="$WORK/clean.c $WORK/leaky.c"

start_daemon() {
  # $@: extra environment (NAME=VALUE) injected into the DAEMON only — the
  # client must never inherit a fault plan. A daemon killed by a crash fault
  # during startup never creates the socket; that is a legal scenario (the
  # client falls back to local analysis), so the wait is tolerant.
  env "$@" "$CLI" --serve="$SOCK" --cache-dir="$CACHE" \
    >"$WORK/daemon.out" 2>"$WORK/daemon.err" &
  DAEMON_PID=$!
  i=0
  while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -le 30 ] && sleep 0.1 || break
    kill -0 "$DAEMON_PID" 2>/dev/null || break
  done
}

stop_daemon_hard() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
  rm -f "$SOCK"
}

echo "-- golden: local batch (no daemon)"
status=0
$CLI $FILES --isolate --check >"$WORK/golden.txt" 2>/dev/null || status=$?
[ "$status" -eq 1 ] || fail "golden local run exited $status, want 1"
GOLDEN_EXIT="$status"

echo "-- golden: traced daemon-served run"
rm -rf "$CACHE"
start_daemon PSA_IO_TRACE="$WORK/daemon-trace.log"
status=0
$CLI $FILES --check --connect="$SOCK" >"$WORK/daemon-golden.txt" \
  2>/dev/null || status=$?
stop_daemon_hard
[ "$status" -eq "$GOLDEN_EXIT" ] ||
  fail "daemon-served golden run exited $status, want $GOLDEN_EXIT"
cmp -s "$WORK/daemon-golden.txt" "$WORK/golden.txt" ||
  fail "daemon-served golden report differs from local report"
OPS="$(awk '/^op /{print $2}' "$WORK/daemon-trace.log")"
[ -n "$OPS" ] || fail "daemon trace recorded no durable ops"
echo "-- sweeping $(echo "$OPS" | wc -l) daemon ops x {enospc, crash}"

for op in $OPS; do
  for kind in enospc crash; do
    rm -rf "$CACHE"
    start_daemon PSA_IO_FAULT="$op:$kind"
    status=0
    $CLI $FILES --check --connect="$SOCK" >"$WORK/faulted.txt" \
      2>/dev/null || status=$?
    stop_daemon_hard
    [ "$status" -eq "$GOLDEN_EXIT" ] ||
      fail "daemon op $op kind $kind: client exited $status, want $GOLDEN_EXIT"
    # A crash-killed handler's unit is retried daemon-side and truthfully
    # streams ", attempts N"; everything else must match byte-for-byte.
    sed 's/, attempts [0-9]*//' "$WORK/faulted.txt" >"$WORK/faulted.norm"
    cmp -s "$WORK/faulted.norm" "$WORK/golden.txt" ||
      fail "daemon op $op kind $kind: client report differs from golden"
  done
done

echo "fault_campaign: OK (batch sweep + daemon sweep all invariants held)"
