#!/usr/bin/env sh
# Salvage-mode drill against the real psa_cli binary: run the dirty corpus
# (units mixing analyzable functions with unsupported C) under forked
# isolation and assert that every unit completes as partial — never
# frontend-error — with its findings downgraded, not dropped; that
# --strict-frontend restores the historical fail-fast behavior; and that a
# checkpointed partial batch resumes byte-identically.
#
#   $ scripts/salvage_smoke.sh [BUILD_DIR]     # default: build
#
# The same properties are unit-tested in tests/driver/ and
# tests/integration/salvage_soundness_test.cpp; this script drives the
# shipped binary end to end, the way an operator would. See
# docs/RESILIENCE.md ("The salvage-mode frontend").
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/examples/psa_cli"

if [ ! -x "$CLI" ]; then
  echo "salvage_smoke: $CLI not found or not executable; build first" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "salvage_smoke: FAIL: $1" >&2
  exit 1
}

echo "== scenario 1: dirty corpus under forked isolation completes as partial"
status=0
"$CLI" --corpus-dirty --isolate --jobs=4 --timeout-ms=60000 --check \
  >"$WORK/report.txt" 2>"$WORK/log.txt" || status=$?
# Findings are expected (exit 1); any other exit means units failed.
[ "$status" -le 1 ] || fail "dirty batch exited $status, want 0 or 1"
grep -q "frontend-error" "$WORK/report.txt" &&
  fail "a salvageable unit was dropped as frontend-error"
grep -q "0 failed" "$WORK/report.txt" || fail "dirty batch reported failures"
# The dirty corpus grows over time; derive the unit count from the summary
# line instead of pinning it, and require every single unit to be partial.
UNITS="$(sed -n 's/^batch: \([0-9]*\) units.*/\1/p' "$WORK/report.txt")"
[ -n "$UNITS" ] && [ "$UNITS" -ge 4 ] ||
  fail "could not parse the unit count from the batch summary"
grep -q "($UNITS partial)" "$WORK/report.txt" ||
  fail "dirty units did not complete as partial"
grep -q "possible (degraded frontend)" "$WORK/report.txt" ||
  fail "no finding reports degraded confidence"
for u in dirty_sll_trace dirty_tree_goto dirty_dll_dot dirty_reverse_cast \
  dirty_mixed_calls; do
  grep -q "^  $u: partial" "$WORK/report.txt" || fail "$u is not partial"
done

echo "== scenario 2: in-process mode produces the identical report"
status=0
"$CLI" --corpus-dirty --isolate=off --check >"$WORK/inproc.txt" 2>/dev/null ||
  status=$?
[ "$status" -le 1 ] || fail "in-process dirty batch exited $status"
# The report is deterministic apart from the mode line.
sed "s/, mode .*$//" "$WORK/report.txt" >"$WORK/report-normalized.txt"
sed "s/, mode .*$//" "$WORK/inproc.txt" >"$WORK/inproc-normalized.txt"
cmp -s "$WORK/report-normalized.txt" "$WORK/inproc-normalized.txt" || {
  diff -u "$WORK/report-normalized.txt" "$WORK/inproc-normalized.txt" >&2 ||
    true
  fail "forked and in-process reports differ"
}

echo "== scenario 3: --strict-frontend restores fail-fast rejection"
status=0
"$CLI" --corpus-dirty --isolate --strict-frontend \
  >"$WORK/strict.txt" 2>/dev/null || status=$?
[ "$status" -eq 4 ] || fail "strict batch exited $status, want 4 (all failed)"
[ "$(grep -c "frontend-error" "$WORK/strict.txt")" -eq "$UNITS" ] ||
  fail "strict mode did not reject every dirty unit"
grep -q "partial" "$WORK/strict.txt" &&
  fail "strict mode produced a partial unit"

echo "== scenario 4: a checkpointed partial batch resumes byte-identically"
CKPT="$WORK/ckpt"
status=0
"$CLI" --corpus-dirty --isolate --jobs=1 --timeout-ms=60000 --check \
  --checkpoint="$CKPT" >"$WORK/first.txt" 2>/dev/null || status=$?
[ "$status" -le 1 ] || fail "checkpointed dirty batch exited $status"
status=0
"$CLI" --corpus-dirty --isolate --jobs=1 --timeout-ms=60000 --check \
  --checkpoint="$CKPT" --resume >"$WORK/resumed.txt" 2>"$WORK/resume.log" ||
  status=$?
[ "$status" -le 1 ] || fail "resumed dirty batch exited $status"
[ "$(grep -c "(checkpointed)" "$WORK/resume.log")" -eq "$UNITS" ] ||
  fail "resume re-ran units instead of serving partial outcomes from disk"
# Byte-identical report modulo the from-checkpoint provenance markers.
sed -e "s/, [0-9]* from checkpoint//" -e "s/, from checkpoint//" \
  "$WORK/resumed.txt" >"$WORK/resumed-normalized.txt"
cmp -s "$WORK/resumed-normalized.txt" "$WORK/first.txt" || {
  diff -u "$WORK/first.txt" "$WORK/resumed-normalized.txt" >&2 || true
  fail "resumed report differs from the uninterrupted run"
}

echo "salvage_smoke: all scenarios passed"
