#!/usr/bin/env bash
# Doc-drift gate: documentation that mirrors machine-readable surfaces must
# actually mirror them.
#
#   1. Counter vocabulary — `psa_cli --list-counters` (the metrics registry,
#      one stable name per line) vs the counter ↔ paper-concept map in
#      docs/OBSERVABILITY.md. Every registry counter must be documented
#      (exactly, via a `a/b` or `a`, `b` row, or via a `prefix_*` wildcard
#      row) and every concrete documented counter must exist in the
#      registry.
#   2. CLI reference — the fenced `--help` block in README.md vs the
#      binary's real `--help` output, byte for byte (the same diff
#      tests/driver/cli_integration_test.cpp performs, enforced here so the
#      gate runs even when the test suite is skipped).
#
# Usage: scripts/doc_drift.sh [BUILD_DIR]   (default: build)
# Exit 0 when the docs match reality; non-zero with a diff otherwise.
set -u

BUILD_DIR="${1:-build}"
REPO_DIR="$(cd "$(dirname "$0")/.." && pwd)"
CLI="$BUILD_DIR/examples/psa_cli"
[[ -x "$CLI" ]] || CLI="$BUILD_DIR/psa_cli"
if [[ ! -x "$CLI" ]]; then
  echo "doc_drift: psa_cli not found under $BUILD_DIR" >&2
  exit 1
fi

fail=0

# --- 1. counter vocabulary ---------------------------------------------------
"$CLI" --list-counters > /tmp/doc_drift_counters.$$ || {
  echo "doc_drift: psa_cli --list-counters failed" >&2
  exit 1
}
python3 - "$REPO_DIR/docs/OBSERVABILITY.md" /tmp/doc_drift_counters.$$ <<'EOF'
import fnmatch
import re
import sys

doc_path, counters_path = sys.argv[1], sys.argv[2]
with open(counters_path) as f:
    registry = [line.strip() for line in f if line.strip()]

# Pull every `...`-quoted token out of the FIRST cell of each row of the
# counter map table. Documented row forms:
#   | `name` | ...                       one counter
#   | `a`, `b` | ...                     two counters, one shared concept
#   | `a` / `b` | ...                    ditto
#   | `prefix_hits/misses` | ...         shorthand: prefix_hits, prefix_misses
#   | `governor_*` | ...                 wildcard family
#   | `phase_*_wall_ns` / `phase_*_cpu_ns` | ...   wildcard pair
exact, patterns = set(), set()
in_table = False
with open(doc_path) as f:
    for line in f:
        if re.match(r"\|\s*counter\s*\|", line):
            in_table = True
            continue
        if in_table:
            if not line.startswith("|"):
                in_table = False
                continue
            cell = line.split("|")[1]
            for token in re.findall(r"`([^`]+)`", cell):
                # `a/b` shorthand shares a prefix: expand the tail.
                m = re.fullmatch(r"(\w+_)(\w+)/(\w+)", token)
                names = [m.group(1) + m.group(2), m.group(1) + m.group(3)] \
                    if m else [token]
                for name in names:
                    (patterns if "*" in name else exact).add(name)

if not exact and not patterns:
    print("doc_drift: found no counter-map table in docs/OBSERVABILITY.md",
          file=sys.stderr)
    sys.exit(1)

status = 0
undocumented = [
    c for c in registry
    if c not in exact and not any(fnmatch.fnmatch(c, p) for p in patterns)
]
if undocumented:
    status = 1
    print("doc_drift: counters in the registry but missing from "
          "docs/OBSERVABILITY.md's counter map:", file=sys.stderr)
    for c in undocumented:
        print(f"  {c}", file=sys.stderr)

ghosts = sorted(exact - set(registry))
if ghosts:
    status = 1
    print("doc_drift: counters documented in docs/OBSERVABILITY.md but "
          "absent from the registry (stale rows?):", file=sys.stderr)
    for c in ghosts:
        print(f"  {c}", file=sys.stderr)

dead_patterns = sorted(
    p for p in patterns if not any(fnmatch.fnmatch(c, p) for c in registry))
if dead_patterns:
    status = 1
    print("doc_drift: wildcard rows matching no registry counter:",
          file=sys.stderr)
    for p in dead_patterns:
        print(f"  {p}", file=sys.stderr)

if status == 0:
    print(f"doc_drift: counter map ok "
          f"({len(registry)} counters, {len(patterns)} wildcard rows)")
sys.exit(status)
EOF
[[ $? -ne 0 ]] && fail=1
rm -f /tmp/doc_drift_counters.$$

# --- 2. README --help block --------------------------------------------------
"$CLI" --help > /tmp/doc_drift_help.$$ || {
  echo "doc_drift: psa_cli --help failed" >&2
  exit 1
}
# The fenced code block that starts with the usage line, up to its fence.
awk '/^usage: psa_cli/{found=1} /^```$/{if (found) exit} found' \
    "$REPO_DIR/README.md" > /tmp/doc_drift_readme.$$
if ! diff -u /tmp/doc_drift_readme.$$ /tmp/doc_drift_help.$$ >/dev/null; then
  echo "doc_drift: README.md --help block differs from the binary:" >&2
  diff -u /tmp/doc_drift_readme.$$ /tmp/doc_drift_help.$$ >&2
  fail=1
else
  echo "doc_drift: README --help block ok"
fi
rm -f /tmp/doc_drift_help.$$ /tmp/doc_drift_readme.$$

if [[ $fail -ne 0 ]]; then
  echo "doc_drift: FAILED" >&2
  exit 1
fi
echo "doc_drift: docs match reality"
