#!/usr/bin/env sh
# One-shot reproduction: build, test, and regenerate every table/figure.
#
#   $ scripts/reproduce.sh [BUILD_DIR]
#
# Writes test_output.txt and bench_output.txt at the repository root.
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

{
  for b in "$BUILD"/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
