#!/usr/bin/env sh
# One-shot reproduction: build, test (plain and sanitized), and regenerate
# every table/figure.
#
#   $ scripts/reproduce.sh [BUILD_DIR]
#
# Writes test_output.txt, test_output_sanitize.txt and bench_output.txt at
# the repository root. Set PSA_SKIP_SANITIZE=1 to skip the ASan+UBSan pass
# (it rebuilds the tree and roughly doubles the test wall-clock).
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

# Fail fast with an actionable message when the toolchain is missing —
# better than a cryptic CMake trace three steps in.
missing=""
for tool in cmake ctest ninja; do
  if ! command -v "$tool" >/dev/null 2>&1; then
    missing="$missing $tool"
  fi
done
if ! command -v c++ >/dev/null 2>&1 && ! command -v g++ >/dev/null 2>&1 \
    && ! command -v clang++ >/dev/null 2>&1; then
  missing="$missing c++/g++/clang++"
fi
if [ -n "$missing" ]; then
  echo "error: required tools not found:$missing" >&2
  echo "install a C++20 compiler plus CMake >= 3.20 and Ninja, e.g.:" >&2
  echo "  apt-get install build-essential cmake ninja-build" >&2
  exit 1
fi

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

# Tier-1 under AddressSanitizer + UndefinedBehaviorSanitizer (the `sanitize`
# preset): memory errors and leaked thread-pool tasks in the governor's
# cancellation paths show up here, not in the plain build.
if [ "${PSA_SKIP_SANITIZE:-0}" != "1" ]; then
  cmake -B build-sanitize -G Ninja -DPSA_SANITIZE=ON
  cmake --build build-sanitize
  ctest --test-dir build-sanitize 2>&1 | tee test_output_sanitize.txt
fi

{
  for b in "$BUILD"/bench/*; do
    if [ -x "$b" ] && [ -f "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt

echo "done: test_output.txt, test_output_sanitize.txt, bench_output.txt"
