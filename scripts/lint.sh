#!/usr/bin/env sh
# Static lint: clang-tidy over the compile database, clang-format as a dry
# run. Usage:
#
#   $ scripts/lint.sh [BUILD_DIR]     # default: build
#
# The build dir must have been configured already (any preset — the tree
# exports compile_commands.json unconditionally). Exits nonzero on findings.
# Either tool being absent is a hard error with an actionable message, so CI
# fails loudly instead of green-washing an unlinted tree; set
# PSA_LINT_ALLOW_MISSING=1 to downgrade that to a skip for local runs on
# machines without LLVM.
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

missing() {
  if [ "${PSA_LINT_ALLOW_MISSING:-0}" = "1" ]; then
    echo "lint: $1 not found, skipping (PSA_LINT_ALLOW_MISSING=1)" >&2
    exit 0
  fi
  echo "error: $1 not found; install LLVM tooling, e.g.:" >&2
  echo "  apt-get install clang-tidy clang-format" >&2
  exit 1
}

command -v clang-tidy >/dev/null 2>&1 || missing clang-tidy
command -v clang-format >/dev/null 2>&1 || missing clang-format

if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "error: $BUILD/compile_commands.json missing — configure first:" >&2
  echo "  cmake -B $BUILD" >&2
  exit 1
fi

status=0

# Formatting: dry-run across every C++ file we own.
find src tests bench examples \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
  xargs -0 clang-format --dry-run --Werror || status=1

# clang-tidy over the library and example sources (tests inherit the same
# headers; linting them too roughly triples the runtime for little signal).
find src examples -name '*.cpp' -print0 |
  xargs -0 -P "$(nproc 2>/dev/null || echo 2)" -n 8 \
    clang-tidy -p "$BUILD" --quiet || status=1

exit $status
