#!/usr/bin/env sh
# Crash-injection drill against the real psa_cli binary: inject a crash, an
# OOM and a hang into a batch run over the bundled corpus, assert the batch
# still completes with exactly the faulted units quarantined, then SIGKILL a
# checkpointed batch mid-run and prove --resume skips the finished units and
# reproduces the uninterrupted report byte for byte.
#
#   $ scripts/crash_injection.sh [BUILD_DIR]     # default: build
#
# The same scenarios run in-process as GTest suites (tests/driver/); this
# script drives the shipped binary end to end, the way an operator would,
# and is what the CI crash-injection job executes.
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/examples/psa_cli"

if [ ! -x "$CLI" ]; then
  echo "crash_injection: $CLI not found or not executable; build first" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "crash_injection: FAIL: $1" >&2
  exit 1
}

# The 60s per-unit budget is generous on purpose: a watchdog timeout in these
# scenarios means the injected hang, not a genuinely slow analysis.
run_units() {
  env "$@" "$CLI" --corpus --isolate --jobs=4 --timeout-ms=60000 \
    >"$WORK/report.txt" 2>"$WORK/log.txt" || return $?
}

echo "== scenario 1: fault-free corpus batch completes clean"
status=0
run_units PSA_FAULT_AT= || status=$?
[ "$status" -eq 0 ] || fail "clean corpus batch exited $status"
grep -q "0 failed" "$WORK/report.txt" || fail "clean batch reported failures"
cp "$WORK/report.txt" "$WORK/clean-report.txt"

echo "== scenario 2: injected crash + oom + hang are contained and classified"
status=0
run_units PSA_FAULT_AT="dll:crash,queue:oom,visit_marks:hang" || status=$?
[ "$status" -eq 3 ] || fail "faulted batch exited $status, want 3 (some failed)"
grep -q "dll: crash (signal" "$WORK/report.txt" || fail "crash not classified"
grep -q "queue: oom" "$WORK/report.txt" || fail "oom not classified"
grep -q "visit_marks: timeout" "$WORK/report.txt" || fail "hang not classified"
[ "$(grep -c "quarantined" "$WORK/report.txt")" -ge 3 ] ||
  fail "faulted units not quarantined"
# Every unit not faulted must still be analyzed, identically to scenario 1.
for u in sll list_reverse binary_tree; do
  line="$(grep "^  $u: ok" "$WORK/report.txt")" || fail "$u did not survive"
  grep -qF "$line" "$WORK/clean-report.txt" ||
    fail "$u result differs from fault-free run"
done

echo "== scenario 3: SIGKILL mid-batch, then --resume reproduces the report"
CKPT="$WORK/ckpt"
"$CLI" --corpus --isolate --jobs=1 --timeout-ms=60000 \
  --checkpoint="$WORK/ckpt-ref" >"$WORK/ref-report.txt" 2>/dev/null ||
  fail "reference checkpointed run failed"

"$CLI" --corpus --isolate --jobs=1 --timeout-ms=60000 \
  --checkpoint="$CKPT" >"$WORK/victim.out" 2>"$WORK/victim.err" &
VICTIM=$!
# Wait for at least two finished units in the journal, then kill mid-run.
spins=0
while :; do
  outcomes="$(grep -c "^outcome " "$CKPT/journal.psaj" 2>/dev/null)" ||
    outcomes=0
  [ "${outcomes:-0}" -lt 2 ] || break
  spins=$((spins + 1))
  [ "$spins" -lt 12000 ] || fail "journal never showed progress"
  sleep 0.005
done
kill -9 "$VICTIM" 2>/dev/null || fail "batch finished before the kill landed"
wait "$VICTIM" 2>/dev/null && fail "victim exited cleanly, not killed" || true

"$CLI" --corpus --isolate --jobs=1 --timeout-ms=60000 \
  --checkpoint="$CKPT" --resume >"$WORK/resumed.txt" 2>"$WORK/resume.log" ||
  fail "resume run failed"
grep -q "(checkpointed)" "$WORK/resume.log" ||
  fail "resume log shows no unit served from the checkpoint"
# Byte-identical report modulo the from-checkpoint provenance markers.
sed -e "s/, [0-9]* from checkpoint//" -e "s/, from checkpoint//" \
  "$WORK/resumed.txt" >"$WORK/resumed-normalized.txt"
cmp -s "$WORK/resumed-normalized.txt" "$WORK/ref-report.txt" || {
  diff -u "$WORK/ref-report.txt" "$WORK/resumed-normalized.txt" >&2 || true
  fail "resumed report differs from the uninterrupted run"
}

echo "crash_injection: all scenarios passed"
