#!/usr/bin/env bash
# Smoke-run every benchmark binary in --quick mode and validate the
# canonical BENCH_<name>.json files against the psa.bench.v1 schema.
#
# Usage: scripts/bench_smoke.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build tree holding bench/ binaries (default: build)
#   OUT_DIR    where the BENCH_*.json files land (default: a temp dir;
#              exported to the benches as PSA_BENCH_DIR)
#
# Beyond the schema check, every fresh report is diffed structurally against
# its committed canonical baseline in bench/baselines/: same schema, same
# run configs, same counter vocabulary. Timing VALUES are machine-dependent
# and not compared — the diff catches silently dropped rows, renamed
# configs, and counter-vocabulary drift that would desynchronize
# EXPERIMENTS.md from the committed numbers.
#
# Exit 0 when every bench runs and every JSON validates; non-zero otherwise.
# CI runs this as the bench-smoke job and uploads OUT_DIR as an artifact.
set -u

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-$(mktemp -d)}"
mkdir -p "$OUT_DIR"
export PSA_BENCH_DIR="$OUT_DIR"

BENCHES=(
  table1_analysis_cost
  fig1_dll_ops
  fig2_pipeline
  fig3_barnes_hut
  ablation_pruning
  ablation_join
  ablation_widening
  parallel_transfer
  governor_overhead
  checker_cost
  cache_warm
  incremental
  service_stream
  ipa_summary
)

BASELINE_DIR="$(cd "$(dirname "$0")/.." && pwd)/bench/baselines"

fail=0
for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "bench_smoke: MISSING $bin" >&2
    fail=1
    continue
  fi
  echo "bench_smoke: running $bench --quick"
  if ! "$bin" --quick >/dev/null; then
    echo "bench_smoke: FAILED $bench" >&2
    fail=1
  fi
done

python3 - "$OUT_DIR" "$BASELINE_DIR" "${BENCHES[@]}" <<'EOF'
import json
import sys

out_dir, baseline_dir, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
RUN_FIELDS = {
    "config": str,
    "seconds": (int, float),
    "converged": bool,
    "visits": int,
    "peak_bytes": int,
    "exit_graphs": int,
    "ops": dict,
}
status = 0
for bench in benches:
    path = f"{out_dir}/BENCH_{bench}.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_smoke: {path}: {e}", file=sys.stderr)
        status = 1
        continue
    errors = []
    if doc.get("schema") != "psa.bench.v1":
        errors.append(f"bad schema {doc.get('schema')!r}")
    if doc.get("bench") != bench:
        errors.append(f"bench field {doc.get('bench')!r} != {bench!r}")
    if not isinstance(doc.get("quick"), bool):
        errors.append("quick is not a bool")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("runs missing or empty")
        runs = []
    for i, run in enumerate(runs):
        for field, ty in RUN_FIELDS.items():
            if not isinstance(run.get(field), ty):
                errors.append(f"runs[{i}].{field} missing or mistyped")
        ops = run.get("ops")
        if isinstance(ops, dict):
            bad = [k for k, v in ops.items()
                   if not isinstance(v, int) or v < 0]
            if bad:
                errors.append(f"runs[{i}].ops non-counter values: {bad}")
    # Structural diff against the committed canonical baseline: the set of
    # run configs and the counter vocabulary must match (values are machine-
    # and build-dependent and deliberately not compared).
    base_path = f"{baseline_dir}/BENCH_{bench}.json"
    try:
        with open(base_path) as f:
            base = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        errors.append(f"baseline {base_path}: {e}")
        base = {"runs": []}
    if base.get("schema") != doc.get("schema"):
        errors.append(
            f"schema drift vs baseline: {doc.get('schema')!r} != "
            f"{base.get('schema')!r}")
    fresh_configs = [r.get("config") for r in runs]
    base_configs = [r.get("config") for r in base.get("runs", [])]
    if fresh_configs != base_configs:
        errors.append(
            f"run configs drifted from baseline: {fresh_configs} != "
            f"{base_configs} (regenerate bench/baselines with --quick)")
    for i, run in enumerate(runs):
        if i >= len(base.get("runs", [])):
            break
        fresh_ops = set((run.get("ops") or {}).keys())
        base_ops = set((base["runs"][i].get("ops") or {}).keys())
        if fresh_ops != base_ops:
            errors.append(
                f"runs[{i}] counter vocabulary drifted from baseline: "
                f"+{sorted(fresh_ops - base_ops)} -{sorted(base_ops - fresh_ops)}")
    if errors:
        status = 1
        for e in errors:
            print(f"bench_smoke: {path}: {e}", file=sys.stderr)
    else:
        print(f"bench_smoke: {path}: ok ({len(runs)} runs, baseline match)")
sys.exit(status)
EOF
[[ $? -ne 0 ]] && fail=1

if [[ $fail -ne 0 ]]; then
  echo "bench_smoke: FAILED" >&2
  exit 1
fi
echo "bench_smoke: all benches ok, reports in $OUT_DIR"
