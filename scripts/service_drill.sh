#!/usr/bin/env sh
# Live-fire drill of the analysis daemon + result cache (docs/SERVICE.md)
# against the shipped psa_cli binary:
#
#   1. cold batch through --connect, then a warm re-run — both byte-identical
#      to a local (daemon-less) run, with cache entries on disk;
#   2. daemon-side connection drops mid-request (PSA_FAULT_AT=...:sockdrop) —
#      the client retries, gives up, analyzes locally, same report;
#   3. the handler dies mid-stream after half a frame
#      (PSA_FAULT_AT=...:streamtear) — the client keeps the units already
#      streamed, reconnects for only the remainder, same report;
#   4. daemon SIGKILLed mid-request — the client falls back and the build
#      still exits 0;
#   5. a cache entry corrupted on disk — the next run self-heals (quarantine
#      + recompute) and reproduces the identical report;
#   6. SIGTERM — the daemon drains gracefully: exit 0, socket unlinked,
#      journal sealed, no .tmp stragglers in the cache directory;
#   7. --cache-max-bytes bounds the cache — the post-batch sweep evicts down
#      to the cap, journaling every decision, without changing the report;
#   8. the function-granular tier (docs/CACHING.md) through the daemon — a
#      one-line edit in a four-function chain is served from per-function
#      entries (new entries prove the promotion), and a SIGKILL racing the
#      next request still yields the byte-identical report.
#
#   $ scripts/service_drill.sh [BUILD_DIR]     # default: build
#
# The same properties are unit-tested in tests/cache/ and tests/service/;
# this script drives the real binary end to end, the way an operator would,
# and is what the CI service-drill job executes.
set -eu

cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/examples/psa_cli"

if [ ! -x "$CLI" ]; then
  echo "service_drill: $CLI not found or not executable; build first" >&2
  exit 1
fi

WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "service_drill: FAIL: $1" >&2
  [ -f "$WORK/daemon.err" ] && sed 's/^/  daemon: /' "$WORK/daemon.err" >&2
  exit 1
}

SOCK="$WORK/psa.sock"
CACHE="$WORK/cache"

cat >"$WORK/clean.c" <<'EOF'
struct node { struct node *next; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  p->next = NULL;
  free(p);
  p = NULL;
}
EOF
cat >"$WORK/leaky.c" <<'EOF'
struct node { struct node *next; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  p->next = NULL;
}
EOF

start_daemon() {
  # $@: extra environment (NAME=VALUE) for fault injection.
  env "$@" "$CLI" --serve="$SOCK" --cache-dir="$CACHE" \
    >"$WORK/daemon.out" 2>"$WORK/daemon.err" &
  DAEMON_PID=$!
  i=0
  while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || fail "daemon did not create $SOCK"
    sleep 0.1
  done
}

stop_daemon_hard() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
  rm -f "$SOCK"
}

FILES="$WORK/clean.c $WORK/leaky.c"

echo "== reference: local batch (no daemon, no cache)"
status=0
$CLI $FILES --isolate --check >"$WORK/local.txt" 2>/dev/null || status=$?
[ "$status" -eq 1 ] || fail "local reference exited $status, want 1 (findings)"

echo "== scenario 1: cold + warm runs through the daemon, byte-identical"
start_daemon
status=0
$CLI $FILES --check --connect="$SOCK" >"$WORK/cold.txt" 2>/dev/null ||
  status=$?
[ "$status" -eq 1 ] || fail "cold connect run exited $status, want 1"
cmp -s "$WORK/cold.txt" "$WORK/local.txt" ||
  fail "cold daemon report differs from local report"
[ -n "$(find "$CACHE" -maxdepth 1 -name '*.entry' 2>/dev/null)" ] ||
  fail "no cache entries stored"
status=0
$CLI $FILES --check --connect="$SOCK" >"$WORK/warm.txt" 2>/dev/null ||
  status=$?
[ "$status" -eq 1 ] || fail "warm connect run exited $status, want 1"
cmp -s "$WORK/warm.txt" "$WORK/local.txt" ||
  fail "warm (cached) report differs from local report"
stop_daemon_hard

echo "== scenario 2: daemon drops the connection mid-request -> fallback"
start_daemon PSA_FAULT_AT="$WORK/clean.c:sockdrop"
status=0
$CLI $FILES --check --connect="$SOCK" >"$WORK/drop.txt" 2>"$WORK/drop.log" ||
  status=$?
[ "$status" -eq 1 ] || fail "sockdrop run exited $status, want 1"
cmp -s "$WORK/drop.txt" "$WORK/local.txt" ||
  fail "sockdrop fallback report differs from local report"
grep -q "remaining units locally" "$WORK/drop.log" ||
  fail "client did not report the local fallback"
stop_daemon_hard

echo "== scenario 3: handler dies mid-stream -> client resumes the remainder"
start_daemon PSA_FAULT_AT="$WORK/leaky.c:streamtear"
status=0
$CLI $FILES --check --connect="$SOCK" >"$WORK/tear.txt" 2>"$WORK/tear.log" ||
  status=$?
[ "$status" -eq 1 ] || fail "streamtear run exited $status, want 1"
cmp -s "$WORK/tear.txt" "$WORK/local.txt" ||
  fail "post-tear report differs from local report"
grep -q "stream torn" "$WORK/tear.log" ||
  fail "client did not detect the torn stream"
stop_daemon_hard

echo "== scenario 4: daemon SIGKILLed mid-request -> fallback, build exits 0"
start_daemon
( sleep 0.05 && kill -9 "$DAEMON_PID" ) 2>/dev/null &
KILLER=$!
status=0
$CLI "$WORK/clean.c" --check --connect="$SOCK" \
  >"$WORK/killed.txt" 2>/dev/null || status=$?
wait "$KILLER" 2>/dev/null || true
[ "$status" -eq 0 ] ||
  fail "clean-unit run exited $status after daemon SIGKILL, want 0"
grep -q "clean.c: ok" "$WORK/killed.txt" ||
  fail "clean unit not analyzed after daemon SIGKILL"
stop_daemon_hard

echo "== scenario 5: corrupt cache entry self-heals with an identical report"
entry="$(find "$CACHE" -maxdepth 1 -name '*.entry' | head -n 1)"
[ -n "$entry" ] || fail "no cache entry to corrupt"
# Flip one byte in the middle of the entry.
size=$(wc -c <"$entry")
printf '\377' | dd of="$entry" bs=1 seek=$((size / 2)) conv=notrunc 2>/dev/null
start_daemon
status=0
$CLI $FILES --check --connect="$SOCK" >"$WORK/healed.txt" 2>/dev/null ||
  status=$?
[ "$status" -eq 1 ] || fail "self-heal run exited $status, want 1"
cmp -s "$WORK/healed.txt" "$WORK/local.txt" ||
  fail "self-healed report differs from local report"
[ -n "$(find "$CACHE/quarantine" -type f 2>/dev/null)" ] ||
  fail "corrupt entry was not quarantined"

echo "== scenario 6: SIGTERM drains gracefully, seals the journal"
kill -TERM "$DAEMON_PID"
status=0
wait "$DAEMON_PID" || status=$?
DAEMON_PID=""
[ "$status" -eq 0 ] || fail "daemon drain exited $status, want 0"
[ ! -S "$SOCK" ] || fail "socket not unlinked on drain"
grep -q "sealed" "$CACHE/service.journal" || fail "journal not sealed"
[ -z "$(find "$CACHE" -maxdepth 1 -name '*.tmp.*' 2>/dev/null)" ] ||
  fail "stray .tmp files left in the cache directory"

echo "== scenario 7: --cache-max-bytes bounds the cache without changing output"
[ -n "$(find "$CACHE" -maxdepth 1 -name '*.entry' 2>/dev/null)" ] ||
  fail "expected warm cache entries before the sweep scenario"
status=0
$CLI $FILES --isolate --check --cache-dir="$CACHE" --cache-max-bytes=1 \
  >"$WORK/swept.txt" 2>/dev/null || status=$?
[ "$status" -eq 1 ] || fail "bounded-cache run exited $status, want 1"
cmp -s "$WORK/swept.txt" "$WORK/local.txt" ||
  fail "bounded-cache report differs from local report"
# A 1-byte cap cannot hold any entry: the post-batch sweep must have
# evicted everything, journaling its decisions.
[ -z "$(find "$CACHE" -maxdepth 1 -name '*.entry' 2>/dev/null)" ] ||
  fail "entries left above the byte cap"
grep -q "sweep end" "$CACHE/sweep.journal" ||
  fail "sweep journal missing or unsealed"

echo "== scenario 8: warm per-function cache via daemon survives a SIGKILL"
cat >"$WORK/chain.c" <<'EOF'
struct node { struct node *next; int v; };
void f3(struct node *a) {
  a->next = NULL;
}
void f2(struct node *a) {
  f3(a);
  a->next = NULL;
}
void f1(struct node *a) {
  f2(a);
}
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  f1(p);
  p->next = NULL;
}
EOF
status=0
$CLI "$WORK/chain.c" --isolate --check >"$WORK/chain_local.txt" 2>/dev/null ||
  status=$?
[ "$status" -eq 1 ] || fail "chain reference exited $status, want 1"
start_daemon
status=0
$CLI "$WORK/chain.c" --check --connect="$SOCK" >"$WORK/chain_cold.txt" \
  2>/dev/null || status=$?
[ "$status" -eq 1 ] || fail "chain cold run exited $status, want 1"
cmp -s "$WORK/chain_cold.txt" "$WORK/chain_local.txt" ||
  fail "chain cold daemon report differs from local report"
entries=$(find "$CACHE" -maxdepth 1 -name '*.entry' | wc -l)
# One-line in-place edit of the leaf (same line count): the next daemon run
# misses the unit key, but the function tier recomputes only f3 and serves
# the rest (docs/CACHING.md), then promotes the payload to the new unit key
# — visible as extra entries on disk.
sed '3s/.*/  a->next = a;/' "$WORK/chain.c" >"$WORK/chain.c.tmp" &&
  mv "$WORK/chain.c.tmp" "$WORK/chain.c"
status=0
$CLI "$WORK/chain.c" --isolate --check >"$WORK/chain_edit_local.txt" \
  2>/dev/null || status=$?
[ "$status" -eq 1 ] || fail "edited chain reference exited $status, want 1"
status=0
$CLI "$WORK/chain.c" --check --connect="$SOCK" >"$WORK/chain_edit.txt" \
  2>/dev/null || status=$?
[ "$status" -eq 1 ] || fail "edited chain run exited $status, want 1"
cmp -s "$WORK/chain_edit.txt" "$WORK/chain_edit_local.txt" ||
  fail "warm function-tier daemon report differs from local report"
after=$(find "$CACHE" -maxdepth 1 -name '*.entry' | wc -l)
[ "$after" -gt "$entries" ] ||
  fail "edited run stored no new entries (want promotion + a new summary)"
# SIGKILL the daemon racing one more request over the warm tier: whether the
# kill lands before, during or after the reply, the client must fall back
# and reproduce the identical report.
( sleep 0.05 && kill -9 "$DAEMON_PID" ) 2>/dev/null &
KILLER=$!
status=0
$CLI "$WORK/chain.c" --check --connect="$SOCK" >"$WORK/chain_killed.txt" \
  2>/dev/null || status=$?
wait "$KILLER" 2>/dev/null || true
[ "$status" -eq 1 ] || fail "post-SIGKILL chain run exited $status, want 1"
cmp -s "$WORK/chain_killed.txt" "$WORK/chain_edit_local.txt" ||
  fail "post-SIGKILL report differs from local report"
stop_daemon_hard

echo "service_drill: all scenarios passed"
